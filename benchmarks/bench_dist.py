"""Distributed-backend benchmark — the BENCH_dist.json source.

Measures one figure sweep through every executor backend: the serial
reference, the process pool, and a remote socket-worker fleet against a
cold and then a warm network-shared artifact cache, plus a chaos leg
that ``kill -9``-s one worker mid-sweep and requires the sweep to
complete with nothing lost.  The CLI equivalent, which CI runs and
archives, is::

    python -m repro bench --dist --skip-parallel --skip-simcore --smoke

Run directly with ``pytest benchmarks/bench_dist.py``.
"""

from repro.dist.bench import run_dist_bench, write_dist_report


def test_dist_bench_gates(tmp_path):
    report = run_dist_bench(
        figure="figure3",
        scale=0.12,
        fleet_sizes=(2,),
        workdir=tmp_path / "work",
    )

    phases = report["phases"]
    assert set(phases) == {
        "serial", "process", "remote_w2_cold", "remote_w2_warm",
        "remote_chaos",
    }

    # Every backend produced the identical figure series.
    assert report["equal_results"]

    # The remote legs actually ran on a fleet and lost nothing.
    for label in ("remote_w2_cold", "remote_w2_warm", "remote_chaos"):
        fleet = phases[label]["fleet"]
        assert fleet["lost"] == 0, (label, fleet)
        assert fleet["completed"] == fleet["tasks"], (label, fleet)

    # Warm leg: the shared cache answers everything — no rebuilds.
    warm = phases["remote_w2_warm"]["cache"]
    assert warm["misses"] == 0, warm

    # Chaos leg: one worker SIGKILLed mid-sweep, sweep still drained.
    chaos = report["chaos"]
    assert chaos["killed"]
    assert chaos["lost"] == 0
    assert chaos["completed"] == chaos["tasks"]

    assert report["ok"]
    out = write_dist_report(report, tmp_path / "BENCH_dist.json")
    assert out.is_file() and out.stat().st_size > 0
