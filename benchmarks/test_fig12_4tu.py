"""Figure 12: scalability — 4-thread-unit configuration."""

from repro.experiments.figures import figure12

from conftest import run_figure


def test_figure12_four_units(benchmark):
    result = run_figure(benchmark, figure12)
    # shape (paper): perfect > stride > stride+overhead for the profile
    # policy, and all three stay within the 4-unit bound
    assert (
        result.summary["perfect_profile"]
        >= result.summary["stride_profile"] * 0.95
    )
    assert (
        result.summary["stride_profile"]
        >= result.summary["stride_overhead_profile"] * 0.95
    )
    for key, value in result.summary.items():
        assert 0 < value <= 4.2, key
