"""Figure 2: total vs selected spawning pairs per benchmark."""

from repro.experiments.figures import figure2

from conftest import run_figure


def test_figure2_pair_counts(benchmark):
    result = run_figure(benchmark, figure2)
    totals = result.series["total_pairs"]
    selected = result.series["selected_pairs"]
    # shape: candidates always at least as many as distinct SPs, and
    # compress has the fewest pairs of the suite (the paper's fragility)
    assert all(t >= s for t, s in zip(totals, selected))
    by_bench = dict(zip(result.benchmarks, selected))
    assert by_bench["compress"] <= min(by_bench["go"], by_bench["perl"])
