"""Figure 10: independent/predictable CQIP-ordering criteria."""

from repro.experiments.figures import figure10a, figure10b

from conftest import run_figure


def test_figure10a_hit_ratio(benchmark):
    result = run_figure(benchmark, figure10a)
    for key, value in result.summary.items():
        assert 0.0 <= value <= 1.0, key


def test_figure10b_speedups(benchmark):
    result = run_figure(benchmark, figure10b)
    # shape (paper): orienting selection to predictability/independence
    # creates smaller threads and does NOT beat the distance criterion
    assert result.summary["independent"] <= result.summary["distance"] * 1.2
    assert result.summary["predictable"] <= result.summary["distance"] * 1.2
