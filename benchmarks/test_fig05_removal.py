"""Figure 5: spawning-pair removal policies (alone-cycles and occurrences)."""

from repro.experiments.figures import figure5a, figure5b

from conftest import run_figure


def test_figure5a_removal_thresholds(benchmark):
    result = run_figure(benchmark, figure5a)
    # shape: removal policies stay in the same performance band as no
    # removal on average (the paper reports a ~10% gain for 200 cycles)
    base = result.summary["no_removal"]
    assert result.summary["removal_200"] > 0.5 * base
    assert result.summary["removal_50"] > 0.4 * base


def test_figure5b_delayed_removal(benchmark):
    result = run_figure(benchmark, figure5b)
    for key, values in result.series.items():
        assert all(v > 0 for v in values), key
    # delaying removal must not catastrophically change the average
    assert (
        result.summary["occurrences_16"]
        > 0.5 * result.summary["occurrences_1"]
    )
