"""Figure 3: speed-up of the profile policy, 16 TUs, perfect VP."""

from repro.experiments.figures import figure3

from conftest import run_figure


def test_figure3_speedup_16tu(benchmark):
    result = run_figure(benchmark, figure3)
    speedups = result.series["speedup"]
    # shape: meaningful average speed-up with several benchmarks well
    # above 3x (at full scale ijpeg tops the suite; see EXPERIMENTS.md —
    # the reduced bench scale reshuffles the per-benchmark ranking)
    assert result.summary["hmean"] > 1.3
    assert max(speedups) > 3.0
    assert sum(1 for v in speedups if v > 2.0) >= 4
