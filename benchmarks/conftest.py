"""Benchmark-harness configuration.

Each module regenerates one figure of the paper.  ``BENCH_SCALE`` shrinks
the workloads so the full harness completes in minutes; run
``python scripts/generate_experiments.py`` for the full-scale sweep that
produces EXPERIMENTS.md.

``bench_perf.py`` is the odd one out: it benchmarks the experiment
infrastructure itself (parallel engine + artifact cache) rather than a
figure, and backs the ``repro bench`` CLI that CI archives as
``BENCH_parallel.json``.

Reduced scale perturbs per-benchmark results in a paper-faithful way:
loops whose trip counts shrink below ~20 fall under the profile policy's
0.95 reaching-probability threshold (e.g. ijpeg's block loop at 0.3x has
p = 9/10 per iteration), so the profile policy legitimately rejects their
iteration pairs while the structural heuristics still spawn them.  Bench
assertions therefore check scale-robust shapes; magnitude claims live in
EXPERIMENTS.md.
"""

BENCH_SCALE = 0.3


def run_figure(benchmark, figure_fn):
    """Benchmark one figure driver and print its rendered series."""
    result = benchmark.pedantic(
        figure_fn, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
