"""Figure 7: dynamic thread sizes and the minimum-size constraint."""

from repro.experiments.figures import figure7a, figure7b

from conftest import run_figure


def test_figure7a_thread_sizes(benchmark):
    result = run_figure(benchmark, figure7a)
    # shape (paper): overlapping spawns shrink dynamic threads, often
    # below the 32-instruction static selection minimum
    sizes = result.series["thread_size"]
    assert all(s > 0 for s in sizes)
    assert min(sizes) < 64


def test_figure7b_minimum_size(benchmark):
    result = run_figure(benchmark, figure7b)
    # enforcing the minimum must not collapse performance (the paper
    # reports a ~10% gain over plain removal)
    assert (
        result.summary["min_size_32"] >= 0.6 * result.summary["no_min_size"]
    )
