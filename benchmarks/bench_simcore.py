"""Simulator-core benchmark — the BENCH_simcore.json source.

Measures the columnar hot-loop core against the legacy dict-based core:
cold vs warm columnar-trace builds through the artifact cache, the
equal-stats grid (every workload × pair scheme × value predictor must
be bit-identical across cores), and a cold Figure-8 sweep (jobs=1,
warm traces and pairs) timed under each core.  The CLI equivalent,
which CI runs and archives, is::

    python -m repro bench --smoke --jobs 2

Run directly with ``pytest benchmarks/bench_simcore.py``.  The ≥2×
speed-up gate applies at this module's scale (the committed
``BENCH_simcore.json`` scale); ``--smoke`` CLI runs only enforce the
correctness and cache gates.
"""

from repro.experiments.bench import (
    SIMCORE_SPEEDUP_TARGET,
    run_simcore_bench,
    write_simcore_report,
)

#: The committed-report scale (matches BENCH_SCALE of the figure
#: harness): large enough that the hot loop, not fixed setup costs,
#: dominates the sweep timing.
SIMCORE_SCALE = 0.3


def test_simcore_bench_gates(tmp_path):
    report = run_simcore_bench(
        scale=SIMCORE_SCALE,
        cache_dir=tmp_path / "cache",
        enforce_speedup=True,
    )

    # Correctness: the cores agree on every grid point and sweep series.
    assert report["equal_results"], report["equal_stats"]["mismatches"]
    assert report["equal_stats"]["points"] == (
        len(report["workloads"])
        * len(report["policies"])
        * len(report["predictors"])
    )

    # Cache: a warm columnar build is served entirely from the cache.
    cache = report["columns_cache"]
    assert cache["cold"]["puts"] > 0
    assert cache["warm"]["misses"] == 0
    assert cache["warm_hit_rate"] == 1.0

    # Throughput: the columnar core clears the speed-up target cold.
    sweep = report["sweep"]
    assert sweep["speedup"] >= SIMCORE_SPEEDUP_TARGET, sweep
    assert sweep["columnar"]["insts_per_sec"] > sweep["legacy"]["insts_per_sec"]
    assert report["ok"]

    out = write_simcore_report(report, tmp_path / "BENCH_simcore.json")
    assert out.is_file() and out.stat().st_size > 0
