"""Simulator-core benchmark — the BENCH_simcore.json source.

Measures the columnar and event-driven cores against the legacy
dict-based core: cold vs warm columnar-trace builds through the
artifact cache, the equal-stats grid (every workload × pair scheme ×
value predictor, plus one deterministic fault-injected point, must be
bit-identical across all three cores), and a cold paper-grid sweep
(jobs=1, warm traces and pairs) timed under each core.  The CLI
equivalent, which CI runs and archives, is::

    python -m repro bench --skip-parallel

Run directly with ``pytest benchmarks/bench_simcore.py``.  The ≥4×
event-core speed-up gate applies at this module's scale (the committed
``BENCH_simcore.json`` scale); ``--smoke`` CLI runs only enforce the
correctness and cache gates.
"""

from repro.experiments.bench import (
    SIMCORE_SPEEDUP_TARGET,
    run_simcore_bench,
    write_simcore_report,
)

#: The committed-report scale: the full paper grid, large enough that
#: the hot loop, not fixed setup costs, dominates the sweep timing
#: (the speed-up gate is only meaningful at full scale).
SIMCORE_SCALE = 1.0


def test_simcore_bench_gates(tmp_path):
    report = run_simcore_bench(
        scale=SIMCORE_SCALE,
        cache_dir=tmp_path / "cache",
        enforce_speedup=True,
    )

    # Correctness: the cores agree on every grid point (including the
    # fault-injected leg) and on every sweep series.
    assert report["cores"] == ["legacy", "columnar", "event"]
    assert report["equal_results"], report["equal_stats"]["mismatches"]
    eq = report["equal_stats"]
    assert eq["fault_injected_points"] >= 1
    assert eq["points"] == (
        len(report["workloads"])
        * len(report["policies"])
        * len(report["predictors"])
        + eq["fault_injected_points"]
    )

    # Cache: a warm columnar build is served entirely from the cache.
    cache = report["columns_cache"]
    assert cache["cold"]["puts"] > 0
    assert cache["warm"]["misses"] == 0
    assert cache["warm_hit_rate"] == 1.0

    # Throughput: the event core clears the speed-up target cold, and
    # both rewrites beat the legacy core.
    sweep = report["sweep"]
    assert set(sweep["speedups"]) == {"columnar", "event"}
    assert sweep["speedup"] >= SIMCORE_SPEEDUP_TARGET, sweep
    assert sweep["event"]["insts_per_sec"] > sweep["legacy"]["insts_per_sec"]
    assert sweep["columnar"]["insts_per_sec"] > sweep["legacy"]["insts_per_sec"]
    assert report["ok"]

    out = write_simcore_report(report, tmp_path / "BENCH_simcore.json")
    assert out.is_file() and out.stat().st_size > 0
