"""Figure 8: profile-based policy vs combined traditional heuristics."""

from repro.experiments.figures import figure8

from conftest import run_figure


def test_figure8_profile_vs_heuristics(benchmark):
    result = run_figure(benchmark, figure8)
    ratios = dict(zip(result.benchmarks, result.series["profile_over_heuristics"]))
    # shape (paper): the profile policy wins on several irregular
    # benchmarks (at full scale the hmean ratio is ~1.1; see
    # EXPERIMENTS.md — reduced workloads weaken the profile statistics)
    assert sum(1 for v in ratios.values() if v > 1.0) >= 3
    assert max(ratios["go"], ratios["vortex"]) > 1.0
