"""Engine/cache performance benchmark — the BENCH_parallel.json source.

Unlike the ``test_figNN_*`` modules (one figure's *shape* each), this
module measures the experiment *infrastructure*: jobs=1 vs jobs=N
wall-clock and cold- vs warm-cache hit rates over one small figure
sweep, asserting the guarantees the engine makes (identical results in
every phase, a fully warm second pass).  The CLI equivalent, which CI
runs and archives, is::

    python -m repro bench --smoke --jobs 2

Run directly with ``pytest benchmarks/bench_perf.py`` (no
pytest-benchmark fixtures needed — phases time themselves).
"""

from repro.experiments.bench import run_bench, write_bench_report

#: Smaller than BENCH_SCALE: four phases each run the whole grid.
PERF_SCALE = 0.15


def test_bench_phases_agree_and_cache_warms(tmp_path):
    report = run_bench(
        figure="figure3",
        scale=PERF_SCALE,
        jobs=2,
        cache_dir=tmp_path / "cache",
    )

    assert report["equal_results"], "jobs/cache phases diverged"

    phases = report["phases"]
    assert set(phases) == {
        "jobs1_cold", "jobs1_warm", "jobsN_cold", "jobsN_warm",
    }
    # The cold pass populates the cache; the warm pass is all hits.
    assert phases["jobs1_cold"]["cache"]["puts"] > 0
    assert phases["jobs1_warm"]["cache"]["misses"] == 0
    assert phases["jobs1_warm"]["cache_hit_rate"] == 1.0
    assert phases["jobsN_warm"]["cache_hit_rate"] == 1.0
    # Warm must not be slower than cold by more than measurement noise.
    assert (
        phases["jobs1_warm"]["seconds"]
        <= phases["jobs1_cold"]["seconds"] + 0.5
    )
    assert report["warm_speedup_jobs1"] >= 1.0

    out = write_bench_report(report, tmp_path / "BENCH_parallel.json")
    assert out.is_file() and out.stat().st_size > 0
