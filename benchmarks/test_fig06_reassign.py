"""Figure 6: reassign policy vs plain removal."""

from repro.experiments.figures import figure6

from conftest import run_figure


def test_figure6_reassign(benchmark):
    result = run_figure(benchmark, figure6)
    # shape (paper): reassigning an SP to its next CQIP does not beat the
    # plain removal policy on average
    assert result.summary["reassign"] <= result.summary["removal_50"] * 1.15
