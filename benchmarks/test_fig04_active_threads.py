"""Figure 4: average number of active threads."""

from repro.experiments.figures import figure4

from conftest import run_figure


def test_figure4_active_threads(benchmark):
    result = run_figure(benchmark, figure4)
    values = result.series["active_threads"]
    # shape: a large fraction of the 16 units is busy on average, but
    # resources are never fully utilised (paper: ~7.5 of 16)
    assert 1.0 < result.summary["amean"] <= 16.0
    assert all(0 < v <= 16 for v in values)
