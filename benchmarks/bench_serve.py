"""Serve-daemon benchmark — the BENCH_serve.json source.

Measures the resilient simulation service the way an operator would
load it: p50/p99 job latency from concurrent clients against a cold
artifact cache, the same submissions against a fresh daemon on a warm
cache (every answer must be served from the cache without
re-simulation), and a chaos leg that ``kill -9``-s a daemon subprocess
mid-queue, restarts it, and requires every accepted job to complete
exactly once.  The CLI equivalent, which CI runs and archives, is::

    python -m repro serve --bench

Run directly with ``pytest benchmarks/bench_serve.py``.
"""

from repro.serve.bench import run_serve_bench, write_serve_report


def test_serve_bench_gates(tmp_path):
    report = run_serve_bench(tmp_path / "work", clients=4, chaos_jobs=10)

    cold, hot = report["cold"], report["hot"]
    # Cold leg: every job executed, none lost, none cache-served.
    assert cold["done"] == cold["jobs"] == report["grid_points"]
    assert cold["cached"] == 0
    assert cold["audit"]["lost"] == 0
    assert cold["audit"]["duplicate_finishes"] == 0
    assert cold["completion"]["p99_ms"] > 0

    # Hot leg: a fresh daemon answers every identical config from the
    # shared artifact cache without re-running the simulator.
    assert hot["all_cached"]
    assert hot["done"] == cold["jobs"]
    # Cache-served submissions answer at HTTP round-trip speed; the
    # cold leg had to simulate, so hot submit latency must beat cold
    # completion latency outright.
    assert hot["submit"]["p99_ms"] < cold["completion"]["p99_ms"]

    # Chaos leg: kill -9 mid-queue, restart, exactly-once.
    chaos = report["chaos"]
    assert chaos["exactly_once"], chaos
    assert chaos["lost"] == 0
    assert chaos["duplicate_finishes"] == 0
    assert chaos["requeued_after_kill"] >= 1
    assert chaos["states"].get("done") == chaos["jobs_submitted"]

    assert report["ok"]
    out = write_serve_report(report, tmp_path / "BENCH_serve.json")
    assert out.is_file() and out.stat().st_size > 0
