"""Extension: individual heuristic schemes vs their combination ([15])."""

from repro.experiments.figures import heuristic_breakdown

from conftest import run_figure


def test_heuristic_breakdown(benchmark):
    result = run_figure(benchmark, heuristic_breakdown)
    # the combination should be at least competitive with any single
    # scheme on average ([15]'s conclusion, and the premise of Figure 8)
    combined = result.summary["combined"]
    best_single = max(
        result.summary[k] for k in ("loop_iter", "loop_cont", "sub_cont")
    )
    assert combined >= best_single * 0.8
