"""Extension: do profiled pairs transfer to an unseen input?"""

from repro.experiments.figures import profile_input_sensitivity

from conftest import run_figure


def test_profile_input_transfer(benchmark):
    result = run_figure(benchmark, profile_input_sensitivity)
    # spawning pairs are program-counter pairs; as long as the hot control
    # structure is input-stable, a train-input profile must retain most of
    # the self-profiled performance on the ref input
    assert result.summary["transfer"] > 0.6
