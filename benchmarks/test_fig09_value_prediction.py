"""Figure 9: realistic value predictors (hit ratios and speed-ups)."""

from repro.experiments.figures import figure9a, figure9b

from conftest import run_figure


def test_figure9a_hit_ratios(benchmark):
    result = run_figure(benchmark, figure9a)
    # shape (paper): hit ratios are broadly similar across policies and
    # sit in the tens of percent (paper ~70%)
    for key, value in result.summary.items():
        assert 0.2 <= value <= 1.0, key


def test_figure9b_stride_speedups(benchmark):
    result = run_figure(benchmark, figure9b)
    # shape (paper): realistic prediction costs a lot relative to the
    # perfect-prediction potential, for both policies
    assert result.summary["stride_profile"] < result.summary["perfect_profile"]
    assert result.summary["stride_heur"] < result.summary["perfect_heur"]
    assert result.summary["stride_profile"] > 0.4
