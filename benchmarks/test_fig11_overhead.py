"""Figure 11: slow-down from the 8-cycle thread-initialisation overhead."""

from repro.experiments.figures import figure11

from conftest import run_figure


def test_figure11_init_overhead(benchmark):
    result = run_figure(benchmark, figure11)
    # slow-down factors are <= 1 by construction and should be mild
    # (paper: ~12% for both policies)
    for policy in ("profile", "heuristics"):
        assert 0.6 <= result.summary[policy] <= 1.001, policy
