"""Ablation benches for the design choices DESIGN.md calls out.

These sweeps are not paper figures; they quantify the modelling decisions
this reproduction had to make (spawn ordering enforcement, CFG coverage,
spawn/commit costs, branch-predictor organisation).
"""

import pytest

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.metrics import harmonic_mean
from repro.spawning import ProfilePolicyConfig, select_profile_pairs
from repro.workloads import load_trace

from conftest import BENCH_SCALE

BENCHES = ("go", "compress", "ijpeg", "vortex")
POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


def _suite_hmean(config, policy=POLICY):
    speedups = []
    for name in BENCHES:
        trace = load_trace(name, BENCH_SCALE)
        pairs = select_profile_pairs(trace, policy)
        base = single_thread_cycles(trace, config)
        stats = simulate(trace, pairs, config)
        speedups.append(base / stats.cycles)
    return harmonic_mean(speedups)


def test_ablation_spawn_order_check(benchmark):
    """exact vs counter vs none ordering enforcement."""

    def sweep():
        return {
            mode: _suite_hmean(ProcessorConfig(spawn_order_check=mode))
            for mode in ("exact", "counter", "tail", "none")
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for mode, value in result.items():
        print(f"  order_check={mode:8s} hmean speed-up {value:.2f}")
    # the oracle check can only help relative to ghost spawns
    assert result["exact"] >= result["none"] * 0.9


def test_ablation_cfg_coverage(benchmark):
    """The paper's 90% coverage vs the 99% this reproduction defaults to."""

    def sweep():
        out = {}
        for coverage in (0.9, 0.95, 0.99):
            policy = ProfilePolicyConfig(coverage=coverage, max_distance=4096)
            out[coverage] = _suite_hmean(ProcessorConfig(), policy)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for coverage, value in result.items():
        print(f"  coverage={coverage:.2f} hmean speed-up {value:.2f}")
    assert result[0.99] > 0


def test_ablation_spawn_and_commit_costs(benchmark):
    """Zero-cost forks (paper potential study) vs charged forks."""

    def sweep():
        return {
            label: _suite_hmean(
                ProcessorConfig(spawn_cost=sc, commit_latency=cl)
            )
            for label, sc, cl in (
                ("free", 0, 0),
                ("cheap", 1, 1),
                ("costly", 4, 4),
            )
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, value in result.items():
        print(f"  {label:7s} hmean speed-up {value:.2f}")
    assert result["free"] >= result["costly"] * 0.95


def test_ablation_branch_predictor(benchmark):
    """gshare (paper) vs bimodal under thread-fragmented streams."""

    def sweep():
        return {
            bp: _suite_hmean(ProcessorConfig(branch_predictor=bp))
            for bp in ("gshare", "bimodal")
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for bp, value in result.items():
        print(f"  {bp:8s} hmean speed-up {value:.2f}")
    assert all(v > 0 for v in result.values())


def test_ablation_reaching_estimator(benchmark):
    """Empirical trace-scan vs the paper's Markov matrices for selection."""

    def sweep():
        out = {}
        for method in ("empirical", "markov"):
            policy = ProfilePolicyConfig(
                coverage=0.99, max_distance=4096, method=method
            )
            out[method] = _suite_hmean(ProcessorConfig(), policy)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for method, value in result.items():
        print(f"  method={method:10s} hmean speed-up {value:.2f}")
    # the two estimators agree on which pairs matter, so performance
    # should land in the same band
    ratio = result["markov"] / result["empirical"]
    assert 0.5 < ratio < 2.0


def test_ablation_keep_loop_heads(benchmark):
    """Protecting loop-head blocks from the coverage cut."""

    def sweep():
        out = {}
        for flag in (False, True):
            policy = ProfilePolicyConfig(
                coverage=0.99, max_distance=4096, keep_loop_heads=flag
            )
            out[flag] = _suite_hmean(ProcessorConfig(), policy)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for flag, value in result.items():
        print(f"  keep_loop_heads={flag!s:5s} hmean speed-up {value:.2f}")
    assert all(v > 0 for v in result.values())


def test_ablation_removal_footnotes(benchmark):
    """The paper's footnote variants of the removal policy: reviving
    removed pairs after a period, and treating 'a few co-active threads'
    as alone.  The paper reports both give very small changes."""

    def sweep():
        configs = {
            "plain_removal": ProcessorConfig(removal_cycles=50),
            "revival_500": ProcessorConfig(
                removal_cycles=50, removal_revival_cycles=500
            ),
            "coactive_3": ProcessorConfig(
                removal_cycles=50, removal_coactive_threshold=3
            ),
        }
        return {label: _suite_hmean(cfg) for label, cfg in configs.items()}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, value in result.items():
        print(f"  {label:14s} hmean speed-up {value:.2f}")
    # the paper observed only small deltas from either variant
    base = result["plain_removal"]
    assert abs(result["revival_500"] - base) / base < 0.5


def test_ablation_memory_oracle(benchmark):
    """Quantifies the paper's choice to never predict memory values."""

    def sweep():
        return {
            label: _suite_hmean(ProcessorConfig(perfect_memory=flag))
            for label, flag in (("svc_forwarding", False), ("oracle", True))
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, value in result.items():
        print(f"  {label:15s} hmean speed-up {value:.2f}")
    assert result["oracle"] >= result["svc_forwarding"] * 0.8
