"""Trace-driven simulator of the Clustered Speculative Multithreaded
Processor.

Simulation strategy (see DESIGN.md Section 5): threads own disjoint,
program-ordered segments of the sequential trace; the event loop always
advances the thread with the smallest current fetch cycle (ties to the
least speculative), so every spawn, forward and commit decision only
depends on events that have already been simulated.

Per thread unit the timing model implements the paper's Section 4.1 core:
4-wide fetch stopping at the first taken branch, 4-wide dataflow-limited
issue with the paper's functional-unit mix, a 64-entry ROB, a 10-bit
gshare whose tables persist across threads, and a 32KB 2-way L1.
Cross-thread register dataflow goes through the value predictor at spawn
time; mispredicted or unpredicted live-ins synchronise with their producer
(completion + 3-cycle forward, plus a recovery penalty when a wrong
prediction must be squashed).

Three interchangeable cores implement the timing model
(``ProcessorConfig.sim_core``):

- ``"columnar"`` (default) runs the hot loop over the trace's
  struct-of-arrays columns (:mod:`repro.exec.columns`) with hoisted
  locals, ring-buffer issue booking and a fixed-size per-thread commit
  ring — no per-instruction allocation or attribute chasing.
- ``"event"`` (:mod:`repro.cmt.event_core`) batches the columnar
  advance into a single run loop with a wakeup registry: blocked
  threads sleep until the advance that completes their producer wakes
  them, so the clock jumps over dead poll cycles instead of ticking
  them.
- ``"legacy"`` is the original object-graph core, kept verbatim as the
  bit-identical reference: the golden-stats fixture and the
  ``BENCH_simcore`` equal-stats gate compare the cores over the full
  workload × pair-scheme × predictor grid.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cmt.config import ProcessorConfig
from repro.cmt.event_core import run_event
from repro.cmt.spawn_runtime import SpawnRuntime
from repro.cmt.stats import SimulationStats, ThreadRecord
from repro.cmt.thread_unit import RING_WINDOW, ThreadUnit
from repro.errors import InvariantViolation, SimulationTimeout
from repro.exec.columns import (
    F_BRANCH,
    F_LOAD,
    F_STORE,
    F_TAKEN,
    F_UNCOND,
    LDST_INDEX,
)
from repro.exec.trace import Trace
from repro.isa.instructions import FU_LIMITS, FuClass, Opcode, fu_class, latency_of
from repro.obs.events import (
    EV_LIVEIN_CORRUPT,
    EV_PREDICT_HIT,
    EV_PREDICT_MISS,
    EV_PREDICT_SYNC,
    EV_SPAWN_DROP,
    EV_SPAWN_GHOST,
    EV_SPAWN_RETRY,
    EV_THREAD_COMMIT,
    EV_THREAD_RESTART,
    EV_THREAD_SPAWN,
    EV_THREAD_SQUASH,
    EV_THREAD_START,
    EV_TU_BLACKOUT,
    NULL_TRACER,
)
from repro.predictors.value import PerfectPredictor, make_value_predictor
from repro.spawning.pairs import SpawnPair, SpawnPairSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector

_INFINITY = float("inf")
_RING_MASK = RING_WINDOW - 1

#: Live-in prediction status values.
_HIT = 0  # predicted correctly: value ready at thread start
_MISS = 1  # predicted wrongly: synchronise + recovery penalty
_SYNC = 2  # not predicted: synchronise with the producer


class _Thread:
    """One speculative thread: a trace segment plus timing state."""

    __slots__ = (
        "start",
        "join",
        "cursor",
        "fetch_cycle",
        "tu",
        "start_cycle",
        "local_index",
        "commit_ring",
        "last_commit",
        "finished",
        "finish_cycle",
        "pair",
        "livein_status",
        "livein_actuals",
        "alone_cycles",
        "alone_reported",
        "executed",
        "ghost_tus",
        "seq",
        "waiting_on",
        "poll_pos",
        "poll_memo",
        "poll_root",
        "poll_epoch",
        "event_count",
        "last_pop",
        "poll_sleeping",
        "poll_sleep_base",
        "poll_registered",
    )

    def __init__(
        self,
        start: int,
        join: int,
        tu: ThreadUnit,
        start_cycle: int,
        pair: Optional[SpawnPair],
        seq: int,
    ):
        self.start = start
        self.join = join
        self.cursor = start
        self.fetch_cycle = start_cycle
        self.tu = tu
        self.start_cycle = start_cycle
        self.local_index = 0
        self.commit_ring: List[int] = []
        self.last_commit = start_cycle
        self.finished = False
        self.finish_cycle = start_cycle
        self.pair = pair
        self.livein_status: Dict[int, int] = {}
        self.livein_actuals: Dict[int, object] = {}
        self.alone_cycles = 0
        self.alone_reported = False
        self.executed = 0
        self.ghost_tus: List[ThreadUnit] = []
        self.seq = seq
        #: Trace position this thread sleeps on in the event core's
        #: wakeup registry (-1 = not sleeping).  Poll parking walks
        #: through sleepers to a live thread's clock.
        self.waiting_on = -1
        #: Producer position a spawn-PC-blocked thread is poll-parked on
        #: in the event core (-1 = not parked).  While parked, polls take
        #: the slim replay path instead of the full fetch-group body.
        self.poll_pos = -1
        #: ``(epoch, outcome, min_free_at)`` of the last failed spawn
        #: attempt while parked; replayed on later polls until the epoch
        #: moves (see event_core's spawn-outcome memo).
        self.poll_memo = None
        #: Cached live root of the blocking chain plus the epoch it was
        #: walked at — re-walked only when the epoch moves or the root
        #: stops being live.
        self.poll_root = None
        self.poll_epoch = -1
        #: Events (advances and polls) this thread has processed in the
        #: event core.  A sleeping poller's missed poll count is the
        #: delta of its chain root's event count (one legacy poll per
        #: root event).
        self.event_count = 0
        #: Cycle of this thread's latest event-core event; lets a wake
        #: trigger decide whether a sleeper's virtual poll for the
        #: root's latest event has fired yet.
        self.last_pop = start_cycle
        #: True while a parked poller sleeps off the heap entirely; its
        #: memoized spawn outcome is bulk-replayed at wake time.
        self.poll_sleeping = False
        #: ``poll_root.event_count`` at the moment sleep began.
        self.poll_sleep_base = 0
        #: Position this thread's wakeup-registry entry sits under
        #: (-1 = none); a sleeper re-sleeping on the same position must
        #: not register twice.
        self.poll_registered = -1

    def __lt__(self, other: "_Thread") -> bool:  # heap tie-breaking
        return self.start < other.start


class ClusteredProcessor:
    """Simulates one trace under a spawning policy and configuration."""

    def __init__(
        self,
        trace: Trace,
        pairs: Optional[SpawnPairSet] = None,
        config: Optional[ProcessorConfig] = None,
        injector: Optional["FaultInjector"] = None,
        tracer=None,
    ):
        self.trace = trace
        self.config = config or ProcessorConfig()
        self.pairs = pairs if pairs is not None else SpawnPairSet([])
        # Null-object tracing: every emission site guards on
        # ``tracer.enabled`` so the disabled path stays bit-identical.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.runtime = SpawnRuntime(self.pairs, self.config, tracer=self.tracer)
        self.value_predictor = make_value_predictor(
            self.config.value_predictor, self.config.value_predictor_kb
        )
        self.stats = SimulationStats()
        self.injector = injector
        self._tus = [ThreadUnit(i, self.config) for i in range(self.config.num_thread_units)]
        for tu in self._tus:
            tu.tracer = self.tracer
        if injector is not None:
            injector.tracer = self.tracer
            for tu in self._tus:
                tu.set_fault_windows(injector.blackout_windows(tu.tu_id))
        self._completion: List[Optional[int]] = [None] * len(trace)
        self._order: List[_Thread] = []  # active threads in program order
        self._heap: List = []
        self._last_commit_cycle = 0
        self._next_seq = 0
        self._executed_total = 0
        #: Unfinished threads in ``_order`` (columnar "alone" test).
        self._running = 0
        self._use_columns = self.config.sim_core != "legacy"
        # Ring-buffer issue booking relies on per-unit booking floors
        # never regressing.  That holds under fault injection too: a
        # restarted/folded thread's probes are bounded below by its
        # unit's ``free_at``, which is always at or above every floor
        # previously booked on that unit (blackout ends and commit
        # cycles both dominate the last ``begin_group`` floor), so
        # every columnar run books through the rings — the injector
        # equal-stats tests pin this down against the dict tracker.
        self._use_rings = self._use_columns
        #: trace position -> threads sleeping until it completes (the
        #: event core's wakeup registry; empty for the other cores).
        self._waiters: Dict[int, List[_Thread]] = {}
        #: Observability counters of the last event-core run (clock
        #: jumps, wakeups, stall reasons); ``None`` for the other cores.
        #: Never feeds :class:`SimulationStats` — results stay equal.
        self.event_metrics: Optional[Dict[str, object]] = None
        if self._use_columns:
            self._cols = trace.columns
            self._spawn_pcs = self.runtime.spawn_pcs()
            self._advance_impl = self._advance_columns
            self._predict_liveins_impl = self._predict_liveins_cols
        else:
            self._cols = None
            self._spawn_pcs = frozenset()
            self._advance_impl = self._advance_legacy
            self._predict_liveins_impl = self._predict_liveins
        if self.config.prime_value_predictor and self.config.value_predictor not in (
            "perfect",
            "none",
        ):
            if self._use_columns:
                self._prime_predictor_cols()
            else:
                self._prime_predictor()

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def run(self) -> SimulationStats:
        """Simulate the full trace; returns the statistics."""
        trace = self.trace
        if len(trace) == 0:
            return self.stats
        # The event core owns the whole loop (batch advance + wakeup
        # registry).  A patched ``_advance`` (subclass or test double)
        # must still intercept every fetch group, so those runs degrade
        # to the generic loop below over the columnar advance.
        if (
            self.config.sim_core == "event"
            and type(self)._advance is _ORIGINAL_ADVANCE
        ):
            return run_event(self)
        root = self._make_thread(
            start=0,
            join=len(trace),
            tu=self._tus[0],
            start_cycle=0,
            pair=None,
        )
        self._tus[0].free_at = _INFINITY  # occupied by the root
        self._order.append(root)
        self._running += 1
        self._push(root)
        if self.tracer.enabled:
            self.tracer.emit(
                EV_THREAD_START, 0, tu=0, thread=root.seq, root=True
            )

        budget = self.config.cycle_budget
        stall_limit = self.config.livelock_threshold
        stalled_events = 0
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        # Bind the core's advance once per run.  An overridden/patched
        # ``_advance`` (subclass or test double, or a patch on this class
        # itself) still wins; otherwise the dispatcher layer is skipped
        # for the duration of the loop.  ``_ORIGINAL_ADVANCE`` is captured
        # at import time so class-level monkeypatching is detected too.
        if type(self)._advance is _ORIGINAL_ADVANCE:
            advance = self._advance_impl
        else:
            advance = self._advance
        while heap:
            cycle, _start, thread = heappop(heap)
            if thread.finished or cycle != thread.fetch_cycle:
                continue  # stale heap entry
            if budget is not None and cycle > budget:
                raise SimulationTimeout(
                    "cycle budget exceeded",
                    cycle=cycle,
                    budget=budget,
                    committed=self.stats.threads_committed,
                )
            executed_before = self._executed_total
            advance(thread)
            if self._executed_total == executed_before:
                stalled_events += 1
                if stall_limit is not None and stalled_events > stall_limit:
                    raise InvariantViolation(
                        "no forward progress (livelock watchdog)",
                        cycle=cycle,
                        thread=thread.seq,
                        stalled_events=stalled_events,
                    )
            else:
                stalled_events = 0
            if not thread.finished:
                heappush(heap, (thread.fetch_cycle, thread.start, thread))

        return self._finalize_stats()

    def _finalize_stats(self) -> SimulationStats:
        """Fold per-unit and runtime counters into the final stats."""
        self.stats.cycles = int(self._last_commit_cycle)
        self.stats.instructions = len(self.trace)
        for tu in self._tus:
            self.stats.branch_predictions += tu.gshare.predictions
            self.stats.branch_hits += tu.gshare.hits
            self.stats.cache_accesses += tu.l1.accesses
            self.stats.cache_misses += tu.l1.misses
        self.stats.value_predictions = self.value_predictor.predictions
        self.stats.value_hits = self.value_predictor.hits
        self.stats.pairs_removed_alone = self.runtime.removed_alone
        self.stats.pairs_removed_min_size = self.runtime.removed_min_size
        self.stats.spawns_retried = self.runtime.spawn_retries
        self.stats.spawns_dropped = self.runtime.spawns_dropped
        self.stats.faults_injected += self.runtime.drop_events
        if self.injector is not None:
            self.stats.forward_delays = self.injector.forward_delay_events
            self.stats.faults_injected += self.injector.forward_delay_events
        return self.stats

    # ------------------------------------------------------------------
    # Event loop pieces.
    # ------------------------------------------------------------------

    def _push(self, thread: _Thread) -> None:
        heapq.heappush(self._heap, (thread.fetch_cycle, thread.start, thread))

    def _make_thread(
        self,
        start: int,
        join: int,
        tu: ThreadUnit,
        start_cycle: int,
        pair: Optional[SpawnPair],
    ) -> _Thread:
        thread = _Thread(start, join, tu, start_cycle, pair, self._next_seq)
        if self._use_columns:
            # Fixed-size commit ring indexed modulo the ROB size; the
            # legacy core grows a list instead.
            thread.commit_ring = [0] * self.config.rob_size
        self._next_seq += 1
        return thread

    def _advance(self, thread: _Thread) -> None:
        """Process one fetch group of ``thread`` (dispatches on ``sim_core``)."""
        self._advance_impl(thread)

    def _advance_legacy(self, thread: _Thread) -> None:
        """Process one fetch group of ``thread`` (reference core)."""
        config = self.config
        trace = self.trace
        completion = self._completion
        trace_on = self.tracer.enabled
        cycle = thread.fetch_cycle
        if self.injector is not None:
            dark_until = thread.tu.dark_until(cycle)
            if dark_until is not None:
                self._on_blackout(thread, cycle, dark_until)
                return
        # "Executing alone": fewer than ``removal_coactive_threshold``
        # other active threads are still running and at least one waiter
        # exists (a lone productive tail with idle units wastes nothing).
        alone = False
        if config.removal_cycles is not None and thread.pair is not None:
            if len(self._order) > 1:
                running_others = sum(
                    1
                    for other in self._order
                    if other is not thread and not other.finished
                )
                alone = running_others < config.removal_coactive_threshold

        pos = thread.cursor
        # ROB full at the group head: wait for the oldest entry to commit.
        if thread.local_index >= config.rob_size:
            blocker = thread.commit_ring[thread.local_index - config.rob_size]
            if blocker > cycle:
                cycle = blocker

        next_fetch = cycle + 1
        spawn_penalty = 0
        fetched = 0
        while fetched < config.fetch_width and pos < thread.join:
            if thread.local_index >= config.rob_size:
                blocker = thread.commit_ring[
                    thread.local_index - config.rob_size
                ]
                if blocker > cycle:
                    break  # the rest of the group waits for ROB space
            inst = trace[pos]
            op = inst.op

            # Spawn attempt at a spawning point (checked at fetch).
            if self.runtime.is_spawning_point(inst.pc):
                spawn_penalty += self._try_spawn(thread, pos, inst.pc, cycle)

            # Operand readiness.
            ready = cycle + 1  # decode/rename stage
            blocked_on = None
            deps = trace.register_deps[pos]
            for src_i, producer in enumerate(deps):
                if producer < 0:
                    continue
                if producer >= thread.start:
                    when = completion[producer]
                    if when is None:
                        raise InvariantViolation(
                            "internal producer not yet simulated",
                            cycle=cycle,
                            thread=thread.seq,
                            position=pos,
                            producer=producer,
                        )
                else:
                    when = self._external_value_time(
                        thread, inst.srcs[src_i], producer
                    )
                    if when is None:
                        blocked_on = producer
                        break
                if when > ready:
                    ready = when
            if blocked_on is None and op is Opcode.LOAD:
                producer = trace.memory_deps[pos]
                if producer >= 0 and not (
                    config.perfect_memory and producer < thread.start
                ):
                    when = completion[producer]
                    if when is None and producer < thread.start:
                        blocked_on = producer
                    elif when is None:
                        raise InvariantViolation(
                            "internal store not yet simulated",
                            cycle=cycle,
                            thread=thread.seq,
                            position=pos,
                            producer=producer,
                        )
                    else:
                        if producer < thread.start:
                            when += config.forward_latency
                        if when > ready:
                            ready = when
            if blocked_on is not None:
                # Producer thread has not simulated that position yet: park
                # until it progresses (its cycle bounds ours from below).
                owner = self._owner_of(blocked_on)
                stall_to = max(
                    thread.fetch_cycle + 1,
                    owner.fetch_cycle if owner is not None else cycle + 1,
                )
                thread.cursor = pos
                thread.fetch_cycle = stall_to
                self._track_alone(thread, alone, stall_to - cycle)
                return

            # Execution latency and resources.
            if op is Opcode.LOAD:
                if trace_on:
                    l1 = thread.tu.l1
                    miss_before = l1.misses
                    latency = 1 + l1.access(inst.addr)
                    if l1.misses != miss_before:
                        thread.tu.note_install(cycle, thread.seq, inst.addr, False)
                else:
                    latency = 1 + thread.tu.l1.access(inst.addr)
                fu = FuClass.LDST
            elif op is Opcode.STORE:
                if trace_on:
                    l1 = thread.tu.l1
                    miss_before = l1.misses
                    l1.access(inst.addr, is_store=True)
                    if l1.misses != miss_before:
                        thread.tu.note_install(cycle, thread.seq, inst.addr, True)
                else:
                    thread.tu.l1.access(inst.addr, is_store=True)
                latency = 1
                fu = FuClass.LDST
            else:
                fu = fu_class(op)
                latency = latency_of(op)
            issue = thread.tu.book_issue_legacy(ready, fu)
            done = issue + latency
            completion[pos] = done

            commit = done if done > thread.last_commit else thread.last_commit
            thread.last_commit = commit
            thread.commit_ring.append(commit)
            thread.local_index += 1
            thread.executed += 1
            pos += 1
            fetched += 1

            # Control flow shapes the fetch group.
            if inst.taken is not None:
                correct = thread.tu.gshare.update(inst.pc, inst.taken)
                if not correct:
                    next_fetch = done + config.mispredict_penalty
                    break
                if inst.taken:
                    break  # fetch stops at the first taken branch
            elif op in (Opcode.JUMP, Opcode.CALL, Opcode.RET):
                break  # unconditional transfers end the group too

        thread.cursor = pos
        thread.fetch_cycle = max(next_fetch, cycle + 1 + spawn_penalty)
        self._executed_total += fetched
        self._track_alone(thread, alone, thread.fetch_cycle - cycle)
        if pos >= thread.join:
            self._finish(thread)

    def _advance_columns(self, thread: _Thread) -> None:
        """Process one fetch group of ``thread`` over the trace columns.

        Bit-identical twin of :meth:`_advance_legacy`: same decisions in
        the same order, but every per-instruction fact is an indexed read
        from :class:`~repro.exec.columns.TraceColumns`, thread state lives
        in hoisted locals for the duration of the group, issue booking
        uses the thread unit's ring buffers, and the commit ring is a
        preallocated list indexed modulo the ROB size.
        """
        config = self.config
        cols = self._cols
        completion = self._completion
        cycle = thread.fetch_cycle
        if self.injector is not None:
            dark_until = thread.tu.dark_until(cycle)
            if dark_until is not None:
                self._on_blackout(thread, cycle, dark_until)
                return
        # "Executing alone": fewer than ``removal_coactive_threshold``
        # other active threads are still running and at least one waiter
        # exists (``_running`` replaces the legacy core's O(threads) scan).
        alone = False
        if config.removal_cycles is not None and thread.pair is not None:
            if len(self._order) > 1:
                # ``thread`` itself is running (the event loop never
                # advances a finished thread), so others = running - 1.
                alone = self._running - 1 < config.removal_coactive_threshold

        rob_size = config.rob_size
        commit_ring = thread.commit_ring
        local_index = thread.local_index
        pos = thread.cursor
        # ROB full at the group head: wait for the oldest entry to commit.
        if local_index >= rob_size:
            blocker = commit_ring[local_index % rob_size]
            if blocker > cycle:
                cycle = blocker

        tu = thread.tu
        if self._use_rings:
            tu.begin_group(cycle + 1)
            book_issue = tu.book_issue_idx
            # Ring state hoisted for the inline fast path below.  The base
            # is fixed for the group (only begin_group raises it) and
            # overflow entries made during the group are all beyond the
            # window, so ``spilled`` need not be refreshed in-group.
            ring_base = tu._ring_base
            issue_stamp = tu._issue_stamp
            issue_count = tu._issue_count
            fu_stamps = tu._fu_stamp
            fu_counts = tu._fu_count
            issue_width = tu.issue_width
            spilled = bool(tu._issue_overflow or tu._fu_overflow)
        else:
            book_issue = tu.book_issue_idx_dict
            spilled = True  # disables the inline ring fast path
        pc_col = cols.pc
        flags_col = cols.flags
        fu_col = cols.fu
        lat_col = cols.lat
        addr_col = cols.addr
        mem_dep_col = cols.mem_dep
        dep_pairs_col = cols.dep_pairs
        spawn_pcs = self._spawn_pcs
        l1_access = tu.l1.access
        trace_on = self.tracer.enabled
        if trace_on:
            l1 = tu.l1
            note_install = tu.note_install
            thread_seq = thread.seq
        gshare_update = tu.gshare.update
        fu_limits = FU_LIMITS
        ring_window = RING_WINDOW
        ring_mask = _RING_MASK
        fetch_width = config.fetch_width
        perfect_memory = config.perfect_memory
        forward_latency = config.forward_latency
        start = thread.start
        join = thread.join
        last_commit = thread.last_commit
        executed = 0

        next_fetch = cycle + 1
        spawn_penalty = 0
        fetched = 0
        while fetched < fetch_width and pos < join:
            if local_index >= rob_size:
                blocker = commit_ring[local_index % rob_size]
                if blocker > cycle:
                    break  # the rest of the group waits for ROB space
            flags = flags_col[pos]
            pc = pc_col[pos]

            # Spawn attempt at a spawning point (checked at fetch).
            if pc in spawn_pcs:
                spawn_penalty += self._try_spawn(thread, pos, pc, cycle)
                join = thread.join  # a successful spawn shrinks the segment

            # Operand readiness.
            ready = cycle + 1  # decode/rename stage
            blocked_on = None
            for producer, reg in dep_pairs_col[pos]:
                if producer >= start:
                    when = completion[producer]
                    if when is None:
                        raise InvariantViolation(
                            "internal producer not yet simulated",
                            cycle=cycle,
                            thread=thread.seq,
                            position=pos,
                            producer=producer,
                        )
                else:
                    when = self._external_value_time(thread, reg, producer)
                    if when is None:
                        blocked_on = producer
                        break
                if when > ready:
                    ready = when
            if blocked_on is None and flags & F_LOAD:
                producer = mem_dep_col[pos]
                if producer >= 0 and not (
                    perfect_memory and producer < start
                ):
                    when = completion[producer]
                    if when is None and producer < start:
                        blocked_on = producer
                    elif when is None:
                        raise InvariantViolation(
                            "internal store not yet simulated",
                            cycle=cycle,
                            thread=thread.seq,
                            position=pos,
                            producer=producer,
                        )
                    else:
                        if producer < start:
                            when += forward_latency
                        if when > ready:
                            ready = when
            if blocked_on is not None:
                # Producer thread has not simulated that position yet: park
                # until it progresses (its cycle bounds ours from below).
                owner = self._owner_of(blocked_on)
                stall_to = max(
                    thread.fetch_cycle + 1,
                    owner.fetch_cycle if owner is not None else cycle + 1,
                )
                thread.cursor = pos
                thread.local_index = local_index
                thread.last_commit = last_commit
                thread.executed += executed
                thread.fetch_cycle = stall_to
                self._track_alone(thread, alone, stall_to - cycle)
                return

            # Execution latency and resources.
            if flags & F_LOAD:
                if trace_on:
                    miss_before = l1.misses
                    latency = 1 + l1_access(addr_col[pos])
                    if l1.misses != miss_before:
                        note_install(cycle, thread_seq, addr_col[pos], False)
                else:
                    latency = 1 + l1_access(addr_col[pos])
                fu = LDST_INDEX
            elif flags & F_STORE:
                if trace_on:
                    miss_before = l1.misses
                    l1_access(addr_col[pos], True)
                    if l1.misses != miss_before:
                        note_install(cycle, thread_seq, addr_col[pos], True)
                else:
                    l1_access(addr_col[pos], True)
                latency = 1
                fu = LDST_INDEX
            else:
                fu = fu_col[pos]
                latency = lat_col[pos]
            # Inline ring booking for the common case (in-window, no
            # spill, first probed cycle has both an issue slot and a free
            # unit); anything else takes the full probe loop.
            if not spilled and 0 <= ready - ring_base < ring_window:
                slot = ready & ring_mask
                used = issue_count[slot] if issue_stamp[slot] == ready else 0
                fstamp = fu_stamps[fu]
                fcount = fu_counts[fu]
                busy = fcount[slot] if fstamp[slot] == ready else 0
                if used < issue_width and busy < fu_limits[fu]:
                    if used:
                        issue_count[slot] = used + 1
                    else:
                        issue_stamp[slot] = ready
                        issue_count[slot] = 1
                    if busy:
                        fcount[slot] = busy + 1
                    else:
                        fstamp[slot] = ready
                        fcount[slot] = 1
                    issue = ready
                else:
                    issue = book_issue(ready, fu)
            else:
                issue = book_issue(ready, fu)
            done = issue + latency
            completion[pos] = done

            if done > last_commit:
                last_commit = done
            commit_ring[local_index % rob_size] = last_commit
            local_index += 1
            executed += 1
            pos += 1
            fetched += 1

            # Control flow shapes the fetch group.
            if flags & F_BRANCH:
                correct = gshare_update(pc, flags & F_TAKEN != 0)
                if not correct:
                    next_fetch = done + config.mispredict_penalty
                    break
                if flags & F_TAKEN:
                    break  # fetch stops at the first taken branch
            elif flags & F_UNCOND:
                break  # unconditional transfers end the group too

        thread.cursor = pos
        thread.local_index = local_index
        thread.last_commit = last_commit
        thread.executed += executed
        floor = cycle + 1 + spawn_penalty
        if next_fetch < floor:
            next_fetch = floor
        thread.fetch_cycle = next_fetch
        self._executed_total += fetched
        self._track_alone(thread, alone, next_fetch - cycle)
        if pos >= join:
            self._finish(thread)

    def _track_alone(self, thread: _Thread, was_alone: bool, delta: int) -> None:
        if not was_alone or self.config.removal_cycles is None:
            return
        thread.alone_cycles += max(delta, 0)
        if (
            not thread.alone_reported
            and thread.alone_cycles >= self.config.removal_cycles
        ):
            thread.alone_reported = True
            self.runtime.note_alone_threshold(thread.pair, thread.fetch_cycle)

    # ------------------------------------------------------------------
    # Fault handling (graceful degradation).
    # ------------------------------------------------------------------

    def _on_blackout(self, thread: _Thread, cycle: int, dark_until: int) -> None:
        """The thread's unit went dark at ``cycle``.

        Speculative threads are squashed and gracefully degraded: restarted
        from scratch on a free healthy unit, or folded back into their
        predecessor's sequential execution.  The architectural head (the
        oldest active thread) cannot be squashed — its work is already
        committing — so it waits the window out.  Either way the committed
        instruction stream is exactly the sequential trace; only timing
        changes.
        """
        self.stats.faults_injected += 1
        self.stats.tu_blackouts += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EV_TU_BLACKOUT,
                cycle,
                tu=thread.tu.tu_id,
                thread=thread.seq,
                dark_until=dark_until,
            )
        index = self._order.index(thread)
        if thread.pair is not None and index > 0:
            target = self._free_tu(cycle)
            if target is not None:
                self._restart_on(thread, target, cycle, dark_until)
                return
            self._fold_into_predecessor(thread, index, cycle, dark_until)
            return
        # Architectural head (or root): stall until the unit returns.
        thread.fetch_cycle = dark_until
        self.stats.fault_cycles_lost += dark_until - cycle

    def _restart_on(
        self, thread: _Thread, target: ThreadUnit, cycle: int, dark_until: int
    ) -> None:
        """Squash ``thread`` and restart its whole segment on ``target``.

        Work completed so far is discarded (its issue bookings stay on the
        dark unit; the segment's completion times are rewritten in program
        order as the thread re-executes), so every trace position still
        commits exactly once.
        """
        self.stats.threads_degraded += 1
        self.stats.fault_cycles_lost += max(cycle - thread.start_cycle, 0)
        if self.tracer.enabled:
            self.tracer.emit(
                EV_THREAD_SQUASH,
                cycle,
                tu=thread.tu.tu_id,
                thread=thread.seq,
                mode="restart",
            )
        thread.tu.free_at = dark_until
        thread.tu = target
        target.free_at = _INFINITY
        restart = cycle + self.config.fault_restart_penalty
        if self.tracer.enabled:
            self.tracer.emit(
                EV_THREAD_RESTART, restart, tu=target.tu_id, thread=thread.seq
            )
        thread.cursor = thread.start
        thread.local_index = 0
        if not self._use_columns:
            thread.commit_ring = []
        # (columnar: the preallocated ring is reused — every slot is
        # rewritten before it can be read again once local_index restarts)
        thread.executed = 0
        thread.start_cycle = restart
        thread.last_commit = restart
        thread.fetch_cycle = restart

    def _fold_into_predecessor(
        self, thread: _Thread, index: int, cycle: int, dark_until: int
    ) -> None:
        """Squash ``thread`` and give its segment back to its predecessor.

        The predecessor simply keeps fetching past its old join point —
        sequential re-execution of the squashed work, as if the spawn had
        never happened.  A predecessor that had already finished is
        reactivated.
        """
        pred = self._order[index - 1]
        self._order.pop(index)
        pred.join = thread.join
        thread.finished = True  # drops the thread from the event loop
        self._running -= 1
        thread.tu.free_at = dark_until
        for tu in thread.ghost_tus:
            tu.free_at = cycle
        thread.ghost_tus = []
        self.stats.threads_degraded += 1
        self.stats.fault_cycles_lost += max(cycle - thread.start_cycle, 0)
        if self.tracer.enabled:
            self.tracer.emit(
                EV_THREAD_SQUASH,
                cycle,
                tu=thread.tu.tu_id,
                thread=thread.seq,
                mode="fold",
                pred=pred.seq,
            )
        if pred.finished:
            pred.finished = False
            self._running += 1
            pred.fetch_cycle = max(pred.finish_cycle, cycle)
            self._push(pred)

    def _owner_of(self, pos: int) -> Optional[_Thread]:
        """Active thread whose segment contains trace position ``pos``."""
        for thread in self._order:
            if thread.start <= pos < thread.join:
                return thread
        return None

    def _external_value_time(
        self, thread: _Thread, reg: int, producer: int
    ) -> Optional[int]:
        """Availability of a register produced before the thread started.

        Returns None when the producer has not been simulated yet (the
        caller parks the thread).
        """
        status = thread.livein_status.get(reg)
        if status == _HIT:
            return thread.start_cycle
        when = self._completion[producer]
        if when is None:
            return None
        when += self.config.forward_latency
        injector = self.injector
        if injector is not None and injector.forward_rate:
            when += injector.forward_delay(thread.seq, reg, producer)
        if status == _MISS:
            when += self.config.misprediction_recovery
        return when

    # ------------------------------------------------------------------
    # Spawning.
    # ------------------------------------------------------------------

    def _try_spawn(self, parent: _Thread, pos: int, sp_pc: int, cycle: int) -> int:
        """Attempt a spawn; returns the cycles the fork op cost the parent."""
        config = self.config
        if config.spawn_order_check == "tail" and (
            self._order and self._order[-1] is not parent
        ):
            return 0
        candidates = self.runtime.candidates(sp_pc, cycle)
        if not candidates:
            return 0
        trace = self.trace

        # "Already started": the immediate successor sits exactly at the
        # best CQIP — nothing to do.
        best = candidates[0]
        if parent.join < len(trace) and trace[parent.join].pc == best.cqip_pc:
            self.stats.spawns_skipped_existing += 1
            return 0

        if (
            config.spawn_order_check == "counter"
            and parent.pair is not None
            and self._order
            and self._order[-1] is not parent
        ):
            # Interior thread: a new thread must fit between the parent and
            # its existing successor, so reject candidates expected to
            # outrun the parent's remaining segment.  The tail thread is
            # exempt — anything it spawns becomes the new tail, which is
            # order-safe by construction.
            remaining = parent.pair.expected_distance - (pos - parent.start)
            remaining *= config.order_check_slack
            candidates = [
                pair
                for pair in candidates
                if pair.expected_distance <= remaining
            ]
            if not candidates:
                self.stats.spawns_rejected_order += 1
                return 0

        # Under fault injection the request may be dropped in the spawn
        # interconnect; the spawn logic retries with bounded backoff.
        spawn_cycle = cycle
        if self._injector_drops_spawns():
            granted, retries, delay = self.runtime.request_spawn(
                self.injector, sp_pc, parent.seq, pos
            )
            spawn_cycle = cycle + delay
            self.stats.fault_cycles_lost += delay
            if self.tracer.enabled and (retries or not granted):
                self.tracer.emit(
                    EV_SPAWN_RETRY if granted else EV_SPAWN_DROP,
                    cycle,
                    thread=parent.seq,
                    sp_pc=sp_pc,
                    retries=retries,
                    delay=delay,
                )
            if not granted:
                # The request is abandoned; the backoff cycles still
                # occupied the parent's front-end.
                return delay

        tu = self._free_tu(spawn_cycle)
        if tu is None:
            self.stats.spawns_denied_no_tu += 1
            return 0

        chosen = None
        occurrence = None
        for index, pair in enumerate(candidates):
            occurrence = trace.next_occurrence(pair.cqip_pc, pos, parent.join)
            if occurrence is not None:
                chosen = pair
                if index > 0:
                    self.stats.reassign_fallbacks += 1
                break
        if chosen is None or occurrence is None:
            if config.spawn_order_check == "exact":
                # Oracle ordering: the rejected spawn consumes nothing
                # (beyond any interconnect retries already paid).
                self.stats.spawns_rejected_order += 1
                return spawn_cycle - cycle
            # Control misspeculation: the hardware spawns and only later
            # discovers the CQIP is never reached; the unit is wasted until
            # the parent exhausts its segment.
            tu.free_at = _INFINITY
            parent.ghost_tus.append(tu)
            self.stats.control_misspeculations += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EV_SPAWN_GHOST,
                    cycle,
                    tu=tu.tu_id,
                    thread=parent.seq,
                    sp_pc=sp_pc,
                )
            return config.spawn_cost + (spawn_cycle - cycle)

        start_cycle = (
            spawn_cycle + self.config.spawn_cost + self.config.init_overhead
        )
        child = self._make_thread(
            start=occurrence,
            join=parent.join,
            tu=tu,
            start_cycle=start_cycle,
            pair=chosen,
        )
        parent.join = occurrence
        tu.free_at = _INFINITY
        insort(self._order, child, key=lambda t: t.start)
        self._running += 1
        self._push(child)
        self.stats.spawns += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EV_THREAD_SPAWN,
                cycle,
                tu=tu.tu_id,
                thread=child.seq,
                parent=parent.seq,
                sp_pc=sp_pc,
                cqip_pc=chosen.cqip_pc,
                start_pos=occurrence,
                spawn_pos=pos,
            )
            self.tracer.emit(
                EV_THREAD_START, start_cycle, tu=tu.tu_id, thread=child.seq
            )
        self._predict_liveins_impl(child, chosen, spawn_pos=pos)
        return self.config.spawn_cost + (spawn_cycle - cycle)

    def _injector_drops_spawns(self) -> bool:
        return self.injector is not None and self.injector.spawn_drop_rate > 0

    def _free_tu(self, cycle: int) -> Optional[ThreadUnit]:
        check_dark = self.injector is not None
        best = None
        for tu in self._tus:
            if tu.free_at > cycle:
                continue
            if check_dark and tu.dark_until(cycle) is not None:
                continue
            if best is None or tu.free_at < best.free_at:
                best = tu
        return best

    def _predict_liveins(
        self, child: _Thread, pair: SpawnPair, spawn_pos: int
    ) -> None:
        """Enumerate live-in registers of the new thread and predict them.

        Registers whose last producer executed *before the spawning point*
        are copied from the parent's register file at spawn (always
        correct, no prediction involved).  Only values produced between
        the SP and the CQIP — not yet computed at spawn time — go through
        the value predictor, matching the paper's live-in definition [14].
        """
        trace = self.trace
        vp = self.value_predictor
        injector = self.injector
        perfect = isinstance(vp, PerfectPredictor)
        predict_nothing = self.config.value_predictor == "none"
        trace_on = self.tracer.enabled
        if trace_on:
            t_emit = self.tracer.emit
            t_cycle = int(child.start_cycle)
            t_tu = child.tu.tu_id
            t_seq = child.seq
        # The predictor was last trained at the most recent commit of this
        # pair; in-flight instances (including the new one) determine how
        # far the recurrence must be projected forward.
        pair_key = pair.key()
        lookahead = sum(
            1
            for t in self._order
            if t.pair is not None and t.pair.key() == pair_key
        )
        lookahead = max(lookahead, 1)
        start = child.start
        end = min(child.join, start + self.config.livein_scan_cap)
        written = set()
        reg_deps = trace.register_deps
        for pos in range(start, end):
            inst = trace[pos]
            deps = reg_deps[pos]
            for src_i, reg in enumerate(inst.srcs):
                if reg == 0 or reg in written or reg in child.livein_status:
                    continue
                producer = deps[src_i]
                if producer >= start:
                    continue
                if producer < spawn_pos:
                    # Computed before the spawn fired: the register-file
                    # copy at spawn delivers it for free (a copy is a
                    # trivially-correct prediction and counts as one, as
                    # in the DMT baseline predictor).
                    child.livein_status[reg] = _HIT
                    if not perfect and not predict_nothing:
                        vp.record(True)
                    if trace_on:
                        t_emit(
                            EV_PREDICT_HIT, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg, source="copy",
                        )
                    continue
                actual = trace[producer].dst_value if producer >= 0 else 0
                base = trace.value_of_register_at(reg, spawn_pos)
                child.livein_actuals[reg] = (base, actual)
                if perfect:
                    child.livein_status[reg] = _HIT
                    vp.record(True)
                    if trace_on:
                        t_emit(
                            EV_PREDICT_HIT, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg, source="predicted",
                        )
                elif predict_nothing:
                    child.livein_status[reg] = _SYNC
                    if trace_on:
                        t_emit(
                            EV_PREDICT_SYNC, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg,
                        )
                else:
                    predicted = vp.predict(
                        pair.sp_pc, pair.cqip_pc, reg, base, lookahead
                    )
                    hit = predicted is not None and predicted == actual
                    vp.record(hit)
                    child.livein_status[reg] = _HIT if hit else _MISS
                    if trace_on:
                        t_emit(
                            EV_PREDICT_HIT if hit else EV_PREDICT_MISS,
                            t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg, source="predicted",
                        )
                if (
                    injector is not None
                    and child.livein_status[reg] == _HIT
                    and injector.corrupt_livein(child.seq, reg)
                ):
                    # The delivered value is corrupted in flight: the
                    # consumer detects the mismatch and synchronises with
                    # the producer plus the recovery penalty.
                    child.livein_status[reg] = _MISS
                    self.stats.liveins_corrupted += 1
                    self.stats.faults_injected += 1
                    if trace_on:
                        t_emit(
                            EV_LIVEIN_CORRUPT, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg,
                        )
            if inst.dst is not None and inst.dst != 0:
                written.add(inst.dst)

    def _predict_liveins_cols(
        self, child: _Thread, pair: SpawnPair, spawn_pos: int
    ) -> None:
        """Columnar twin of :meth:`_predict_liveins` (same scan, same
        predictor call order) over the ``scan_reads``/``dst_nz`` columns.

        ``scan_reads`` already excludes register 0 reads — a build-time
        restatement of the legacy loop's first ``continue``.
        """
        cols = self._cols
        trace = self.trace
        vp = self.value_predictor
        injector = self.injector
        perfect = isinstance(vp, PerfectPredictor)
        predict_nothing = self.config.value_predictor == "none"
        trace_on = self.tracer.enabled
        if trace_on:
            t_emit = self.tracer.emit
            t_cycle = int(child.start_cycle)
            t_tu = child.tu.tu_id
            t_seq = child.seq
        start = child.start
        end = min(child.join, start + self.config.livein_scan_cap)
        status = child.livein_status
        # One skip table covers both "defined inside the window" and
        # "already classified": a register enters it exactly when no
        # later read of it can be a new live-in.  The producer >= start
        # skips below deliberately do NOT enter it — the dst column adds
        # the register once the in-window definition is reached.  A
        # 64-slot flag array (the ISA has 64 registers) replaces the
        # legacy core's set: the scan is this method's hot loop.
        done = bytearray(64)
        for seen_reg in status:
            done[seen_reg] = 1

        if injector is None and not trace_on and (perfect or predict_nothing):
            # Oracle memoized-window path: neither oracle consults
            # per-read values or emits per-read events, so the live-in
            # set and producers are all that matter, and the memoized
            # window classification replaces the scan outright.
            hits = 0
            for reg, producer in cols.livein_window(start, end):
                if done[reg]:
                    continue
                if perfect:
                    status[reg] = _HIT
                    if producer >= spawn_pos:
                        hits += 1
                elif producer < spawn_pos:
                    status[reg] = _HIT
                else:
                    status[reg] = _SYNC
            if perfect:
                vp.predictions += hits
                vp.hits += hits
            return

        if injector is None and not trace_on:
            # Table-predictor memoized-window path.  ``predict`` never
            # writes predictor state and ``record`` is a pure counter,
            # so the window scan's only order-sensitive effect is the
            # insertion order of ``livein_actuals`` — commit-time
            # training replays it into the (mutable, hash-colliding)
            # tables.  The memoized window comes in first-read source
            # order, exactly the order the scan would discover regs.
            pair_key = pair.key()
            lookahead = max(
                sum(
                    1
                    for t in self._order
                    if t.pair is not None and t.pair.key() == pair_key
                ),
                1,
            )
            actuals = child.livein_actuals
            dst_values = cols.dst_value
            value_at = trace.value_of_register_at
            record = vp.record
            predict = vp.predict
            sp = pair.sp_pc
            cqip = pair.cqip_pc
            for reg, producer in cols.livein_window(start, end):
                if done[reg]:
                    continue
                if producer < spawn_pos:
                    # Register-file copy at spawn: free hit.
                    status[reg] = _HIT
                    record(True)
                    continue
                actual = dst_values[producer]
                base = value_at(reg, spawn_pos)
                actuals[reg] = (base, actual)
                predicted = predict(sp, cqip, reg, base, lookahead)
                hit = predicted is not None and predicted == actual
                record(hit)
                status[reg] = _HIT if hit else _MISS
            return

        reads_window = cols.scan_reads[start:end]
        dst_window = cols.dst_nz[start:end]

        if perfect and injector is None:
            # Oracle fast path: every live-in is a hit and train() is a
            # no-op, so the scan only has to find the distinct live-ins
            # and bump the predictor's counters in one batch.
            hits = 0
            for reads, dst in zip(reads_window, dst_window):
                for reg, producer in reads:
                    if done[reg] or producer >= start:
                        continue
                    done[reg] = 1
                    status[reg] = _HIT
                    if producer >= spawn_pos:
                        # Pre-spawn producers are free register-file
                        # copies — the oracle only counts in-window ones.
                        hits += 1
                        if trace_on:
                            t_emit(
                                EV_PREDICT_HIT, t_cycle, tu=t_tu,
                                thread=t_seq, reg=reg, source="predicted",
                            )
                    elif trace_on:
                        t_emit(
                            EV_PREDICT_HIT, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg, source="copy",
                        )
                if dst >= 0:
                    done[dst] = 1
            vp.predictions += hits
            vp.hits += hits
            return

        if predict_nothing and injector is None:
            # No-predictor fast path: pre-spawn producers are free
            # register-file copies (not counted), in-window producers
            # synchronise; nothing is recorded either way.
            for reads, dst in zip(reads_window, dst_window):
                for reg, producer in reads:
                    if done[reg] or producer >= start:
                        continue
                    done[reg] = 1
                    if producer < spawn_pos:
                        status[reg] = _HIT
                        if trace_on:
                            t_emit(
                                EV_PREDICT_HIT, t_cycle, tu=t_tu,
                                thread=t_seq, reg=reg, source="copy",
                            )
                    else:
                        status[reg] = _SYNC
                        if trace_on:
                            t_emit(
                                EV_PREDICT_SYNC, t_cycle, tu=t_tu,
                                thread=t_seq, reg=reg,
                            )
                if dst >= 0:
                    done[dst] = 1
            return

        table_vp = not perfect and not predict_nothing
        lookahead = 1
        if table_vp:
            # In-flight instances of the pair (only table predictors
            # extrapolate, so the oracles skip the scan).
            pair_key = pair.key()
            lookahead = max(
                sum(
                    1
                    for t in self._order
                    if t.pair is not None and t.pair.key() == pair_key
                ),
                1,
            )
        actuals = child.livein_actuals
        dst_values = cols.dst_value
        value_at = trace.value_of_register_at
        record = vp.record
        for reads, dst in zip(reads_window, dst_window):
            for reg, producer in reads:
                if done[reg]:
                    continue
                if producer >= start:
                    continue
                done[reg] = 1
                if producer < spawn_pos:
                    # Computed before the spawn fired: the register-file
                    # copy at spawn delivers it for free.
                    status[reg] = _HIT
                    if table_vp:
                        record(True)
                    if trace_on:
                        t_emit(
                            EV_PREDICT_HIT, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg, source="copy",
                        )
                    continue
                # Here spawn_pos <= producer < start, so the producer is a
                # recorded position (>= 0) between SP and CQIP.  The
                # (base, actual) observation pair is only reconstructed
                # for table predictors: the perfect/none oracles' train()
                # is a no-op, so the legacy core's bookkeeping of it has
                # no observable effect.
                if perfect:
                    status[reg] = _HIT
                    record(True)
                    if trace_on:
                        t_emit(
                            EV_PREDICT_HIT, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg, source="predicted",
                        )
                elif predict_nothing:
                    status[reg] = _SYNC
                    if trace_on:
                        t_emit(
                            EV_PREDICT_SYNC, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg,
                        )
                else:
                    actual = dst_values[producer]
                    base = value_at(reg, spawn_pos)
                    actuals[reg] = (base, actual)
                    predicted = vp.predict(
                        pair.sp_pc, pair.cqip_pc, reg, base, lookahead
                    )
                    hit = predicted is not None and predicted == actual
                    record(hit)
                    status[reg] = _HIT if hit else _MISS
                    if trace_on:
                        t_emit(
                            EV_PREDICT_HIT if hit else EV_PREDICT_MISS,
                            t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg, source="predicted",
                        )
                if (
                    injector is not None
                    and status[reg] == _HIT
                    and injector.corrupt_livein(child.seq, reg)
                ):
                    status[reg] = _MISS
                    self.stats.liveins_corrupted += 1
                    self.stats.faults_injected += 1
                    if trace_on:
                        t_emit(
                            EV_LIVEIN_CORRUPT, t_cycle, tu=t_tu, thread=t_seq,
                            reg=reg,
                        )
            if dst >= 0:
                done[dst] = 1

    def _prime_predictor(self) -> None:
        """Train the value-predictor tables from the profiling run.

        Replays up to ``prime_samples`` dynamic instances of every pair,
        feeding (spawn-time base, CQIP live-in) observations exactly as
        commit-time training would — the spawning pairs already come from
        this profile pass, so the hardware tables can be preset with it.
        """
        trace = self.trace
        vp = self.value_predictor
        config = self.config
        reg_deps = trace.register_deps
        for sp_pc in self.pairs.spawning_points():
            for pair in self.pairs.alternatives(sp_pc):
                positions = trace.positions_of(pair.sp_pc)
                window = int(8 * max(pair.expected_distance, 32))
                taken = 0
                for s_pos in positions:
                    if taken >= config.prime_samples:
                        break
                    c_pos = trace.next_occurrence(
                        pair.cqip_pc, s_pos, min(len(trace), s_pos + window)
                    )
                    if c_pos is None:
                        continue
                    taken += 1
                    end = min(
                        len(trace),
                        c_pos + min(int(pair.expected_distance) + 1,
                                    config.livein_scan_cap),
                    )
                    written = set()
                    seen = set()
                    for pos in range(c_pos, end):
                        inst = trace[pos]
                        deps = reg_deps[pos]
                        for src_i, reg in enumerate(inst.srcs):
                            if reg == 0 or reg in written or reg in seen:
                                continue
                            producer = deps[src_i]
                            if producer >= c_pos or producer < s_pos:
                                continue
                            seen.add(reg)
                            base = trace.value_of_register_at(reg, s_pos)
                            actual = trace[producer].dst_value
                            vp.train(pair.sp_pc, pair.cqip_pc, reg, base, actual)
                        if inst.dst is not None and inst.dst != 0:
                            written.add(inst.dst)

    def _prime_predictor_cols(self) -> None:
        """Columnar twin of :meth:`_prime_predictor` (same training order).

        The training sequence is a pure function of the trace, the pair
        set, and the priming parameters, so it is memoized on the trace
        columns and replayed into the (fresh) predictor on repeat
        simulations of the same workload/policy cell — only the
        ``train`` calls themselves re-run.
        """
        trace = self.trace
        cols = self._cols
        vp = self.value_predictor
        config = self.config
        pairs = self.pairs
        cache_key = (
            config.prime_samples,
            config.livein_scan_cap,
            tuple(
                (p.sp_pc, p.cqip_pc, p.expected_distance)
                for sp in pairs.spawning_points()
                for p in pairs.alternatives(sp)
            ),
        )
        sequence = cols._prime_cache.get(cache_key)
        if sequence is not None:
            train = vp.train
            for sp_pc, cqip_pc, reg, base, actual in sequence:
                train(sp_pc, cqip_pc, reg, base, actual)
            return
        sequence = []
        record = sequence.append
        scan_reads = cols.scan_reads
        dst_nz = cols.dst_nz
        dst_values = cols.dst_value
        value_at = trace.value_of_register_at
        length = len(trace)
        for sp_pc in pairs.spawning_points():
            for pair in pairs.alternatives(sp_pc):
                positions = trace.positions_of(pair.sp_pc)
                window = int(8 * max(pair.expected_distance, 32))
                taken = 0
                for s_pos in positions:
                    if taken >= config.prime_samples:
                        break
                    c_pos = trace.next_occurrence(
                        pair.cqip_pc, s_pos, min(length, s_pos + window)
                    )
                    if c_pos is None:
                        continue
                    taken += 1
                    end = min(
                        length,
                        c_pos + min(int(pair.expected_distance) + 1,
                                    config.livein_scan_cap),
                    )
                    written = set()
                    seen = set()
                    for pos in range(c_pos, end):
                        for reg, producer in scan_reads[pos]:
                            if reg in written or reg in seen:
                                continue
                            if producer >= c_pos or producer < s_pos:
                                continue
                            seen.add(reg)
                            base = value_at(reg, s_pos)
                            record((
                                pair.sp_pc, pair.cqip_pc, reg, base,
                                dst_values[producer],
                            ))
                        dst = dst_nz[pos]
                        if dst >= 0:
                            written.add(dst)
        cols._prime_cache[cache_key] = sequence
        train = vp.train
        for sp_pc, cqip_pc, reg, base, actual in sequence:
            train(sp_pc, cqip_pc, reg, base, actual)

    # ------------------------------------------------------------------
    # Completion.
    # ------------------------------------------------------------------

    def _finish(self, thread: _Thread) -> None:
        thread.finished = True
        self._running -= 1
        thread.finish_cycle = max(thread.last_commit, thread.start_cycle)
        for tu in thread.ghost_tus:
            tu.free_at = thread.finish_cycle
        thread.ghost_tus = []
        # Commit every leading finished thread, in program order.
        while self._order and self._order[0].finished:
            oldest = self._order.pop(0)
            commit_cycle = max(
                oldest.finish_cycle,
                self._last_commit_cycle + self.config.commit_latency,
            )
            self._last_commit_cycle = commit_cycle
            oldest.tu.free_at = commit_cycle
            # Retirement guard: every future probe on this unit is past
            # its commit cycle, so older booking entries are dead weight.
            # Fault injection can regress booking floors (see __init__),
            # so only healthy runs trim.
            if self.injector is None:
                oldest.tu.trim_bandwidth(int(commit_cycle))
            self.stats.threads_committed += 1
            self.stats.thread_sizes.append(oldest.executed)
            self.stats.busy_cycles += max(
                oldest.finish_cycle - oldest.start_cycle, 0
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    EV_THREAD_COMMIT,
                    int(commit_cycle),
                    tu=oldest.tu.tu_id,
                    thread=oldest.seq,
                    size=oldest.executed,
                )
            if oldest.pair is not None:
                vp = self.value_predictor
                for reg, (base, actual) in oldest.livein_actuals.items():
                    vp.train(
                        oldest.pair.sp_pc, oldest.pair.cqip_pc, reg, base, actual
                    )
            if self.config.collect_timeline:
                hits = sum(
                    1 for s in oldest.livein_status.values() if s == _HIT
                )
                self.stats.timeline.append(
                    ThreadRecord(
                        start_pos=oldest.start,
                        size=oldest.executed,
                        tu=oldest.tu.tu_id,
                        start_cycle=int(oldest.start_cycle),
                        finish_cycle=int(oldest.finish_cycle),
                        commit_cycle=int(commit_cycle),
                        pair=oldest.pair.key() if oldest.pair else None,
                        livein_hits=hits,
                        livein_misses=len(oldest.livein_status) - hits,
                    )
                )
            self.runtime.note_thread_size(
                oldest.pair, oldest.executed, int(commit_cycle)
            )


#: The pristine dispatcher, captured at import time so the event loop can
#: tell "nobody overrode ``_advance``" apart from a class-level patch.
_ORIGINAL_ADVANCE = ClusteredProcessor._advance


def simulate(
    trace: Trace,
    pairs: Optional[SpawnPairSet] = None,
    config: Optional[ProcessorConfig] = None,
    injector: Optional["FaultInjector"] = None,
    tracer=None,
) -> SimulationStats:
    """Run one simulation (convenience wrapper).

    Pass an :class:`~repro.obs.events.EventTracer` as ``tracer`` to
    record the structured event stream; ``None`` (the default) keeps the
    zero-cost disabled path.
    """
    return ClusteredProcessor(trace, pairs, config, injector, tracer).run()


def single_thread_cycles(
    trace: Trace, config: Optional[ProcessorConfig] = None
) -> int:
    """Cycles of the single-threaded baseline under the same core model."""
    base = (config or ProcessorConfig()).single_threaded()
    return simulate(trace, SpawnPairSet([]), base).cycles
