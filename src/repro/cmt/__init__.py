"""Clustered Speculative Multithreaded Processor simulator."""

from repro.cmt.config import ProcessorConfig
from repro.cmt.processor import ClusteredProcessor, simulate, single_thread_cycles
from repro.cmt.spawn_runtime import SpawnRuntime
from repro.cmt.stats import SimulationStats
from repro.cmt.thread_unit import ThreadUnit

__all__ = [
    "ProcessorConfig",
    "ClusteredProcessor",
    "simulate",
    "single_thread_cycles",
    "SimulationStats",
    "SpawnRuntime",
    "ThreadUnit",
]
