"""Simulation statistics returned by the processor model."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ThreadRecord:
    """Lifetime of one committed thread (collected when
    ``ProcessorConfig.collect_timeline`` is set)."""

    start_pos: int
    size: int
    tu: int
    start_cycle: int
    finish_cycle: int
    commit_cycle: int
    pair: Optional[Tuple[int, int]]  # (SP pc, CQIP pc); None for the root
    livein_hits: int
    livein_misses: int


@dataclass
class SimulationStats:
    """Counters for one simulated execution.

    ``avg_active_threads`` is time-weighted (thread busy cycles divided by
    total cycles — the quantity of Figure 4); ``avg_thread_size`` is
    instructions executed per committed thread (Figure 7a);
    ``value_hit_rate`` counts live-in predictions only (Figure 9a).
    """

    cycles: int = 0
    instructions: int = 0
    threads_committed: int = 0
    spawns: int = 0
    control_misspeculations: int = 0
    spawns_denied_no_tu: int = 0
    spawns_skipped_existing: int = 0
    spawns_rejected_order: int = 0
    pairs_removed_alone: int = 0
    pairs_removed_min_size: int = 0
    value_predictions: int = 0
    value_hits: int = 0
    branch_predictions: int = 0
    branch_hits: int = 0
    cache_accesses: int = 0
    cache_misses: int = 0
    busy_cycles: float = 0.0
    thread_sizes: List[int] = field(default_factory=list)
    reassign_fallbacks: int = 0
    # --- fault injection (all zero unless a FaultInjector is attached) ---
    #: Total fault events that fired (blackouts hit, dropped spawn
    #: attempts, corrupted live-ins, delayed forwards).
    faults_injected: int = 0
    #: Blackout windows a running thread actually hit.
    tu_blackouts: int = 0
    #: Threads squashed and gracefully degraded (restarted on another unit
    #: or folded back into their predecessor's sequential execution).
    threads_degraded: int = 0
    #: Spawn requests abandoned after exhausting their retry budget.
    spawns_dropped: int = 0
    #: Retry attempts spent on spawn requests that eventually succeeded.
    spawns_retried: int = 0
    #: Predicted live-ins corrupted into the synchronise+recovery path.
    liveins_corrupted: int = 0
    #: Cross-thread forwards that suffered an injected delay.
    forward_delays: int = 0
    #: Busy cycles of squashed work plus cycles stalled in dark units.
    fault_cycles_lost: int = 0
    #: Per-thread records, only populated under ``collect_timeline``.
    timeline: List[ThreadRecord] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def avg_active_threads(self) -> float:
        return self.busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def avg_thread_size(self) -> float:
        if not self.thread_sizes:
            return 0.0
        return sum(self.thread_sizes) / len(self.thread_sizes)

    @property
    def value_hit_rate(self) -> float:
        if not self.value_predictions:
            return 0.0
        return self.value_hits / self.value_predictions

    @property
    def branch_hit_rate(self) -> float:
        if not self.branch_predictions:
            return 0.0
        return self.branch_hits / self.branch_predictions

    @property
    def cache_miss_rate(self) -> float:
        if not self.cache_accesses:
            return 0.0
        return self.cache_misses / self.cache_accesses

    def to_dict(self) -> Dict[str, object]:
        """Full structural dump (every counter, sizes, timeline).

        Used by the golden-stats regression fixture and the sim-core
        equal-stats gate: two simulations are considered bit-identical
        exactly when their ``to_dict()`` results compare equal.
        """
        return asdict(self)

    def summary(self) -> Dict[str, float]:
        """Flat dict view for tables and logs."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": round(self.ipc, 3),
            "threads": self.threads_committed,
            "spawns": self.spawns,
            "ghost_spawns": self.control_misspeculations,
            "avg_active_threads": round(self.avg_active_threads, 2),
            "avg_thread_size": round(self.avg_thread_size, 1),
            "value_hit_rate": round(self.value_hit_rate, 3),
            "branch_hit_rate": round(self.branch_hit_rate, 3),
            "faults_injected": self.faults_injected,
            "threads_degraded": self.threads_degraded,
            "fault_cycles_lost": self.fault_cycles_lost,
        }
