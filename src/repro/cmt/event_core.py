"""Event-driven batch-advance simulator core (``sim_core="event"``).

The columnar core (:meth:`ClusteredProcessor._advance_columns`) is fast
per fetch group but still schedules *every* group through the generic
event loop, including the dead ones: a thread blocked on a cross-thread
value re-parks at its producer's next fetch cycle over and over, so on
dependence-heavy workloads most heap events are zero-fetch polls (74% on
gcc, 73% on li at paper scale).  This module replaces that loop with a
single batched run function that

1. **hoists every run-invariant local once** (trace columns, config
   scalars, booking rings, heap primitives) instead of once per
   ``_advance`` call, and keeps advancing the same thread inline while
   it is the only runnable one (no heap traffic at all in
   single-threaded stretches);
2. **parks blocked threads on a wakeup registry instead of polling**:
   a thread blocked on trace position ``p`` registers in
   ``proc._waiters[p]`` and is pushed back onto the heap by the advance
   that completes ``p`` — at exactly that advance's cycle; and
3. **jumps the clock**: with no pollers in the heap, popping the next
   event moves simulated time directly to the earliest scheduled wakeup
   (FU completion feeding a dependent fetch group, memory-latency
   expiry, forwarding delay, spawned-thread start).  The skipped span is
   recorded in ``proc.event_metrics`` and is observationally identical
   to ticking it: no architectural or timing state changes on cycles
   with no scheduled event.

Bit-identity with the legacy core
---------------------------------
The waiter wake cycle equals the legacy poll-resume cycle exactly.  In
the legacy loop a thread blocked on position ``p`` at cycle ``t`` parks
to ``max(t + 1, owner.fetch_cycle)``; when the poll runs, the owner of
``p`` always has its next advance strictly in the future (it either
advanced earlier in cycle ``t`` — heap order is ``(cycle, start)`` and
``owner.start <= p < thread.start`` — or is parked beyond ``t``), so
every poll lands exactly on an advance of ``p``'s current owner, and
ownership of ``p`` only changes during such advances.  The first poll
that finds ``completion[p]`` set is therefore the advance that set it,
which is precisely when the waiter registry wakes the thread.

Three situations break that argument, so the affected threads (or the
whole run) fall back to legacy-style poll parking, still batched and
hoisted, same results by construction:

- **blocked at a spawning point**: the blocked instruction's spawn is
  re-attempted on every poll, and those attempts have side effects —
  a thread unit can free up between polls, counters advance, and under
  ``reassign`` the candidate evaluation is cycle-dependent.  Such
  threads poll; their park target resolves through sleeping waiters to
  the blocking chain's live root, whose clock equals the legacy owner's.
  A failed attempt's outcome is memoized against an *epoch* of the
  spawn-relevant machine state, and while the memo holds the poller
  **sleeps off the heap entirely**: the legacy core would poll exactly
  once per event of the chain's live root, bumping the same counter
  each time, so the missed polls are replayed in bulk from the root's
  event-count delta when a wake trigger fires (the blocked position
  completes, the epoch moves, the root stops generating events, or —
  for "no free unit" denials, whose memo lapses with the clock — the
  root's first event at or past the memoized ``free_at`` bound).  The
  one observable the replay does not reproduce is the livelock
  watchdog's zero-progress counter —
  virtual polls do not bump it — so a genuinely livelocked run is
  caught by the empty-heap check below (or by real events) rather than
  at the exact legacy poll count; ``SimulationStats`` is unaffected.
- **fault injection** (whole run): polls charge
  :meth:`FaultInjector.forward_delay` per probe and blackout windows
  must be re-checked every poll.
- **pair-removal policies** (``removal_cycles``, whole run): polls
  sample the "executing alone" condition, so skipping them would
  under-count alone cycles.

The livelock watchdog degrades gracefully: besides the legacy
zero-progress counter, an empty heap with unfinished threads (a wait
cycle no completion can break) raises ``InvariantViolation``
immediately instead of spinning.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List

from repro.cmt.thread_unit import RING_WINDOW
from repro.errors import InvariantViolation, SimulationTimeout
from repro.exec.columns import (
    F_BRANCH,
    F_LOAD,
    F_STORE,
    F_TAKEN,
    F_UNCOND,
    LDST_INDEX,
)
from repro.isa.instructions import FU_LIMITS
from repro.obs.events import EV_THREAD_START

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cmt.processor import ClusteredProcessor
    from repro.cmt.stats import SimulationStats

_INFINITY = float("inf")
_RING_MASK = RING_WINDOW - 1


def run_event(proc: "ClusteredProcessor") -> "SimulationStats":
    """Simulate ``proc``'s full trace with the event-driven batched core.

    Behaviourally identical to :meth:`ClusteredProcessor.run` over the
    columnar core (which is itself the legacy core's bit-identical
    twin); only wall-clock time and ``proc.event_metrics`` differ.

    Returns:
        The run's finalized :class:`SimulationStats`.
    """
    trace = proc.trace
    if len(trace) == 0:
        return proc.stats
    config = proc.config
    cols = proc._cols
    completion = proc._completion
    injector = proc.injector
    has_injector = injector is not None
    removal_on = config.removal_cycles is not None
    # Wakeup-registry parking is only bit-identical when polls carry no
    # side effects (module docstring); otherwise keep legacy-style
    # poll parking inside the batched loop.
    use_waiters = not has_injector and not removal_on
    waiters: Dict[int, List] = proc._waiters

    root = proc._make_thread(
        start=0, join=len(trace), tu=proc._tus[0], start_cycle=0, pair=None
    )
    proc._tus[0].free_at = _INFINITY  # occupied by the root
    proc._order.append(root)
    proc._running += 1
    proc._push(root)
    tracer = proc.tracer
    if tracer.enabled:
        tracer.emit(EV_THREAD_START, 0, tu=0, thread=root.seq, root=True)

    budget = config.cycle_budget
    stall_limit = config.livelock_threshold
    stalled_events = 0
    heap = proc._heap
    heappop = heapq.heappop
    heappush = heapq.heappush
    stats = proc.stats
    tus = proc._tus
    trace_on = tracer.enabled

    # Run-invariant hoists (per-advance in the columnar core).
    pc_col = cols.pc
    flags_col = cols.flags
    fu_col = cols.fu
    lat_col = cols.lat
    addr_col = cols.addr
    mem_dep_col = cols.mem_dep
    dep_pairs_col = cols.dep_pairs
    spawn_pcs = proc._spawn_pcs
    fu_limits = FU_LIMITS
    ring_window = RING_WINDOW
    ring_mask = _RING_MASK
    fetch_width = config.fetch_width
    rob_size = config.rob_size
    issue_width = config.issue_width
    perfect_memory = config.perfect_memory
    forward_latency = config.forward_latency
    mispredict_penalty = config.mispredict_penalty
    recovery = config.misprediction_recovery
    # Live-in status codes (runtime import: processor imports this module).
    from repro.cmt.processor import _HIT, _MISS
    coactive = config.removal_coactive_threshold
    order = proc._order
    forward_rate = injector.forward_rate if has_injector else 0
    try_spawn = proc._try_spawn
    finish = proc._finish
    owner_of = proc._owner_of
    track_alone = proc._track_alone

    # The L1 and gshare hot paths are inlined into the fetch-group loop
    # (their counters cached in locals, flushed on unit switch and on
    # exit) except when tracing needs the per-access call sites or the
    # predictor is not plain gshare; geometry and table shapes are
    # identical across units, so they hoist once.
    inline_units = not trace_on and config.branch_predictor == "gshare"
    l1_proto = tus[0].l1
    l1_block_words = l1_proto.block_words
    l1_n_sets = l1_proto.n_sets
    l1_hit_lat = l1_proto.hit_latency
    l1_miss_lat = l1_proto.miss_latency
    l1_assoc = l1_proto.assoc
    g_mask = tus[0].gshare.mask

    # Per-unit hoists, cached across consecutive advances on one unit.
    cur_tu = None
    issue_stamp: List[int] = []
    issue_count: List[int] = []
    fu_stamps: List[List[int]] = []
    fu_counts: List[List[int]] = []
    l1 = None
    l1_access = None
    l1_sets: Dict[int, List[int]] = {}
    l1_acc = 0
    l1_miss = 0
    g_counters: List[int] = []
    g_history = 0
    g_pred = 0
    g_hits = 0
    note_install = None
    gshare_update = None
    book_issue = None
    thread_seq = 0

    # Epochs of the machine state parked pollers memoize against.
    # ``epoch`` covers the spawn-relevant state (unit occupancy, thread
    # order, pair bookkeeping): a failed spawn attempt's outcome cannot
    # change while it stands, so it moves only on successful spawns,
    # ghosts, and thread retirements.  ``chain_epoch`` additionally
    # moves on waiter wakes — a wake cannot change a spawn outcome, but
    # it can shorten a blocking chain, so the cached chain roots lapse.
    epoch = 0
    chain_epoch = 0

    # Sleeping pollers.  A parked poller whose memoized spawn outcome is
    # cycle-independent (kinds 0/1/2) stops polling altogether: while the
    # epoch stands, the legacy core would poll exactly once per event of
    # the poller's (fixed) chain root, bumping the same stats counter
    # each time.  So the poller leaves the heap, and the missed polls are
    # bulk-replayed from the root's event-count delta when a wake trigger
    # fires: the blocked position completes (waiter registry), an epoch
    # or chain-epoch bump invalidates the memo or the cached root, or
    # the root itself stops generating events (it blocks or sleeps).
    # The re-materialized heap entry lands exactly where the legacy
    # poller's pending entry sits — the root's next event cycle (or the
    # current event's cycle when the trigger fires inside the root's own
    # event), keyed by the poller's start — so sub-cycle ordering is
    # preserved.  Kind-3 memos ("no free unit") are cycle-dependent —
    # they lapse once the clock reaches the recorded ``free_at`` — so
    # their sleepers additionally register in ``timed_sleepers``: the
    # root's own event loop wakes them at its first event at or past
    # that cycle, which is exactly the legacy poll where the memo
    # lapses (unit ``free_at`` values cannot move while the epoch
    # stands, so the recorded bound stays authoritative).
    # Sleepers indexed by their chain root, so root-scoped wakes pop one
    # dict entry instead of scanning every sleeper.  Entries woken
    # through other triggers leave stale list slots behind; the
    # ``poll_sleeping`` guard skips them and epoch bumps clear the dict.
    sleepers_by_root: Dict = {}
    timed_sleepers: List = []
    poller_sleeps = 0
    sleeper_wakes = 0
    replayed_polls = 0

    def _wake_sleeper(s, cb, cstart):
        """Re-materialize sleeper ``s``'s pending legacy heap entry.

        ``(cb, cstart)`` is the heap key of the event the wake trigger
        fired in.  The sleeper's virtual pending entry sits at its
        root's latest event cycle if the virtual poll for that event
        has not fired yet — i.e. the root popped at this very cycle and
        the poll's heap key ``(cb, s.start)`` orders after the current
        event — in which case that poll now runs for real (excluded
        from the replay); otherwise the entry sits at the root's next
        event.
        """
        nonlocal replayed_polls, sleeper_wakes
        sleep_root = s.poll_root
        missed = sleep_root.event_count - s.poll_sleep_base
        if missed > 0 and sleep_root.last_pop == cb and cstart < s.start:
            missed -= 1
            target = cb
        else:
            target = sleep_root.fetch_cycle
        if missed > 0:
            kind = s.poll_memo[1]
            if kind == 1:
                stats.spawns_skipped_existing += missed
            elif kind == 2:
                stats.spawns_rejected_order += missed
            elif kind == 3:
                # Every missed poll ran strictly below the memoized
                # ``free_at`` bound (the root's event loop wakes timed
                # sleepers at its first event at or past it), so each
                # one was a denial.
                stats.spawns_denied_no_tu += missed
            replayed_polls += missed
        s.poll_sleeping = False
        s.waiting_on = -1
        s.fetch_cycle = target
        heappush(heap, (target, s.start, s))
        sleeper_wakes += 1

    def wake_all_sleepers(cb, cstart):
        """Wake every sleeping poller (an epoch or chain-epoch bump)."""
        for lst in sleepers_by_root.values():
            for s in lst:
                if s.poll_sleeping:
                    _wake_sleeper(s, cb, cstart)
        sleepers_by_root.clear()

    def wake_rooted_sleepers(cur, cb, cstart):
        """Wake only the sleepers rooted at ``cur`` (which stops
        generating events: it blocks or goes to sleep itself), leaving
        the rest asleep."""
        lst = sleepers_by_root.pop(cur, None)
        if lst is not None:
            for s in lst:
                if s.poll_sleeping:
                    _wake_sleeper(s, cb, cstart)

    # Metrics (never fed into SimulationStats: pure observability).
    events_processed = 0
    inline_advances = 0
    cycles_skipped = 0
    clock_jumps = 0
    max_jump = 0
    waiter_wakes = 0
    advance_wakes = 0
    park_wakes = 0
    stall_reg = 0
    stall_mem = 0
    prev_cycle = 0

    try:
        while heap:
            cycle, _hstart, thread = heappop(heap)
            if thread.finished or cycle != thread.fetch_cycle:
                continue  # stale heap entry
            while True:
                # One iteration = one fetch-group advance of ``thread``.
                # The loop keeps going inline while this thread is the
                # only runnable one; everything else breaks back to the
                # heap pop above.
                if budget is not None and cycle > budget:
                    raise SimulationTimeout(
                        "cycle budget exceeded",
                        cycle=cycle,
                        budget=budget,
                        committed=proc.stats.threads_committed,
                    )
                events_processed += 1
                thread.event_count += 1
                thread.last_pop = cycle
                if timed_sleepers:
                    # Wake "no free unit" sleepers rooted here whose
                    # memoized ``free_at`` bound the clock has reached:
                    # this event's virtual poll is the first legacy poll
                    # at which the memo lapses, so it runs for real.
                    stale = False
                    for s in timed_sleepers:
                        if not s.poll_sleeping:
                            stale = True
                        elif (
                            s.poll_root is thread
                            and cycle >= s.poll_memo[2]
                        ):
                            _wake_sleeper(s, cycle, thread.start)
                            stale = True
                    if stale:
                        timed_sleepers[:] = [
                            s for s in timed_sleepers if s.poll_sleeping
                        ]
                jump = cycle - prev_cycle
                if jump > 0:
                    if jump > 1:
                        cycles_skipped += jump - 1
                        clock_jumps += 1
                        if jump - 1 > max_jump:
                            max_jump = jump - 1
                    prev_cycle = cycle

                pop_cycle = cycle
                poll_pos = thread.poll_pos
                if poll_pos >= 0:
                    # Slim poll of a spawn-PC-parked thread (use_waiters
                    # runs only).  The legacy loop re-runs the whole
                    # blocked fetch group on every poll, but the only
                    # side effects are the spawn re-attempt and its
                    # counters — and a failed attempt's outcome cannot
                    # change while the epoch stands (candidate tables
                    # and the blocked instruction are fixed; unit
                    # occupancy, the thread order's tail, and this
                    # thread's join only move on epoch bumps), except
                    # that a "no free unit" denial flips once the clock
                    # reaches the earliest ``free_at`` recorded with it.
                    # So replay the memoized outcome (same counter, same
                    # result) and only re-run ``_try_spawn`` when the
                    # memo lapses.
                    if completion[poll_pos] is None:
                        stalled_events += 1
                        if (
                            stall_limit is not None
                            and stalled_events > stall_limit
                        ):
                            raise InvariantViolation(
                                "no forward progress (livelock watchdog)",
                                cycle=cycle,
                                thread=thread.seq,
                                stalled_events=stalled_events,
                            )
                        memo = thread.poll_memo
                        if (
                            memo is not None
                            and memo[0] == epoch
                            and (memo[1] != 3 or cycle < memo[2])
                        ):
                            kind = memo[1]
                            if kind == 1:
                                stats.spawns_skipped_existing += 1
                            elif kind == 2:
                                stats.spawns_rejected_order += 1
                            elif kind == 3:
                                stats.spawns_denied_no_tu += 1
                        else:
                            cpos = thread.cursor
                            before_mut = (
                                stats.spawns + stats.control_misspeculations
                            )
                            before_ex = stats.spawns_skipped_existing
                            before_or = stats.spawns_rejected_order
                            before_no = stats.spawns_denied_no_tu
                            try_spawn(thread, cpos, pc_col[cpos], cycle)
                            if (
                                stats.spawns + stats.control_misspeculations
                                != before_mut
                            ):
                                epoch += 1
                                chain_epoch += 1
                                thread.poll_memo = None
                                if sleepers_by_root:
                                    wake_all_sleepers(cycle, thread.start)
                            elif stats.spawns_denied_no_tu != before_no:
                                min_free = min(t.free_at for t in tus)
                                thread.poll_memo = (epoch, 3, min_free)
                            elif stats.spawns_rejected_order != before_or:
                                thread.poll_memo = (epoch, 2, 0)
                            elif stats.spawns_skipped_existing != before_ex:
                                thread.poll_memo = (epoch, 1, 0)
                            else:
                                thread.poll_memo = (epoch, 0, 0)
                        root = thread.poll_root
                        if (
                            thread.poll_epoch != chain_epoch
                            or root is None
                            or root.finished
                            or root.waiting_on >= 0
                        ):
                            root = owner_of(poll_pos)
                            while root is not None and root.waiting_on >= 0:
                                root = owner_of(root.waiting_on)
                            thread.poll_root = root
                            thread.poll_epoch = chain_epoch
                        memo = thread.poll_memo
                        if root is not None and memo is not None:
                            # Memoized outcome with a live chain root:
                            # go to sleep.  No heap entry at all — the
                            # missed polls (one per root event, legacy
                            # cadence) are replayed in bulk when a wake
                            # trigger fires.  The waiter registration
                            # and ``waiting_on`` make both the
                            # completion wake and the chain walk-through
                            # see this thread like any sleeping waiter.
                            # Kind-3 memos lapse with the clock, so
                            # those sleepers also arm the root's timed
                            # check (the sleep always starts below the
                            # bound: a fresh denial's ``min_free``
                            # exceeds the denying cycle, and the replay
                            # path just validated ``cycle < memo[2]``).
                            if memo[1] == 3:
                                timed_sleepers.append(thread)
                            thread.poll_sleeping = True
                            thread.poll_sleep_base = root.event_count
                            thread.waiting_on = poll_pos
                            if thread.poll_registered != poll_pos:
                                thread.poll_registered = poll_pos
                                lst = waiters.get(poll_pos)
                                if lst is None:
                                    waiters[poll_pos] = [thread]
                                else:
                                    lst.append(thread)
                            lst = sleepers_by_root.get(root)
                            if lst is None:
                                sleepers_by_root[root] = [thread]
                            else:
                                lst.append(thread)
                            poller_sleeps += 1
                            if sleepers_by_root:
                                # This thread stops generating events:
                                # sleepers rooted at it must re-derive
                                # their chain root.
                                wake_rooted_sleepers(
                                    thread, cycle, thread.start
                                )
                            break
                        stall_to = cycle + 1
                        if root is not None and root.fetch_cycle > stall_to:
                            stall_to = root.fetch_cycle
                        thread.fetch_cycle = stall_to
                        heappush(heap, (stall_to, thread.start, thread))
                        park_wakes += 1
                        break
                    thread.poll_pos = -1
                    thread.poll_root = None
                tu = thread.tu
                if has_injector:
                    dark_until = tu.dark_until(cycle)
                    if dark_until is not None:
                        proc._on_blackout(thread, cycle, dark_until)
                        stalled_events += 1
                        if stall_limit is not None and stalled_events > stall_limit:
                            raise InvariantViolation(
                                "no forward progress (livelock watchdog)",
                                cycle=cycle,
                                thread=thread.seq,
                                stalled_events=stalled_events,
                            )
                        if not thread.finished:
                            heappush(
                                heap,
                                (thread.fetch_cycle, thread.start, thread),
                            )
                            park_wakes += 1
                        break

                # "Executing alone" (pair-removal policies only).
                alone = False
                if removal_on and thread.pair is not None and len(order) > 1:
                    alone = proc._running - 1 < coactive

                commit_ring = thread.commit_ring
                local_index = thread.local_index
                # Ring slot tracked incrementally: one modulo per advance
                # instead of two per instruction.
                ring_slot = local_index % rob_size
                pos = thread.cursor
                # ROB full at the group head: wait for the oldest commit.
                if local_index >= rob_size:
                    blocker = commit_ring[ring_slot]
                    if blocker > cycle:
                        cycle = blocker

                # begin_group, inlined: the booking floor only rises.
                floor = cycle + 1
                if floor > tu._ring_base:
                    tu._ring_base = floor
                ring_base = tu._ring_base
                if tu is not cur_tu:
                    if inline_units and cur_tu is not None:
                        # Write the outgoing unit's cached counters back
                        # before caching the incoming unit's.
                        out_l1 = cur_tu.l1
                        out_l1.accesses = l1_acc
                        out_l1.misses = l1_miss
                        out_g = cur_tu.gshare
                        out_g.history = g_history
                        out_g.predictions = g_pred
                        out_g.hits = g_hits
                    cur_tu = tu
                    issue_stamp = tu._issue_stamp
                    issue_count = tu._issue_count
                    fu_stamps = tu._fu_stamp
                    fu_counts = tu._fu_count
                    l1 = tu.l1
                    l1_access = l1.access
                    if inline_units:
                        l1_sets = l1._sets
                        l1_acc = l1.accesses
                        l1_miss = l1.misses
                        gshare = tu.gshare
                        g_counters = gshare.counters
                        g_history = gshare.history
                        g_pred = gshare.predictions
                        g_hits = gshare.hits
                    note_install = tu.note_install
                    gshare_update = tu.gshare.update
                    book_issue = tu.book_issue_idx
                spilled = bool(tu._issue_overflow or tu._fu_overflow)
                if trace_on:
                    thread_seq = thread.seq

                start = thread.start
                join = thread.join
                last_commit = thread.last_commit
                executed = 0
                next_fetch = cycle + 1
                spawn_penalty = 0
                fetched = 0
                blocked_pos = -1
                blocked_mem = False
                while fetched < fetch_width and pos < join:
                    if local_index >= rob_size:
                        blocker = commit_ring[ring_slot]
                        if blocker > cycle:
                            break  # the rest of the group waits for ROB space
                    flags = flags_col[pos]
                    pc = pc_col[pos]

                    # Spawn attempt at a spawning point (checked at fetch).
                    if pc in spawn_pcs:
                        before_mut = (
                            stats.spawns + stats.control_misspeculations
                        )
                        spawn_penalty += try_spawn(thread, pos, pc, cycle)
                        if (
                            stats.spawns + stats.control_misspeculations
                            != before_mut
                        ):
                            epoch += 1
                            chain_epoch += 1
                            if sleepers_by_root:
                                wake_all_sleepers(pop_cycle, start)
                        join = thread.join  # a successful spawn shrinks it

                    # Operand readiness.
                    ready = cycle + 1  # decode/rename stage
                    blocked_on = None
                    for producer, reg in dep_pairs_col[pos]:
                        if producer >= start:
                            when = completion[producer]
                            if when is None:
                                raise InvariantViolation(
                                    "internal producer not yet simulated",
                                    cycle=cycle,
                                    thread=thread.seq,
                                    position=pos,
                                    producer=producer,
                                )
                        else:
                            # _external_value_time, unrolled.
                            status = thread.livein_status.get(reg)
                            if status == _HIT:
                                when = thread.start_cycle
                            else:
                                when = completion[producer]
                                if when is None:
                                    blocked_on = producer
                                    break
                                when += forward_latency
                                if forward_rate:
                                    when += injector.forward_delay(
                                        thread.seq, reg, producer
                                    )
                                if status == _MISS:
                                    when += recovery
                        if when > ready:
                            ready = when
                    if blocked_on is None and flags & F_LOAD:
                        producer = mem_dep_col[pos]
                        if producer >= 0 and not (
                            perfect_memory and producer < start
                        ):
                            when = completion[producer]
                            if when is None and producer < start:
                                blocked_on = producer
                                blocked_mem = True
                            elif when is None:
                                raise InvariantViolation(
                                    "internal store not yet simulated",
                                    cycle=cycle,
                                    thread=thread.seq,
                                    position=pos,
                                    producer=producer,
                                )
                            else:
                                if producer < start:
                                    when += forward_latency
                                if when > ready:
                                    ready = when
                    if blocked_on is not None:
                        blocked_pos = blocked_on
                        break

                    # Execution latency and resources.
                    if flags & F_LOAD:
                        if inline_units:
                            # L1Cache.access, unrolled (LRU within the
                            # set, write-allocate fills).
                            block = addr_col[pos] // l1_block_words
                            set_index = block % l1_n_sets
                            tag = block // l1_n_sets
                            ways = l1_sets.get(set_index)
                            if ways is None:
                                ways = l1_sets[set_index] = []
                            l1_acc += 1
                            if tag in ways:
                                if ways[0] != tag:
                                    ways.remove(tag)
                                    ways.insert(0, tag)
                                latency = 1 + l1_hit_lat
                            else:
                                l1_miss += 1
                                ways.insert(0, tag)
                                if len(ways) > l1_assoc:
                                    ways.pop()
                                latency = 1 + l1_miss_lat
                        elif trace_on:
                            miss_before = l1.misses
                            latency = 1 + l1_access(addr_col[pos])
                            if l1.misses != miss_before:
                                note_install(
                                    cycle, thread_seq, addr_col[pos], False
                                )
                        else:
                            latency = 1 + l1_access(addr_col[pos])
                        fu = LDST_INDEX
                    elif flags & F_STORE:
                        if inline_units:
                            block = addr_col[pos] // l1_block_words
                            set_index = block % l1_n_sets
                            tag = block // l1_n_sets
                            ways = l1_sets.get(set_index)
                            if ways is None:
                                ways = l1_sets[set_index] = []
                            l1_acc += 1
                            if tag in ways:
                                if ways[0] != tag:
                                    ways.remove(tag)
                                    ways.insert(0, tag)
                            else:
                                l1_miss += 1
                                ways.insert(0, tag)
                                if len(ways) > l1_assoc:
                                    ways.pop()
                        elif trace_on:
                            miss_before = l1.misses
                            l1_access(addr_col[pos], True)
                            if l1.misses != miss_before:
                                note_install(
                                    cycle, thread_seq, addr_col[pos], True
                                )
                        else:
                            l1_access(addr_col[pos], True)
                        latency = 1
                        fu = LDST_INDEX
                    else:
                        fu = fu_col[pos]
                        latency = lat_col[pos]
                    # Inline ring booking, including the probe-forward
                    # loop for contended slots; only overflow spills and
                    # beyond-window probes take the out-of-line call.
                    # (Probes below the window base are fine: the stamp
                    # check disambiguates the aliased slot, exactly as
                    # in ``book_issue_idx``.  Overflow entries created
                    # mid-group sit at or beyond ``ring_base + window``,
                    # so a ``spilled`` check at group start stays valid
                    # for every in-window probe of the group.)
                    if not spilled and ready - ring_base < ring_window:
                        limit = fu_limits[fu]
                        fstamp = fu_stamps[fu]
                        fcount = fu_counts[fu]
                        issue = ready
                        while True:
                            slot = issue & ring_mask
                            used = (
                                issue_count[slot]
                                if issue_stamp[slot] == issue
                                else 0
                            )
                            busy = (
                                fcount[slot] if fstamp[slot] == issue else 0
                            )
                            if used < issue_width and busy < limit:
                                if used:
                                    issue_count[slot] = used + 1
                                else:
                                    issue_stamp[slot] = issue
                                    issue_count[slot] = 1
                                if busy:
                                    fcount[slot] = busy + 1
                                else:
                                    fstamp[slot] = issue
                                    fcount[slot] = 1
                                break
                            issue += 1
                            if issue - ring_base >= ring_window:
                                issue = book_issue(issue, fu)
                                break
                    else:
                        issue = book_issue(ready, fu)
                    done = issue + latency
                    completion[pos] = done
                    # Wake every thread waiting on this position, at this
                    # advance's cycle (the legacy poll-resume cycle).
                    if waiters and pos in waiters:
                        # A wake can shorten pollers' blocking chains, so
                        # cached chain roots lapse (spawn memos survive:
                        # a wake cannot change a spawn outcome).
                        chain_epoch += 1
                        for waiter in waiters.pop(pos):
                            if waiter.waiting_on != pos:
                                # Stale entry: a sleeping poller woken
                                # earlier leaves its registration behind.
                                continue
                            if waiter.poll_sleeping:
                                # Its root is this thread (any chain
                                # change would have woken it already),
                                # so it wakes at this advance's cycle
                                # and its poll finds the completion.
                                _wake_sleeper(waiter, pop_cycle, start)
                                continue
                            waiter.waiting_on = -1
                            waiter.fetch_cycle = pop_cycle
                            heappush(heap, (pop_cycle, waiter.start, waiter))
                            waiter_wakes += 1
                        if sleepers_by_root:
                            wake_all_sleepers(pop_cycle, start)

                    if done > last_commit:
                        last_commit = done
                    commit_ring[ring_slot] = last_commit
                    local_index += 1
                    ring_slot += 1
                    if ring_slot == rob_size:
                        ring_slot = 0
                    executed += 1
                    pos += 1
                    fetched += 1

                    # Control flow shapes the fetch group.
                    if flags & F_BRANCH:
                        if inline_units:
                            # GsharePredictor.update, unrolled.
                            taken = flags & F_TAKEN != 0
                            index = (pc ^ g_history) & g_mask
                            counter = g_counters[index]
                            if taken:
                                if counter < 3:
                                    g_counters[index] = counter + 1
                                g_history = ((g_history << 1) | 1) & g_mask
                            else:
                                if counter > 0:
                                    g_counters[index] = counter - 1
                                g_history = (g_history << 1) & g_mask
                            g_pred += 1
                            if (counter >= 2) == taken:
                                g_hits += 1
                                if taken:
                                    break  # fetch stops at a taken branch
                            else:
                                next_fetch = done + mispredict_penalty
                                break
                        else:
                            correct = gshare_update(pc, flags & F_TAKEN != 0)
                            if not correct:
                                next_fetch = done + mispredict_penalty
                                break
                            if flags & F_TAKEN:
                                break  # fetch stops at the first taken branch
                    elif flags & F_UNCOND:
                        break  # unconditional transfers end the group too

                if blocked_pos >= 0:
                    # Producer thread has not simulated that position yet.
                    thread.cursor = pos
                    thread.local_index = local_index
                    thread.last_commit = last_commit
                    thread.executed += executed
                    if blocked_mem:
                        stall_mem += 1
                    else:
                        stall_reg += 1
                    stalled_events += 1
                    if stall_limit is not None and stalled_events > stall_limit:
                        raise InvariantViolation(
                            "no forward progress (livelock watchdog)",
                            cycle=cycle,
                            thread=thread.seq,
                            stalled_events=stalled_events,
                        )
                    if use_waiters and pc not in spawn_pcs:
                        # Sleep until the producing advance completes the
                        # position; no polling in between.  Only safe
                        # when the blocked instruction is not a spawning
                        # point — a spawn PC re-attempts its spawn on
                        # every poll, and those attempts have side
                        # effects (a unit can free up between polls).
                        thread.waiting_on = blocked_pos
                        lst = waiters.get(blocked_pos)
                        if lst is None:
                            waiters[blocked_pos] = [thread]
                        else:
                            lst.append(thread)
                        if sleepers_by_root:
                            # This thread stops generating events, so
                            # sleepers rooted at it resume polling and
                            # re-derive their chain root.
                            wake_rooted_sleepers(thread, pop_cycle, start)
                    else:
                        # Poll park, exactly as the legacy/columnar
                        # cores: the owner's clock bounds ours from
                        # below.  A sleeping owner's clock is frozen at
                        # its block cycle, but in the legacy loop it
                        # would be polling the next advance of its own
                        # blocking chain's live root — so walk the chain
                        # to that root, whose clock is the same value.
                        owner = owner_of(blocked_pos)
                        while owner is not None and owner.waiting_on >= 0:
                            owner = owner_of(owner.waiting_on)
                        stall_to = max(
                            thread.fetch_cycle + 1,
                            owner.fetch_cycle
                            if owner is not None
                            else cycle + 1,
                        )
                        thread.fetch_cycle = stall_to
                        if use_waiters:
                            # Spawn-PC block: later polls take the slim
                            # replay path above.
                            thread.poll_pos = blocked_pos
                            thread.poll_memo = None
                            thread.poll_root = owner
                            thread.poll_epoch = chain_epoch
                        if removal_on:
                            track_alone(thread, alone, stall_to - cycle)
                        heappush(heap, (stall_to, thread.start, thread))
                        park_wakes += 1
                    break

                thread.cursor = pos
                thread.local_index = local_index
                thread.last_commit = last_commit
                thread.executed += executed
                floor = cycle + 1 + spawn_penalty
                if next_fetch < floor:
                    next_fetch = floor
                thread.fetch_cycle = next_fetch
                proc._executed_total += fetched
                if fetched:
                    stalled_events = 0
                else:
                    stalled_events += 1
                    if stall_limit is not None and stalled_events > stall_limit:
                        raise InvariantViolation(
                            "no forward progress (livelock watchdog)",
                            cycle=cycle,
                            thread=thread.seq,
                            stalled_events=stalled_events,
                        )
                if removal_on:
                    track_alone(thread, alone, next_fetch - cycle)
                if pos >= join:
                    # Retirement frees the unit and reshapes the thread
                    # order (and may revive a folded predecessor), all
                    # spawn-relevant: move both epochs.
                    epoch += 1
                    chain_epoch += 1
                    if sleepers_by_root:
                        # Before ``finish`` mutates the order: a sleeper
                        # rooted here still sees this thread live.
                        wake_all_sleepers(pop_cycle, start)
                    finish(thread)
                    break
                if heap:
                    head = heap[0]
                    if head[0] < next_fetch or (
                        head[0] == next_fetch and head[1] < thread.start
                    ):
                        # Another event is due first: back to the heap.
                        heappush(heap, (next_fetch, thread.start, thread))
                        advance_wakes += 1
                        break
                # Sole runnable thread: advance inline, no heap traffic.
                cycle = next_fetch
                inline_advances += 1

        if proc._running > 0:
            # Every remaining thread waits on a completion nothing will
            # produce: report immediately instead of spinning the legacy
            # zero-progress counter up to its threshold.
            waiting = sum(len(lst) for lst in waiters.values())
            raise InvariantViolation(
                "wakeup heap empty with unfinished threads (livelock)",
                running=proc._running,
                waiting=waiting,
                cycle=prev_cycle,
            )
    finally:
        if inline_units and cur_tu is not None:
            out_l1 = cur_tu.l1
            out_l1.accesses = l1_acc
            out_l1.misses = l1_miss
            out_g = cur_tu.gshare
            out_g.history = g_history
            out_g.predictions = g_pred
            out_g.hits = g_hits
        proc.event_metrics = {
            "sim_core": "event",
            "batched_waiters": use_waiters,
            "events_processed": events_processed,
            "inline_advances": inline_advances,
            "cycles_skipped": cycles_skipped,
            "clock_jumps": clock_jumps,
            "max_jump": max_jump,
            "wakeups": {
                "advance": advance_wakes,
                "waiter": waiter_wakes,
                "park_poll": park_wakes,
                "sleeper": sleeper_wakes,
            },
            "poller_sleeps": poller_sleeps,
            "replayed_polls": replayed_polls,
            "stalls": {
                "reg_dep": stall_reg,
                "mem_dep": stall_mem,
            },
        }

    return proc._finalize_stats()
