"""Processor configuration (paper Section 4.1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class ProcessorConfig:
    """Parameters of the Clustered Speculative Multithreaded Processor.

    Defaults follow the paper's experimental framework: 16 thread units,
    4-wide fetch stopping at taken branches, 4-wide issue, 64-entry reorder
    buffer, 10-bit gshare, 32KB 2-way L1 (3-cycle hit / 8-cycle miss),
    3-cycle inter-thread value forwarding, perfect value prediction and no
    thread-initialisation overhead (the realistic-assumption sections turn
    those two knobs).
    """

    num_thread_units: int = 16
    fetch_width: int = 4
    issue_width: int = 4
    rob_size: int = 64
    branch_history_bits: int = 10
    branch_predictor: str = "gshare"
    mispredict_penalty: int = 5

    l1_size_kb: int = 32
    l1_assoc: int = 2
    l1_block_words: int = 8
    l1_hit_latency: int = 3
    l1_miss_latency: int = 8

    forward_latency: int = 3
    #: Oracle for cross-thread memory dataflow (ablation only — the paper
    #: never predicts memory values, so every experiment leaves this off).
    perfect_memory: bool = False
    value_predictor: str = "perfect"
    #: Prime predictor tables from the profiling run before simulation.
    #: The spawning pairs come from a profile pass anyway, so the same pass
    #: can initialise the value tables.  At SpecInt trace lengths cold
    #: start is invisible; at our synthetic trace lengths an unprimed
    #: table's warm-up spans a large fraction of the run (see DESIGN.md).
    prime_value_predictor: bool = True
    #: Dynamic pair instances used to prime each pair's table entries.
    prime_samples: int = 48
    #: Record a ThreadRecord per committed thread in the stats (off by
    #: default — it costs memory on long runs).
    collect_timeline: bool = False
    value_predictor_kb: int = 16
    #: Extra cycles to recover when a predicted live-in turns out wrong
    #: (squash-and-replay of the consuming instructions).
    misprediction_recovery: int = 5
    #: Cycles charged to a spawned thread before it may fetch (Figure 11
    #: uses 8; the potential studies use 0).
    init_overhead: int = 0
    #: Cycles the spawn operation occupies the parent's front-end (the
    #: fork must be routed to a free unit before fetch resumes).  The
    #: paper's potential studies assume free spawns; kept as an ablation.
    spawn_cost: int = 0
    #: Cycles to retire one thread and release its unit (in-order commit
    #: requires validating live-ins and merging speculative state).  Zero
    #: in the paper's potential studies; kept as an ablation.
    commit_latency: int = 0
    #: How many thread instructions to scan for live-ins at spawn time.
    livein_scan_cap: int = 512

    # --- dynamic spawning-pair policies (Figures 5-7) ---
    #: Remove a pair once its thread has executed alone this many cycles.
    removal_cycles: Optional[int] = None
    #: Occurrences of the alone condition required before removal (Fig 5b).
    removal_occurrences: int = 1
    #: "Alone" means fewer than this many *other* unfinished threads; the
    #: paper's default monitors threads executing completely alone (1) and
    #: also evaluated "with just a few threads" (larger values).
    removal_coactive_threshold: int = 1
    #: Re-enable a removed pair after this many cycles (the paper's
    #: footnote: "considers again a removed thread after a certain period
    #: of time"; they observed very small improvements).
    removal_revival_cycles: Optional[int] = None
    #: Remove pairs whose committed threads ran fewer instructions (Fig 7b).
    min_thread_size: Optional[int] = None
    #: Try the next-best CQIP for an SP when the best cannot spawn (Fig 6).
    reassign: bool = False
    #: How the spawn logic enforces thread ordering:
    #: "counter" — (default) reject a candidate pair when its expected
    #:             distance exceeds the parent's expected remaining length
    #:             (both come from the pair table, so this is a handful of
    #:             comparators in hardware); misestimates still misspawn
    #:             and waste a unit until the parent's join verification;
    #: "exact"   — oracle ordering: reject any spawn whose CQIP does not
    #:             start the parent's immediate successor;
    #: "tail"    — only the most speculative thread may spawn;
    #: "none"    — misordered spawns always occupy a unit until squashed
    #:             (pure DMT-style ghosts).
    spawn_order_check: str = "counter"
    #: Tolerance multiplier for the counter check (1.0 = reject when the
    #: candidate is expected to outrun the parent's segment at all).
    order_check_slack: float = 1.0

    # --- watchdog & fault recovery ---
    #: Abort with SimulationTimeout once simulated time passes this cycle
    #: (None = unbounded).  Counters never perturb timing: a run that fits
    #: the budget is identical to one with no budget.
    cycle_budget: Optional[int] = None
    #: Abort with InvariantViolation after this many consecutive event-loop
    #: steps in which no instruction executed (livelock / forward-progress
    #: watchdog; None disables it).  The default is far above anything a
    #: healthy simulation produces.
    livelock_threshold: Optional[int] = 1_000_000
    #: Cycles to squash a fault-hit thread and restart it on another unit
    #: (used only when a FaultInjector is attached).
    fault_restart_penalty: int = 16

    # --- implementation selection (never changes results) ---
    #: Simulator core implementation: "columnar" (default — struct-of-
    #: arrays trace columns and ring-buffer issue booking), "event"
    #: (columnar data path plus a batched event loop with a wakeup heap
    #: that jumps the clock over dead cycles), or "legacy" (the original
    #: object-graph core, kept as the bit-identical reference for the
    #: equal-stats gate and BENCH_simcore).
    sim_core: str = "columnar"

    def __post_init__(self) -> None:
        if self.num_thread_units < 1:
            raise ValueError("need at least one thread unit")
        if self.fetch_width < 1 or self.issue_width < 1:
            raise ValueError("fetch/issue width must be positive")
        if self.rob_size < 1:
            raise ValueError("reorder buffer must hold at least one entry")
        if self.forward_latency < 0 or self.init_overhead < 0:
            raise ValueError("latencies cannot be negative")
        if self.spawn_order_check not in ("counter", "exact", "tail", "none"):
            raise ValueError(
                f"unknown spawn_order_check {self.spawn_order_check!r}"
            )
        if self.removal_occurrences < 1:
            raise ValueError("removal_occurrences must be >= 1")
        if self.removal_coactive_threshold < 1:
            raise ValueError("removal_coactive_threshold must be >= 1")
        if self.value_predictor not in ("perfect", "none", "last", "stride", "fcm"):
            raise ValueError(
                f"unknown value predictor {self.value_predictor!r}"
            )
        if self.branch_predictor not in ("gshare", "bimodal"):
            raise ValueError(
                f"unknown branch predictor {self.branch_predictor!r}"
            )
        if self.cycle_budget is not None and self.cycle_budget < 1:
            raise ValueError("cycle_budget must be >= 1 when set")
        if self.livelock_threshold is not None and self.livelock_threshold < 1:
            raise ValueError("livelock_threshold must be >= 1 when set")
        if self.fault_restart_penalty < 0:
            raise ValueError("fault_restart_penalty cannot be negative")
        if self.sim_core not in ("columnar", "legacy", "event"):
            raise ValueError(f"unknown sim_core {self.sim_core!r}")

    def with_(self, **overrides) -> "ProcessorConfig":
        """Return a copy of the config with the given fields replaced."""
        return replace(self, **overrides)

    def single_threaded(self) -> "ProcessorConfig":
        """Return the matching one-thread-unit baseline configuration."""
        return self.with_(
            num_thread_units=1,
            removal_cycles=None,
            min_thread_size=None,
            reassign=False,
        )
