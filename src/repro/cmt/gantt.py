"""ASCII Gantt rendering of a simulation's thread timeline.

The renderer is one projection of :class:`repro.obs.timeline.TimelineModel`
(the Chrome trace-event exporter is the other), so the terminal view and
the Perfetto view always agree on lifetimes and commit waits.
"""

from __future__ import annotations

from typing import List

from repro.cmt.stats import SimulationStats
from repro.obs.timeline import TimelineModel


def render_gantt(
    stats: SimulationStats, num_thread_units: int, width: int = 100
) -> str:
    """Draw per-unit thread lifetimes from a timeline-enabled run.

    ``=`` marks cycles a thread executed on the unit; ``.`` marks cycles
    it had finished but was still waiting for its in-order commit slot —
    the imbalance the paper's removal policies target.

    Raises:
        ValueError: when ``stats.timeline`` is empty (the run was not
            simulated with ``collect_timeline=True``).
    """
    model = TimelineModel.from_stats(stats, num_thread_units)
    return render_model(model, width=width)


def render_model(model: TimelineModel, width: int = 100) -> str:
    """Render a :class:`TimelineModel` as the ASCII Gantt view."""
    total = model.total_cycles
    per_cell = max(1, total // width)
    lanes: List[List[str]] = [
        [" "] * (width + 1) for _ in range(model.num_tus)
    ]
    for lifetime in model.lifetimes:
        lane = lanes[lifetime.tu]
        exec_start = lifetime.start // per_cell
        exec_end = max(lifetime.finish // per_cell, exec_start)
        wait_end = max(lifetime.commit // per_cell, exec_end)
        for x in range(exec_start, min(exec_end + 1, width + 1)):
            lane[x] = "="
        for x in range(exec_end + 1, min(wait_end + 1, width + 1)):
            if lane[x] == " ":
                lane[x] = "."
    lines = [
        f"({per_cell} cycles per character; '=' executing, "
        f"'.' waiting to commit)"
    ]
    for tu in range(model.num_tus):
        lines.append(f"TU{tu:02d} |{''.join(lanes[tu])}|")
    waits = model.commit_waits()
    lines.append(
        f"mean commit wait {sum(waits) / len(waits):.1f} cycles, "
        f"max {max(waits)}"
    )
    return "\n".join(lines)
