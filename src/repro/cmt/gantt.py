"""ASCII Gantt rendering of a simulation's thread timeline."""

from __future__ import annotations

from typing import List

from repro.cmt.stats import SimulationStats


def render_gantt(
    stats: SimulationStats, num_thread_units: int, width: int = 100
) -> str:
    """Draw per-unit thread lifetimes from a timeline-enabled run.

    ``=`` marks cycles a thread executed on the unit; ``.`` marks cycles
    it had finished but was still waiting for its in-order commit slot —
    the imbalance the paper's removal policies target.
    """
    if not stats.timeline:
        raise ValueError(
            "no timeline collected; simulate with collect_timeline=True"
        )
    total = max(rec.commit_cycle for rec in stats.timeline) or 1
    per_cell = max(1, total // width)
    lanes: List[List[str]] = [
        [" "] * (width + 1) for _ in range(num_thread_units)
    ]
    for rec in stats.timeline:
        lane = lanes[rec.tu]
        exec_start = rec.start_cycle // per_cell
        exec_end = max(rec.finish_cycle // per_cell, exec_start)
        wait_end = max(rec.commit_cycle // per_cell, exec_end)
        for x in range(exec_start, min(exec_end + 1, width + 1)):
            lane[x] = "="
        for x in range(exec_end + 1, min(wait_end + 1, width + 1)):
            if lane[x] == " ":
                lane[x] = "."
    lines = [
        f"({per_cell} cycles per character; '=' executing, "
        f"'.' waiting to commit)"
    ]
    for tu in range(num_thread_units):
        lines.append(f"TU{tu:02d} |{''.join(lanes[tu])}|")
    waits = [rec.commit_cycle - rec.finish_cycle for rec in stats.timeline]
    lines.append(
        f"mean commit wait {sum(waits) / len(waits):.1f} cycles, "
        f"max {max(waits)}"
    )
    return "\n".join(lines)
