"""Runtime spawning-pair management.

Implements the dynamic mechanisms of Section 4.2: removal of pairs whose
threads execute alone beyond a cycle threshold (Figure 5a), delayed removal
after a number of occurrences (Figure 5b), re-assignment of a spawning
point to its next-best CQIP (Figure 6), and minimum dynamic thread size
enforcement (Figure 7b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cmt.config import ProcessorConfig
from repro.obs.events import EV_PAIR_REMOVE, EV_PAIR_REVIVE, NULL_TRACER
from repro.spawning.pairs import SpawnPair, SpawnPairSet

PairKey = Tuple[int, int]


class SpawnRuntime:
    """Tracks which pairs are live and applies the removal policies."""

    def __init__(
        self, pair_set: SpawnPairSet, config: ProcessorConfig, tracer=None
    ):
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._alternatives: Dict[int, List[SpawnPair]] = {
            sp_pc: list(pair_set.alternatives(sp_pc))
            for sp_pc in pair_set.spawning_points()
        }
        #: pair key -> cycle at which it was removed.
        self._removed: Dict[PairKey, int] = {}
        self._alone_occurrences: Dict[PairKey, int] = {}
        self.removed_alone = 0
        self.removed_min_size = 0
        self.revived = 0
        # --- faulty-spawn-interconnect accounting (fault injection) ---
        #: Retry attempts spent on requests that eventually went through.
        self.spawn_retries = 0
        #: Requests abandoned after exhausting the retry budget.
        self.spawns_dropped = 0
        #: Individual dropped attempts (every drop is one fault event).
        self.drop_events = 0

    # ------------------------------------------------------------------
    # Spawn-time queries.
    # ------------------------------------------------------------------

    def is_spawning_point(self, pc: int) -> bool:
        return pc in self._alternatives

    def spawn_pcs(self) -> frozenset:
        """The static set of spawning-point PCs.

        Pair removal/revival only changes :meth:`candidates`, never this
        set, so callers may hoist it (the columnar core keeps it as a
        frozenset for its fetch loop's membership test).
        """
        return frozenset(self._alternatives)

    def _is_removed(self, key: PairKey, cycle: int) -> bool:
        removed_at = self._removed.get(key)
        if removed_at is None:
            return False
        revival = self.config.removal_revival_cycles
        if revival is not None and cycle - removed_at >= revival:
            # the paper's footnote policy: give the pair another chance
            del self._removed[key]
            self._alone_occurrences.pop(key, None)
            self.revived += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EV_PAIR_REVIVE, cycle, sp_pc=key[0], cqip_pc=key[1]
                )
            return False
        return True

    def candidates(self, sp_pc: int, cycle: int = 0) -> List[SpawnPair]:
        """Live pairs for an SP: the best one, or all of them in preference
        order under the reassign policy."""
        if not self._removed:
            # No pair is removed (the common case when the removal
            # policies are off): the stored preference order is the
            # answer, no per-pair liveness filtering needed.
            alive = self._alternatives.get(sp_pc, [])
        else:
            alive = [
                pair
                for pair in self._alternatives.get(sp_pc, [])
                if not self._is_removed(pair.key(), cycle)
            ]
        if not alive:
            return []
        if self.config.reassign:
            return alive
        return alive[:1]

    def request_spawn(
        self, injector, sp_pc: int, parent_seq: int, pos: int
    ) -> Tuple[bool, int, int]:
        """Present a spawn request to the (possibly faulty) interconnect.

        Under fault injection a request may be dropped; the spawn logic
        retries with bounded exponential backoff.  Returns
        ``(granted, retries, delay_cycles)`` — ``delay_cycles`` is the
        total backoff the request spent waiting, whether or not it was
        eventually granted.
        """
        model = injector.plan.spawn_drop
        delay = 0
        for attempt in range(model.max_retries + 1):
            if not injector.spawn_dropped(sp_pc, parent_seq, pos, attempt):
                self.spawn_retries += attempt
                return True, attempt, delay
            self.drop_events += 1
            delay += model.backoff << attempt
        self.spawns_dropped += 1
        return False, model.max_retries, delay

    # ------------------------------------------------------------------
    # Removal policies.
    # ------------------------------------------------------------------

    def note_alone_threshold(
        self, pair: Optional[SpawnPair], cycle: int = 0
    ) -> bool:
        """A thread spawned by ``pair`` exceeded the alone-cycles threshold.

        Returns True when the pair was removed (after the configured number
        of occurrences).
        """
        if pair is None or self.config.removal_cycles is None:
            return False
        key = pair.key()
        if key in self._removed:
            return False
        count = self._alone_occurrences.get(key, 0) + 1
        self._alone_occurrences[key] = count
        if count >= self.config.removal_occurrences:
            self._removed[key] = cycle
            self.removed_alone += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EV_PAIR_REMOVE,
                    cycle,
                    sp_pc=key[0],
                    cqip_pc=key[1],
                    reason="alone",
                )
            return True
        return False

    def note_thread_size(
        self, pair: Optional[SpawnPair], executed: int, cycle: int = 0
    ) -> bool:
        """Enforce the minimum dynamic thread size (Figure 7b)."""
        if pair is None or self.config.min_thread_size is None:
            return False
        key = pair.key()
        if key in self._removed or executed >= self.config.min_thread_size:
            return False
        self._removed[key] = cycle
        self.removed_min_size += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EV_PAIR_REMOVE,
                cycle,
                sp_pc=key[0],
                cqip_pc=key[1],
                reason="min_size",
            )
        return True

    def live_pair_count(self, cycle: int = 0) -> int:
        return sum(
            len(self.candidates(sp, cycle)) for sp in self._alternatives
        )
