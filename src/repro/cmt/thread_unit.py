"""Per-thread-unit resources: branch predictor, L1 cache, issue bandwidth.

A thread unit is one cluster of the processor; threads are assigned to a
unit for their whole life, and the unit's predictor/cache state persists
across the threads that run on it (paper Section 4.1).

Issue/FU bandwidth is tracked two ways:

- :meth:`book_issue_legacy` keeps the original unbounded
  ``cycle -> count`` / ``(fu, cycle) -> count`` dictionaries (the
  reference core).
- :meth:`book_issue` / :meth:`book_issue_idx` use fixed-size ring
  buffers over a sliding cycle window (the columnar and event cores'
  hot path — fault-injected runs included, since booking floors stay
  monotone across blackout restarts and spawn-retry delays):
  per probed cycle the ring slot is ``cycle % window`` and a stamp
  records which cycle the slot's count belongs to, so stale slots cost
  nothing to reclaim.  Bookings beyond the window spill into small
  overflow dicts (rare: only very long FU backlogs reach that far).
  The window base only moves forward (``begin_group``), which
  guarantees at most one live cycle can map to a slot at a time.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.cmt.config import ProcessorConfig
from repro.isa.instructions import FU_CLASSES, FU_COUNT, FU_INDEX, FU_LIMITS, FuClass
from repro.obs.events import EV_CACHE_INSTALL, NULL_TRACER
from repro.predictors.branch import make_branch_predictor
from repro.mem.l1 import L1Cache

#: Sliding-window size (cycles) of the ring-buffer issue tracker.  A
#: power of two so the slot index is a mask; large enough that only
#: pathological FU backlogs (> 1024 cycles of queueing from one fetch
#: group's floor) ever touch the overflow dicts.
RING_WINDOW = 1024
_RING_MASK = RING_WINDOW - 1


class ThreadUnit:
    """Execution resources of one cluster."""

    def __init__(self, tu_id: int, config: ProcessorConfig):
        self.tu_id = tu_id
        self.config = config
        #: Hoisted from the (frozen) config for the booking hot path.
        self.issue_width = config.issue_width
        self.gshare = make_branch_predictor(
            config.branch_predictor, config.branch_history_bits
        )
        self.l1 = L1Cache(
            size_kb=config.l1_size_kb,
            assoc=config.l1_assoc,
            block_words=config.l1_block_words,
            hit_latency=config.l1_hit_latency,
            miss_latency=config.l1_miss_latency,
        )
        #: cycle -> instructions issued that cycle (issue-width budget;
        #: legacy core only).
        self._issue_used: Dict[int, int] = {}
        #: (fu class, cycle) -> units of that class busy issuing that
        #: cycle (legacy core only).
        self._fu_used: Dict[Tuple[FuClass, int], int] = {}
        # Ring-buffer tracker (columnar core): per-slot stamps say which
        # cycle the count belongs to, so advancing the window is free.
        self._ring_base = 0
        self._issue_stamp: List[int] = [-1] * RING_WINDOW
        self._issue_count: List[int] = [0] * RING_WINDOW
        self._fu_stamp: List[List[int]] = [
            [-1] * RING_WINDOW for _ in FU_CLASSES
        ]
        self._fu_count: List[List[int]] = [
            [0] * RING_WINDOW for _ in FU_CLASSES
        ]
        #: cycle -> issue count for cycles beyond the ring window.
        self._issue_overflow: Dict[int, int] = {}
        #: (fu ordinal, cycle) -> count for cycles beyond the window.
        self._fu_overflow: Dict[Tuple[int, int], int] = {}
        #: cycle at which the unit becomes free for a new thread.
        self.free_at = 0
        #: sorted (start, end) cycle windows during which the unit is dark
        #: (fault injection); empty in a healthy simulation.
        self.fault_windows: List[Tuple[int, int]] = []
        #: Structured-event sink (the processor installs its tracer; the
        #: null tracer makes :meth:`note_install` a no-op).
        self.tracer = NULL_TRACER

    def note_install(
        self, cycle: int, thread: int, addr: int, is_store: bool
    ) -> None:
        """Record an L1 miss installing a line as a ``cache.install`` event.

        Called by the timing cores only when tracing is enabled (they
        detect the install via the cache's miss counter), so the disabled
        path never reaches here.
        """
        self.tracer.emit(
            EV_CACHE_INSTALL,
            cycle,
            tu=self.tu_id,
            thread=thread,
            addr=addr,
            store=is_store,
        )

    def set_fault_windows(self, windows: List[Tuple[int, int]]) -> None:
        """Install the unit's blackout schedule (sorted, non-overlapping)."""
        self.fault_windows = sorted(windows)

    def dark_until(self, cycle: int) -> Optional[int]:
        """End of the blackout window covering ``cycle``, if the unit is
        dark at that cycle; None otherwise."""
        windows = self.fault_windows
        if not windows:
            return None
        index = bisect_right(windows, (cycle, float("inf"))) - 1
        if index >= 0 and windows[index][0] <= cycle < windows[index][1]:
            return windows[index][1]
        return None

    # ------------------------------------------------------------------
    # Issue booking — ring-buffer tracker.
    # ------------------------------------------------------------------

    def begin_group(self, floor: int) -> None:
        """Advance the ring window: no future probe will be below ``floor``.

        The timing model calls this once per fetch group with the group's
        readiness floor; bases are monotonically non-decreasing by
        construction of the event loop, which is what makes the stamped
        ring slots unambiguous.
        """
        if floor > self._ring_base:
            self._ring_base = floor

    def book_issue(self, earliest: int, fu: FuClass) -> int:
        """Reserve an issue slot and a functional unit.

        Returns the first cycle >= ``earliest`` with both an issue-width
        slot and a free unit of class ``fu`` (units are fully pipelined:
        the reservation covers the issue cycle only).  Probes must not go
        below the last ``begin_group`` floor.
        """
        return self.book_issue_idx(earliest, FU_INDEX[fu])

    def book_issue_idx(self, earliest: int, fu_idx: int) -> int:
        """:meth:`book_issue` over the FU *ordinal* (hot-path variant)."""
        width = self.issue_width
        limit = FU_LIMITS[fu_idx]
        base = self._ring_base
        issue_stamp = self._issue_stamp
        issue_count = self._issue_count
        fu_stamp = self._fu_stamp[fu_idx]
        fu_count = self._fu_count[fu_idx]
        issue_overflow = self._issue_overflow
        fu_overflow = self._fu_overflow
        spilled = bool(issue_overflow or fu_overflow)
        cycle = earliest
        while True:
            if cycle - base < RING_WINDOW:
                slot = cycle & _RING_MASK
                used = issue_count[slot] if issue_stamp[slot] == cycle else 0
                busy = fu_count[slot] if fu_stamp[slot] == cycle else 0
                if spilled:
                    used += issue_overflow.get(cycle, 0)
                    busy += fu_overflow.get((fu_idx, cycle), 0)
                if used < width and busy < limit:
                    if issue_stamp[slot] == cycle:
                        issue_count[slot] += 1
                    else:
                        issue_stamp[slot] = cycle
                        issue_count[slot] = 1
                    if fu_stamp[slot] == cycle:
                        fu_count[slot] += 1
                    else:
                        fu_stamp[slot] = cycle
                        fu_count[slot] = 1
                    return cycle
            else:
                used = issue_overflow.get(cycle, 0)
                busy = fu_overflow.get((fu_idx, cycle), 0)
                if used < width and busy < limit:
                    issue_overflow[cycle] = used + 1
                    fu_overflow[(fu_idx, cycle)] = busy + 1
                    return cycle
            cycle += 1

    # ------------------------------------------------------------------
    # Issue booking — legacy dict tracker (reference core).
    # ------------------------------------------------------------------

    def book_issue_idx_dict(self, earliest: int, fu_idx: int) -> int:
        """Dict-backed booking over the FU ordinal.

        Kept as the reference twin of :meth:`book_issue_idx` (and as an
        escape hatch via ``ClusteredProcessor._use_rings``).  The
        columnar core used to fall back to it under fault injection;
        booking floors are monotone there too — a restarted or folded
        thread's probes are bounded below by its unit's ``free_at``,
        which dominates every floor previously booked on the unit — so
        all columnar-family runs now book through the rings and the
        injector equal-stats tests compare the two trackers.
        """
        return self.book_issue_legacy(earliest, FU_CLASSES[fu_idx])

    def book_issue_legacy(self, earliest: int, fu: FuClass) -> int:
        """The original dict-backed :meth:`book_issue` (reference core)."""
        issue_width = self.config.issue_width
        fu_limit = FU_COUNT[fu]
        cycle = earliest
        issue_used = self._issue_used
        fu_used = self._fu_used
        while True:
            if issue_used.get(cycle, 0) < issue_width and (
                fu_used.get((fu, cycle), 0) < fu_limit
            ):
                issue_used[cycle] = issue_used.get(cycle, 0) + 1
                fu_used[(fu, cycle)] = fu_used.get((fu, cycle), 0) + 1
                return cycle
            cycle += 1

    # ------------------------------------------------------------------
    # Bookkeeping hygiene.
    # ------------------------------------------------------------------

    def reset_bandwidth_tracking(self) -> None:
        """Drop per-cycle bookkeeping (between independent simulations)."""
        self._issue_used.clear()
        self._fu_used.clear()
        self._issue_overflow.clear()
        self._fu_overflow.clear()
        self._ring_base = 0
        self._issue_stamp = [-1] * RING_WINDOW
        self._issue_count = [0] * RING_WINDOW
        self._fu_stamp = [[-1] * RING_WINDOW for _ in FU_CLASSES]
        self._fu_count = [[0] * RING_WINDOW for _ in FU_CLASSES]

    def trim_bandwidth(self, before_cycle: int) -> int:
        """Drop booking entries strictly below ``before_cycle``.

        Called when a thread retires from this unit: every future probe on
        the unit happens after the retiring thread's commit cycle, so
        entries below it can never be read again.  The ring slots reclaim
        themselves via their stamps; this trims the unbounded structures
        (the legacy dicts and the ring's overflow spill) so weeks-long
        simulations do not grow issue-tracking state without bound.
        Returns the number of entries dropped.
        """
        removed = 0
        for cycle in [c for c in self._issue_used if c < before_cycle]:
            del self._issue_used[cycle]
            removed += 1
        for key in [k for k in self._fu_used if k[1] < before_cycle]:
            del self._fu_used[key]
            removed += 1
        for cycle in [c for c in self._issue_overflow if c < before_cycle]:
            del self._issue_overflow[cycle]
            removed += 1
        for key in [k for k in self._fu_overflow if k[1] < before_cycle]:
            del self._fu_overflow[key]
            removed += 1
        return removed
