"""Per-thread-unit resources: branch predictor, L1 cache, issue bandwidth.

A thread unit is one cluster of the processor; threads are assigned to a
unit for their whole life, and the unit's predictor/cache state persists
across the threads that run on it (paper Section 4.1).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.cmt.config import ProcessorConfig
from repro.isa.instructions import FU_COUNT, FuClass
from repro.predictors.branch import make_branch_predictor
from repro.mem.l1 import L1Cache


class ThreadUnit:
    """Execution resources of one cluster."""

    def __init__(self, tu_id: int, config: ProcessorConfig):
        self.tu_id = tu_id
        self.config = config
        self.gshare = make_branch_predictor(
            config.branch_predictor, config.branch_history_bits
        )
        self.l1 = L1Cache(
            size_kb=config.l1_size_kb,
            assoc=config.l1_assoc,
            block_words=config.l1_block_words,
            hit_latency=config.l1_hit_latency,
            miss_latency=config.l1_miss_latency,
        )
        #: cycle -> instructions issued that cycle (issue-width budget).
        self._issue_used: Dict[int, int] = {}
        #: (fu class, cycle) -> units of that class busy issuing that cycle.
        self._fu_used: Dict[Tuple[FuClass, int], int] = {}
        #: cycle at which the unit becomes free for a new thread.
        self.free_at = 0
        #: sorted (start, end) cycle windows during which the unit is dark
        #: (fault injection); empty in a healthy simulation.
        self.fault_windows: List[Tuple[int, int]] = []

    def set_fault_windows(self, windows: List[Tuple[int, int]]) -> None:
        """Install the unit's blackout schedule (sorted, non-overlapping)."""
        self.fault_windows = sorted(windows)

    def dark_until(self, cycle: int) -> Optional[int]:
        """End of the blackout window covering ``cycle``, if the unit is
        dark at that cycle; None otherwise."""
        windows = self.fault_windows
        if not windows:
            return None
        index = bisect_right(windows, (cycle, float("inf"))) - 1
        if index >= 0 and windows[index][0] <= cycle < windows[index][1]:
            return windows[index][1]
        return None

    def book_issue(self, earliest: int, fu: FuClass) -> int:
        """Reserve an issue slot and a functional unit.

        Returns the first cycle >= ``earliest`` with both an issue-width
        slot and a free unit of class ``fu`` (units are fully pipelined:
        the reservation covers the issue cycle only).
        """
        issue_width = self.config.issue_width
        fu_limit = FU_COUNT[fu]
        cycle = earliest
        issue_used = self._issue_used
        fu_used = self._fu_used
        while True:
            if issue_used.get(cycle, 0) < issue_width and (
                fu_used.get((fu, cycle), 0) < fu_limit
            ):
                issue_used[cycle] = issue_used.get(cycle, 0) + 1
                fu_used[(fu, cycle)] = fu_used.get((fu, cycle), 0) + 1
                return cycle
            cycle += 1

    def reset_bandwidth_tracking(self) -> None:
        """Drop per-cycle bookkeeping (between independent simulations)."""
        self._issue_used.clear()
        self._fu_used.clear()
