"""Inter-thread dependence and predictability profiling for spawning pairs.

The paper's alternative CQIP-ordering criteria (Section 3.1) need, for each
candidate pair, estimates of how many instructions of the would-be
speculative thread are *independent* of the instructions the spawner still
has to execute (the SP->CQIP region), and how many are independent **or**
fed only by stride-predictable live-in values.  This module measures both
over sampled occurrences of the pair in the profile trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exec.trace import Trace


@dataclass
class PairDependenceProfile:
    """Sampled dependence statistics for one (SP pc, CQIP pc) pair."""

    sp_pc: int
    cqip_pc: int
    samples: int
    avg_thread_instructions: float
    #: Average instructions (transitively) independent of the spawn region.
    avg_independent: float
    #: Average instructions independent or fed by stride-predictable live-ins.
    avg_predictable_or_independent: float
    #: Per live-in register: stride-prediction hit-rate estimate.
    livein_predictability: Dict[int, float]


def _stride_hit_rates(value_history: Dict[int, List[int]]) -> Dict[int, float]:
    """Fraction of occurrences where value[k] == value[k-1] + stride[k-1]."""
    rates: Dict[int, float] = {}
    for reg, values in value_history.items():
        if len(values) < 3:
            # Too few observations to establish a stride: assume last-value
            # behaviour (hit when the value repeats).
            hits = sum(1 for a, b in zip(values, values[1:]) if a == b)
            rates[reg] = hits / max(len(values) - 1, 1)
            continue
        hits = 0
        trials = 0
        for older, prev, cur in zip(values, values[1:], values[2:]):
            if not all(isinstance(v, int) for v in (older, prev, cur)):
                continue
            trials += 1
            if cur == prev + (prev - older):
                hits += 1
        rates[reg] = hits / trials if trials else 0.0
    return rates


def profile_pair_dependences(
    trace: Trace,
    sp_pc: int,
    cqip_pc: int,
    thread_length: int,
    max_samples: int = 8,
    predictability_threshold: float = 0.6,
) -> PairDependenceProfile:
    """Measure dependence/predictability statistics for one spawning pair.

    For up to ``max_samples`` dynamic occurrences of SP followed by CQIP,
    the would-be speculative thread is taken to be the ``thread_length``
    instructions starting at the CQIP (the paper assumes a thread size
    equal to the SP->CQIP distance).  An instruction is *independent* when
    none of its register/memory inputs (transitively, within the thread)
    come from the spawn region [SP, CQIP).
    """
    reg_deps = trace.register_deps
    mem_deps = trace.memory_deps
    sp_positions = trace.positions_of(sp_pc)
    n = len(trace)

    # Collect sample windows: SP occurrence -> next CQIP occurrence.
    windows: List[Tuple[int, int]] = []
    stride = max(1, len(sp_positions) // max_samples)
    for idx in range(0, len(sp_positions), stride):
        if len(windows) >= max_samples:
            break
        sp_pos = sp_positions[idx]
        cqip_pos = trace.next_occurrence(
            cqip_pc, sp_pos, min(n, sp_pos + 8 * max(thread_length, 32) + 1)
        )
        if cqip_pos is None and sp_pc == cqip_pc:
            cqip_pos = trace.next_occurrence(
                sp_pc, sp_pos, min(n, sp_pos + 8 * max(thread_length, 32) + 1)
            )
        if cqip_pos is not None:
            windows.append((sp_pos, cqip_pos))

    # Live-in value histories across *all* SP occurrences (not just the
    # sampled windows) so stride detection has enough points.
    livein_values: Dict[int, List] = {}
    independent_counts: List[int] = []
    pred_counts: List[int] = []
    thread_sizes: List[int] = []

    # First pass over sample windows: classify dependences.
    per_window_livein_regs: List[Dict[int, int]] = []
    for sp_pos, cqip_pos in windows:
        end = min(n, cqip_pos + thread_length)
        dependent = set()
        livein_regs: Dict[int, int] = {}
        independent = 0
        for pos in range(cqip_pos, end):
            inst = trace[pos]
            dep = False
            for src_i, producer in enumerate(reg_deps[pos]):
                if sp_pos <= producer < cqip_pos:
                    dep = True
                    reg = inst.srcs[src_i]
                    livein_regs.setdefault(reg, pos)
                elif producer in dependent:
                    dep = True
            mem_producer = mem_deps[pos]
            if mem_producer >= 0 and (
                sp_pos <= mem_producer < cqip_pos or mem_producer in dependent
            ):
                dep = True
            if dep:
                dependent.add(pos)
            else:
                independent += 1
        independent_counts.append(independent)
        thread_sizes.append(end - cqip_pos)
        per_window_livein_regs.append(livein_regs)
        for reg in livein_regs:
            livein_values.setdefault(reg, [])

    # Gather live-in value histories over all windows of the pair.
    for sp_pos, cqip_pos in windows:
        for reg in livein_values:
            livein_values[reg].append(trace.value_of_register_at(reg, cqip_pos))

    predictability = _stride_hit_rates(livein_values)

    # Second pass: count instructions that are independent OR whose spawn
    # -region inputs flow only through predictable live-in registers.
    for w_idx, (sp_pos, cqip_pos) in enumerate(windows):
        end = min(n, cqip_pos + thread_length)
        blocked = set()  # positions poisoned by an unpredictable live-in
        ok = 0
        for pos in range(cqip_pos, end):
            inst = trace[pos]
            bad = False
            for src_i, producer in enumerate(reg_deps[pos]):
                if sp_pos <= producer < cqip_pos:
                    reg = inst.srcs[src_i]
                    if predictability.get(reg, 0.0) < predictability_threshold:
                        bad = True
                elif producer in blocked:
                    bad = True
            mem_producer = mem_deps[pos]
            if mem_producer >= 0 and (
                sp_pos <= mem_producer < cqip_pos or mem_producer in blocked
            ):
                bad = True  # memory values are never predicted (paper 4.1)
            if bad:
                blocked.add(pos)
            else:
                ok += 1
        pred_counts.append(ok)

    samples = len(windows)
    return PairDependenceProfile(
        sp_pc=sp_pc,
        cqip_pc=cqip_pc,
        samples=samples,
        avg_thread_instructions=(
            sum(thread_sizes) / samples if samples else 0.0
        ),
        avg_independent=(
            sum(independent_counts) / samples if samples else 0.0
        ),
        avg_predictable_or_independent=(
            sum(pred_counts) / samples if samples else 0.0
        ),
        livein_predictability=predictability,
    )
