"""Dynamic control-flow graph construction from a trace.

Nodes are basic blocks (identified by their leader pc), edges are observed
control transfers weighted by traversal frequency — exactly the structure
the paper builds from its profiling run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exec.trace import Trace


@dataclass
class BasicBlock:
    """A dynamic basic block.

    ``size`` is the number of instructions from the leader to the block end
    (identical across executions because the leader set is global).
    """

    bid: int
    start_pc: int
    size: int
    count: int = 0


class ControlFlowGraph:
    """Weighted dynamic CFG plus the dynamic block sequence.

    ``sequence`` preserves the profile run as a list of
    ``(block_id, trace_position)`` pairs; the empirical reaching estimator
    and the spawning simulator both consume it.
    """

    def __init__(
        self,
        blocks: List[BasicBlock],
        edges: Dict[Tuple[int, int], int],
        sequence: List[Tuple[int, int]],
        total_instructions: int,
    ):
        self.blocks = blocks
        self.edges = edges
        self.sequence = sequence
        self.total_instructions = total_instructions
        self.by_pc: Dict[int, int] = {b.start_pc: b.bid for b in blocks}
        self.succs: Dict[int, List[int]] = {b.bid: [] for b in blocks}
        self.preds: Dict[int, List[int]] = {b.bid: [] for b in blocks}
        for (u, v) in edges:
            self.succs[u].append(v)
            self.preds[v].append(u)

    def __len__(self) -> int:
        return len(self.blocks)

    def block_of_pc(self, pc: int) -> int:
        """Block id whose leader is ``pc`` (KeyError if not a leader)."""
        return self.by_pc[pc]

    def out_weight(self, bid: int) -> int:
        """Total weight of edges leaving ``bid``."""
        return sum(self.edges[(bid, v)] for v in self.succs[bid])

    @classmethod
    def from_trace(cls, trace: Trace) -> "ControlFlowGraph":
        """Build the weighted dynamic CFG of a profile run.

        Leaders are: the first executed pc, every control-transfer target,
        and every fall-through point after a control instruction.  The
        dynamic stream is then segmented at leaders and control transfers.
        """
        if len(trace) == 0:
            raise ValueError("cannot build a CFG from an empty trace")

        leaders = {trace[0].pc}
        for inst in trace:
            if inst.op.name in ("JUMP", "CALL", "RET") or inst.taken is not None:
                leaders.add(inst.next_pc)
                leaders.add(inst.pc + 1)

        blocks: List[BasicBlock] = []
        by_pc: Dict[int, int] = {}
        edges: Dict[Tuple[int, int], int] = {}
        sequence: List[Tuple[int, int]] = []

        pos = 0
        n = len(trace)
        prev_block = -1
        while pos < n:
            start = pos
            start_pc = trace[pos].pc
            # Extend the block until a control transfer or the next leader.
            while True:
                inst = trace[pos]
                pos += 1
                is_control = (
                    inst.taken is not None
                    or inst.op.name in ("JUMP", "CALL", "RET")
                )
                if is_control or pos >= n:
                    break
                if trace[pos].pc in leaders:
                    break
            size = pos - start
            if start_pc in by_pc:
                bid = by_pc[start_pc]
                # A later, shorter instance can appear if a new leader was
                # discovered mid-block; keep the minimum consistent size.
                if blocks[bid].size != size:
                    blocks[bid].size = min(blocks[bid].size, size)
            else:
                bid = len(blocks)
                by_pc[start_pc] = bid
                blocks.append(BasicBlock(bid=bid, start_pc=start_pc, size=size))
            blocks[bid].count += 1
            sequence.append((bid, start))
            if prev_block >= 0:
                key = (prev_block, bid)
                edges[key] = edges.get(key, 0) + 1
            prev_block = bid
        return cls(blocks, edges, sequence, total_instructions=n)
