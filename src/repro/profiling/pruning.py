"""CFG pruning to an instruction-coverage target.

The paper reduces the graph by keeping the hottest basic blocks until 90%
of executed instructions are covered.  Pruned nodes are *eliminated*, not
dropped: each predecessor edge is re-routed to the node's successors with
its weight split proportionally, so control-flow information (and total
edge flow) is conserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.profiling.cfg import ControlFlowGraph


@dataclass
class PrunedCFG:
    """Result of pruning: the kept block ids and the rewired edge weights."""

    cfg: ControlFlowGraph
    kept: FrozenSet[int]
    edges: Dict[Tuple[int, int], float]
    coverage: float

    def out_weight(self, bid: int) -> float:
        return sum(w for (u, _v), w in self.edges.items() if u == bid)


def prune_cfg(
    cfg: ControlFlowGraph,
    coverage: float = 0.9,
    always_keep: Optional[Iterable[int]] = None,
) -> PrunedCFG:
    """Prune ``cfg`` to blocks covering ``coverage`` of executed instructions.

    Blocks are ranked by execution count (the paper's ordering) and kept
    from hottest to coldest until the cumulative instruction coverage
    reaches the target.  Every pruned node is eliminated by connecting its
    predecessors to its successors; an edge split across multiple
    successors divides its weight proportionally to the successor edge
    weights, with self-loop flow folded into the exit distribution.

    ``always_keep`` protects structurally-critical block ids (e.g. loop
    heads) from the coverage cut — small loop-overhead blocks of hot
    outer loops can rank below the cut even though every spawning pair of
    the region hangs off them.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")

    ranked = sorted(cfg.blocks, key=lambda blk: blk.count, reverse=True)
    total = cfg.total_instructions
    kept = set(always_keep or ())
    covered = sum(
        cfg.blocks[bid].count * cfg.blocks[bid].size for bid in kept
    )
    for blk in ranked:
        if covered >= coverage * total:
            break
        if blk.bid in kept:
            continue
        kept.add(blk.bid)
        covered += blk.count * blk.size

    # Eliminate pruned nodes one at a time on a mutable weighted graph.
    edges: Dict[Tuple[int, int], float] = {
        key: float(weight) for key, weight in cfg.edges.items()
    }
    for blk in cfg.blocks:
        victim = blk.bid
        if victim in kept:
            continue
        in_edges = [(u, w) for (u, v), w in edges.items() if v == victim and u != victim]
        out_edges = [(v, w) for (u, v), w in edges.items() if u == victim and v != victim]
        self_w = edges.get((victim, victim), 0.0)
        exit_total = sum(w for _v, w in out_edges)
        for u, w_in in in_edges:
            if exit_total > 0:
                # Probability of leaving the victim towards v, accounting
                # for any number of self-loop traversals first.
                for v, w_out in out_edges:
                    key = (u, v)
                    edges[key] = edges.get(key, 0.0) + w_in * w_out / exit_total
            # else: the victim is a sink (flow dies there), drop the edge.
        for u, _w in in_edges:
            del edges[(u, victim)]
        for v, _w in out_edges:
            del edges[(victim, v)]
        if (victim, victim) in edges:
            # Self-loop flow is folded into the exit split (a walk may loop
            # any number of times before leaving, which does not change the
            # exit distribution); the edge itself disappears with the node.
            del edges[(victim, victim)]

    return PrunedCFG(
        cfg=cfg,
        kept=frozenset(kept),
        edges=edges,
        coverage=covered / total if total else 0.0,
    )
