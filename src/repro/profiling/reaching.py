"""Reaching probabilities and expected SP->CQIP distances.

For every ordered pair of basic blocks (s, d) the paper needs:

- ``prob[s, d]``: the probability that, having just entered ``s``, control
  reaches ``d`` before re-entering ``s`` (the source may appear in the
  sequence only as its first element, the destination only as its last;
  other blocks may repeat freely — Section 3.1).
- ``dist[s, d]``: the average number of instructions executed from the
  start of ``s`` to the start of ``d`` over the sequences that do reach.

:class:`MarkovReachingProfile` computes both in closed form on the pruned
CFG using absorbing-chain fundamental matrices.  For each source ``s`` the
chain is modified so that ``s`` absorbs (a revisit kills the walk); with
``N = (I - Q_s)^-1`` and ``H[x, d] = N[x, d] / N[d, d]`` (first-passage
probability), taboo Green's functions give the expected number of visits
to each block before first reaching ``d`` restricted to walks that do
reach it: ``G_d(x, z) = (N[x, z] - H[x, d] * N[d, z]) * H[z, d]``.

:class:`EmpiricalReachingProfile` measures the same quantities directly on
the profile trace with a bounded lookahead; it is the default estimator
because it makes no Markov assumption (and the paper's selection criteria
only need pairs within a bounded distance anyway).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.profiling.cfg import ControlFlowGraph
from repro.profiling.pruning import PrunedCFG


class ReachingProfile:
    """Common interface: dense ``prob`` and ``dist`` matrices over blocks.

    ``prob[s, d]`` in [0, 1]; ``dist[s, d]`` in instructions (NaN where the
    pair was never observed / has zero probability).
    """

    def __init__(self, cfg: ControlFlowGraph, prob: np.ndarray, dist: np.ndarray):
        self.cfg = cfg
        self.prob = prob
        self.dist = dist

    def pair_probability(self, sp_block: int, cqip_block: int) -> float:
        return float(self.prob[sp_block, cqip_block])

    def pair_distance(self, sp_block: int, cqip_block: int) -> float:
        return float(self.dist[sp_block, cqip_block])


class EmpiricalReachingProfile(ReachingProfile):
    """Reaching statistics measured directly on the profile trace."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        max_lookahead: int = 4096,
    ):
        n = len(cfg)
        counts = np.zeros((n, n), dtype=np.int64)
        dist_sum = np.zeros((n, n), dtype=np.float64)
        occurrences = np.zeros(n, dtype=np.int64)

        sequence = cfg.sequence
        seq_len = len(sequence)
        for k in range(seq_len):
            s, pos_s = sequence[k]
            occurrences[s] += 1
            limit = pos_s + max_lookahead
            seen = {}
            m = k + 1
            while m < seq_len:
                blk, pos = sequence[m]
                if pos >= limit:
                    break
                if blk == s:
                    # Self pair: a loop iteration — record and stop (the
                    # source may only re-appear as the destination).
                    seen.setdefault(s, pos - pos_s)
                    break
                if blk not in seen:
                    seen[blk] = pos - pos_s
                m += 1
            for blk, distance in seen.items():
                counts[s, blk] += 1
                dist_sum[s, blk] += distance

        with np.errstate(invalid="ignore", divide="ignore"):
            prob = counts / np.maximum(occurrences[:, None], 1)
            dist = np.where(counts > 0, dist_sum / np.maximum(counts, 1), np.nan)
        prob[occurrences == 0, :] = 0.0
        super().__init__(cfg, prob, dist)
        self.max_lookahead = max_lookahead


class MarkovReachingProfile(ReachingProfile):
    """The paper's closed-form computation on the pruned CFG.

    Blocks outside the pruned cover get zero probability (they cannot be
    selected as spawning points anyway).
    """

    def __init__(self, pruned: PrunedCFG):
        cfg = pruned.cfg
        n_all = len(cfg)
        kept = sorted(pruned.kept)
        index = {bid: i for i, bid in enumerate(kept)}
        n = len(kept)

        # Row-stochastic transition matrix over kept blocks (rows of sinks
        # stay zero: the walk dies there).
        P = np.zeros((n, n), dtype=np.float64)
        out = np.zeros(n, dtype=np.float64)
        for (u, v), w in pruned.edges.items():
            if u in index and v in index:
                out[index[u]] += w
        for (u, v), w in pruned.edges.items():
            if u in index and v in index and out[index[u]] > 0:
                P[index[u], index[v]] += w / out[index[u]]

        sizes = np.array(
            [cfg.blocks[bid].size for bid in kept], dtype=np.float64
        )

        prob = np.zeros((n_all, n_all), dtype=np.float64)
        dist = np.full((n_all, n_all), np.nan, dtype=np.float64)
        eye = np.eye(n)

        for si, s_bid in enumerate(kept):
            q = P.copy()
            q[si, :] = 0.0  # revisiting the source kills the walk
            try:
                fundamental = np.linalg.inv(eye - q)
            except np.linalg.LinAlgError:
                fundamental = np.linalg.pinv(eye - q)
            diag = np.diag(fundamental).copy()
            diag[diag == 0] = 1.0
            hit = fundamental / diag[None, :]  # H[x, d]
            # prob(s -> d) = sum_y P[s, y] * H[y, d]
            p_row = P[si, :] @ hit
            # Accumulated-size expectation restricted to reaching d:
            #   A[y, d] = sum_z size(z) * H[z, d] * N[y, z]
            #           - H[y, d] * sum_z size(z) * H[z, d] * N[d, z]
            m_mat = sizes[:, None] * hit
            nm = fundamental @ m_mat
            a_mat = nm - hit * np.diag(nm)[None, :]
            acc_row = P[si, :] @ a_mat
            with np.errstate(invalid="ignore", divide="ignore"):
                d_row = sizes[si] + np.where(p_row > 0, acc_row / p_row, np.nan)
            for di, d_bid in enumerate(kept):
                prob[s_bid, d_bid] = p_row[di]
                dist[s_bid, d_bid] = d_row[di]
        super().__init__(cfg, prob, dist)
        self.pruned = pruned


def build_reaching_profile(
    cfg: ControlFlowGraph,
    method: str = "empirical",
    pruned: Optional[PrunedCFG] = None,
    max_lookahead: int = 4096,
) -> ReachingProfile:
    """Factory over the two estimators (``"empirical"`` or ``"markov"``)."""
    if method == "empirical":
        return EmpiricalReachingProfile(cfg, max_lookahead=max_lookahead)
    if method == "markov":
        if pruned is None:
            from repro.profiling.pruning import prune_cfg

            pruned = prune_cfg(cfg)
        return MarkovReachingProfile(pruned)
    raise ValueError(f"unknown reaching method {method!r}")
