"""Profile analysis: dynamic CFG, pruning, reaching probabilities, deps.

This package implements Section 3.1 of the paper: build a weighted dynamic
control-flow graph from a profile run, prune it to 90% instruction coverage
(rewiring edges proportionally), and compute for every ordered pair of
basic blocks the probability of reaching the second after the first and the
expected number of instructions in between.

Two interchangeable estimators are provided:

- :class:`MarkovReachingProfile` — the paper's formulation: absorbing
  Markov-chain computation on the pruned CFG (source node may appear only
  as the first element of a sequence, destination only as the last).
- :class:`EmpiricalReachingProfile` — direct measurement over the profile
  trace with a lookahead cap; used as the default because it needs no
  Markov assumption and yields distances for free.
"""

from repro.profiling.cfg import BasicBlock, ControlFlowGraph
from repro.profiling.pruning import PrunedCFG, prune_cfg
from repro.profiling.reaching import (
    EmpiricalReachingProfile,
    MarkovReachingProfile,
    ReachingProfile,
)
from repro.profiling.dependence import PairDependenceProfile, profile_pair_dependences

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "PrunedCFG",
    "prune_cfg",
    "ReachingProfile",
    "EmpiricalReachingProfile",
    "MarkovReachingProfile",
    "PairDependenceProfile",
    "profile_pair_dependences",
]
