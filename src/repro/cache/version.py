"""Cache versioning: artifacts are invalidated when generator code changes.

Every cache key embeds two version components:

- :data:`SCHEMA_VERSION` — bumped by hand when the on-disk layout or the
  serialised form of an artifact kind changes incompatibly;
- :func:`generator_version` — a blake2b digest over the source text of
  every package that can influence a derived artifact (ISA, functional
  executor, workload generators, profiler, spawning policies, timing
  simulator, predictors, memory model).  Editing any of those files
  changes the digest, so stale artifacts simply miss and are rebuilt —
  no manual cache flush is ever required after a code change.
"""

from __future__ import annotations

import functools
import hashlib
from pathlib import Path

#: Bump when the serialised artifact formats change incompatibly.
SCHEMA_VERSION = 1

#: Sub-packages of ``repro`` whose source feeds the generator digest.
VERSIONED_PACKAGES = (
    "isa",
    "exec",
    "workloads",
    "profiling",
    "spawning",
    "cmt",
    "predictors",
    "mem",
    "faults",
)


@functools.lru_cache(maxsize=1)
def generator_version() -> str:
    """Digest of all artifact-producing source code.

    Returns:
        A 16-hex-character blake2b digest, stable for a given checkout
        and different whenever any versioned package's source changes.
    """
    root = Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.blake2b(digest_size=8)
    for package in VERSIONED_PACKAGES:
        package_dir = root / package
        if not package_dir.is_dir():
            continue
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(path.read_bytes())
    return digest.hexdigest()
