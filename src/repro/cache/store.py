"""Content-addressed on-disk artifact cache with an in-process LRU front.

The cache memoizes the expensive derived inputs of an experiment sweep —
assembled programs, sequential traces, profile/pair selections, baseline
cycle counts, and whole simulation points — so that repeated sweeps (and
parallel workers attacking the same sweep) never re-derive an artifact.

Keys are blake2b digests of a canonical JSON encoding of
``(schema version, generator version, artifact kind, key fields)``; the
key fields carry every knob that can influence the artifact (workload
name, scale, dataset, policy parameters, processor-configuration
overrides).  Changing any knob — or any generator source file, via
:func:`~repro.cache.version.generator_version` — produces a different
key, so invalidation is automatic and stale entries are merely unused.

Writes are atomic (temp file + ``os.replace``) so concurrent workers can
share one cache directory; a duplicate write of the same key is
byte-identical by construction (serialisation is canonical), so the race
is benign.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

__all__ = ["ArtifactCache", "CacheStats", "canonical_key_fields"]

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()

#: Pickle protocol pinned for byte-stable artifacts across interpreter
#: minor versions that share the protocol.
_PICKLE_PROTOCOL = 4


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to deterministically JSON-encodable primitives."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_key_fields(fields: Dict[str, Any]) -> str:
    """Return the canonical JSON encoding of key fields (sorted, compact)."""
    return json.dumps(_canonical(fields), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Codecs: one (extension, dumps, loads) per artifact kind.
# ----------------------------------------------------------------------


def _pickle_dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=_PICKLE_PROTOCOL)


def _trace_dumps(trace: Any) -> bytes:
    # Serialise only the canonical (program, instructions) pair: a trace's
    # lazily-built indexes depend on access history and would make the
    # bytes nondeterministic; they are rebuilt on demand after loading.
    return pickle.dumps((trace.program, trace.insts), protocol=_PICKLE_PROTOCOL)


def _trace_loads(blob: bytes) -> Any:
    from repro.exec.trace import Trace

    program, insts = pickle.loads(blob)
    return Trace(program, insts)


def _pairs_dumps(pairs: Any) -> bytes:
    from repro.spawning import pair_set_to_dict

    return json.dumps(
        pair_set_to_dict(pairs), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _pairs_loads(blob: bytes) -> Any:
    from repro.spawning import pair_set_from_dict

    return pair_set_from_dict(json.loads(blob.decode("utf-8")))


def _json_dumps(value: Any) -> bytes:
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _json_loads(blob: bytes) -> Any:
    return json.loads(blob.decode("utf-8"))


#: kind -> (file extension, dumps, loads).
_CODECS: Dict[str, Tuple[str, Callable[[Any], bytes], Callable[[bytes], Any]]] = {
    "program": ("pkl", _pickle_dumps, pickle.loads),
    "trace": ("pkl", _trace_dumps, _trace_loads),
    "columns": ("pkl", _pickle_dumps, pickle.loads),
    "profile": ("pkl", _pickle_dumps, pickle.loads),
    "pairs": ("json", _pairs_dumps, _pairs_loads),
    "baseline": ("json", _json_dumps, _json_loads),
    "point": ("json", _json_dumps, _json_loads),
}


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ArtifactCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hits(self) -> int:
        """Total lookups served from memory or disk."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Return the flat JSON-friendly counters (for bench reports)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _DiskKind:
    """Aggregate on-disk footprint of one artifact kind."""

    entries: int = 0
    bytes: int = 0


class ArtifactCache:
    """Content-addressed artifact store: disk persistence + LRU memory.

    Args:
        root: Cache directory (created on demand).  Artifacts live in one
            subdirectory per kind, named ``<digest>.<ext>``.
        memory_entries: Capacity of the in-process LRU front (0 disables
            it; every hit then deserialises from disk).

    The public surface is :meth:`get_or_create` — look up an artifact by
    its key fields and build-and-store it on a miss — plus the
    introspection helpers backing ``repro cache {stats,clear,warm}``.
    """

    def __init__(
        self, root: Union[str, Path], memory_entries: int = 256
    ) -> None:
        self.root = Path(root)
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys and paths.
    # ------------------------------------------------------------------

    def key(self, kind: str, **fields: Any) -> str:
        """Return the content digest of (schema, generator, kind, fields)."""
        from repro.cache.version import SCHEMA_VERSION, generator_version

        if kind not in _CODECS:
            raise KeyError(
                f"unknown artifact kind {kind!r}; choose from {list(_CODECS)}"
            )
        payload = canonical_key_fields(
            {
                "schema": SCHEMA_VERSION,
                "generator": generator_version(),
                "kind": kind,
                "fields": fields,
            }
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=16
        ).hexdigest()

    def path(self, kind: str, key: str) -> Path:
        """Return the on-disk location of the artifact ``(kind, key)``."""
        ext = _CODECS[kind][0]
        return self.root / kind / f"{key}.{ext}"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------

    def lookup(self, kind: str, key: str) -> Any:
        """Return ``(kind, key)`` or the ``_MISSING`` sentinel; no build."""
        memo_key = (kind, key)
        if memo_key in self._memory:
            self._memory.move_to_end(memo_key)
            self.stats.memory_hits += 1
            return self._memory[memo_key]
        path = self.path(kind, key)
        if path.exists():
            value = _CODECS[kind][2](path.read_bytes())
            self.stats.disk_hits += 1
            self._remember(memo_key, value)
            return value
        return _MISSING

    def store(self, kind: str, key: str, value: Any) -> Path:
        """Serialise ``value`` under ``(kind, key)``; atomic write.

        Returns:
            The artifact's on-disk path.
        """
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = _CODECS[kind][1](value)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        self.stats.puts += 1
        self._remember((kind, key), value)
        return path

    def read_blob(self, kind: str, key: str) -> Optional[bytes]:
        """Return the raw on-disk bytes of ``(kind, key)``, or None.

        Used by the network cache layer, which ships artifacts between
        hosts verbatim — the bytes are canonical by construction, so a
        transferred blob is byte-identical to a locally built one.
        Bypasses the LRU front and the hit/miss counters.

        Args:
            kind: Artifact kind (a codec name).
            key: Content digest (see :meth:`key`).

        Returns:
            The serialised artifact bytes, or None when absent.
        """
        path = self.path(kind, key)
        try:
            return path.read_bytes()
        except OSError:
            return None

    def write_blob(self, kind: str, key: str, blob: bytes) -> Path:
        """Write pre-serialised artifact bytes under ``(kind, key)``.

        The atomic-replace discipline of :meth:`store` applies, but the
        bytes are written verbatim (no codec round-trip) and neither the
        LRU front nor the ``puts`` counter is touched — a pulled blob
        only becomes a *hit* when :meth:`lookup` later decodes it.

        Args:
            kind: Artifact kind (a codec name).
            key: Content digest the bytes were stored under remotely.
            blob: The serialised artifact bytes.

        Returns:
            The artifact's on-disk path.
        """
        if kind not in _CODECS:
            raise KeyError(
                f"unknown artifact kind {kind!r}; choose from {list(_CODECS)}"
            )
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return path

    def get_or_create(
        self, kind: str, build: Callable[[], Any], **fields: Any
    ) -> Any:
        """Return the cached artifact for ``fields``, building on a miss.

        Args:
            kind: Artifact kind (``program``, ``trace``, ``columns``,
                ``profile``, ``pairs``, ``baseline`` or ``point``).
            build: Zero-argument callable producing the artifact.
            **fields: Every knob that influences the artifact's content.

        Returns:
            The cached (or freshly built and stored) artifact.
        """
        key = self.key(kind, **fields)
        value = self.lookup(kind, key)
        if value is not _MISSING:
            return value
        self.stats.misses += 1
        value = build()
        self.store(kind, key, value)
        return value

    def _remember(self, memo_key: Tuple[str, str], value: Any) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[memo_key] = value
        self._memory.move_to_end(memo_key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    # Introspection / maintenance (the ``repro cache`` CLI).
    # ------------------------------------------------------------------

    def disk_summary(self) -> Dict[str, _DiskKind]:
        """Return per-kind entry counts and byte totals currently on disk."""
        summary: Dict[str, _DiskKind] = {}
        for kind in _CODECS:
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            agg = _DiskKind()
            for entry in kind_dir.iterdir():
                if entry.is_file() and ".tmp" not in entry.name:
                    agg.entries += 1
                    agg.bytes += entry.stat().st_size
            if agg.entries:
                summary[kind] = agg
        return summary

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete cached artifacts (one kind, or everything); returns count."""
        kinds = [kind] if kind is not None else list(_CODECS)
        removed = 0
        for k in kinds:
            kind_dir = self.root / k
            if not kind_dir.is_dir():
                continue
            for entry in kind_dir.iterdir():
                if entry.is_file():
                    entry.unlink()
                    removed += 1
        self._memory.clear()
        return removed

    def reset_stats(self) -> CacheStats:
        """Swap in fresh hit/miss counters; returns the old ones."""
        old, self.stats = self.stats, CacheStats()
        return old
