"""Content-addressed artifact cache for experiment sweeps.

Sweeps over (workload x policy x configuration) re-derive the same
expensive inputs — assembled programs, sequential traces, profile/pair
selections, baseline cycle counts — on every run.  This package stores
them once, keyed by a blake2b digest of every knob that can change the
artifact plus a digest of the generator source itself (so code edits
invalidate automatically).  See :mod:`repro.cache.store` for the store
and :mod:`repro.cache.version` for the invalidation scheme.
"""

from repro.cache.store import ArtifactCache, CacheStats, canonical_key_fields
from repro.cache.version import SCHEMA_VERSION, generator_version

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "canonical_key_fields",
    "SCHEMA_VERSION",
    "generator_version",
]
