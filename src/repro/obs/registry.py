"""Labelled metrics registry with Prometheus and JSONL exposition.

One registry unifies the repository's scattered telemetry —
:class:`~repro.cmt.stats.SimulationStats`,
:class:`~repro.cache.CacheStats`, engine/runner counters (retries,
timeouts, per-point wall time, worker cache hit rates) — behind three
metric types with label sets and snapshot/delta semantics:

- :class:`Counter` — monotonically increasing totals (``*_total``);
- :class:`Gauge` — point-in-time values (rates, sizes);
- :class:`Histogram` — bucketed distributions (thread sizes, wall
  times) with Prometheus ``_bucket``/``_sum``/``_count`` exposition.

Naming convention (documented in ``docs/observability.md``): metric
names are ``repro_<subsystem>_<quantity>[_<unit>]``, counters end in
``_total``, and label values carry run identity (workload, policy,
predictor) so two runs can share one exposition stream.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Version of the snapshot JSON shape (bump on breaking changes).
SNAPSHOT_SCHEMA_VERSION = 1

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (powers of two — thread sizes and cycle
#: counts both span several orders of magnitude).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelItems:
    for name in labels:
        if not _LABEL.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Metric:
    """Base of the three metric types: a name, help text, and samples."""

    type = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def samples(self) -> List[Tuple[LabelItems, float]]:
        """Return ``(label items, value)`` pairs, sorted by labels."""
        raise NotImplementedError

    def expose(self) -> List[str]:
        """Return the metric's Prometheus text-exposition lines."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.type}")
        for items, value in self.samples():
            lines.append(f"{self.name}{_format_labels(items)} {_render(value)}")
        return lines


def _render(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter(Metric):
    """Monotonically increasing total, optionally labelled."""

    type = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelItems, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled sample."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Return the labelled sample's current value (0 if unseen)."""
        return self._values.get(_label_key(labels), 0)

    def samples(self) -> List[Tuple[LabelItems, float]]:
        return sorted(self._values.items())


class Gauge(Metric):
    """Point-in-time value, optionally labelled."""

    type = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelItems, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled sample to ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to the labelled sample."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Return the labelled sample's current value (0 if unseen)."""
        return self._values.get(_label_key(labels), 0)

    def samples(self) -> List[Tuple[LabelItems, float]]:
        return sorted(self._values.items())


class Histogram(Metric):
    """Bucketed distribution with cumulative Prometheus exposition."""

    type = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.bounds = bounds
        #: labels -> (per-bound counts, sum, count)
        self._series: Dict[LabelItems, Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation in the labelled series."""
        key = _label_key(labels)
        counts, total, n = self._series.get(
            key, ([0] * len(self.bounds), 0.0, 0)
        )
        index = bisect_left(self.bounds, value)
        if index < len(counts):
            counts[index] += 1
        self._series[key] = (counts, total + value, n + 1)

    def count(self, **labels: Any) -> int:
        """Return the labelled series' observation count."""
        series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Estimate the q-quantile of the labelled series.

        Linear interpolation over the bucket bounds, the same estimate
        ``histogram_quantile`` computes from the Prometheus exposition —
        which is what lets dashboard latency tiles show p50/p99 without
        re-parsing exposition text.  The first bucket interpolates from
        a lower edge of 0; observations beyond the last bound (the
        implicit ``+Inf`` bucket) clamp to the last bound, since there
        is no finite upper edge to interpolate towards.

        Args:
            q: Quantile in [0, 1] (0.5 = median, 0.99 = p99).
            **labels: The series to estimate.

        Returns:
            The estimated value, or None when the series is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(_label_key(labels))
        if series is None or series[2] == 0:
            return None
        counts, _total, n = series
        rank = q * n
        running = 0
        lower = 0.0
        for bound, bucket in zip(self.bounds, counts):
            if bucket and running + bucket >= rank:
                fraction = max(rank - running, 0.0) / bucket
                return lower + (bound - lower) * fraction
            running += bucket
            lower = bound
        return self.bounds[-1]

    def sum(self, **labels: Any) -> float:
        """Return the labelled series' observation sum."""
        series = self._series.get(_label_key(labels))
        return series[1] if series else 0.0

    def samples(self) -> List[Tuple[LabelItems, float]]:
        # Snapshot view: the per-label count and sum (bucket detail is
        # exposition-only; snapshots diff on the aggregate).
        result = []
        for key, (_counts, total, n) in sorted(self._series.items()):
            result.append((key + (("__stat__", "count"),), float(n)))
            result.append((key + (("__stat__", "sum"),), total))
        return result

    def expose(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        for key, (counts, total, n) in sorted(self._series.items()):
            running = 0
            for bound, bucket in zip(self.bounds, counts):
                running += bucket
                items = key + (("le", _render(bound)),)
                lines.append(
                    f"{self.name}_bucket{_format_labels(items)} {running}"
                )
            items = key + (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_format_labels(items)} {n}")
            lines.append(
                f"{self.name}_sum{_format_labels(key)} {_render(total)}"
            )
            lines.append(f"{self.name}_count{_format_labels(key)} {n}")
        return lines


class MetricsSnapshot:
    """Immutable point-in-time view of a registry, diffable and JSON-able."""

    def __init__(self, data: Dict[str, Dict[str, Any]]):
        self._data = data

    @property
    def metrics(self) -> Dict[str, Dict[str, Any]]:
        """The raw ``{metric name: {type, help, samples}}`` mapping."""
        return self._data

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON view (``schema_version`` + metrics)."""
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "metrics": self._data,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        """Rebuild a snapshot from its :meth:`to_dict` encoding."""
        return cls(dict(data.get("metrics", {})))

    def flatten(self) -> Dict[str, float]:
        """Return ``{"name{a=\"b\"}": value}`` over every sample."""
        flat: Dict[str, float] = {}
        for name, info in self._data.items():
            for sample in info["samples"]:
                items = tuple(sorted(sample["labels"].items()))
                flat[name + _format_labels(items)] = sample["value"]
        return flat

    def diff(self, other: "MetricsSnapshot") -> List[Dict[str, Any]]:
        """Return the sample-level changes from ``self`` to ``other``.

        Each entry has ``key`` (flattened sample name), ``before`` and
        ``after`` (None when the sample only exists on one side), and
        ``delta`` (when both sides are present).
        """
        before = self.flatten()
        after = other.flatten()
        changes: List[Dict[str, Any]] = []
        for key in sorted(set(before) | set(after)):
            a, b = before.get(key), after.get(key)
            if a == b:
                continue
            entry: Dict[str, Any] = {"key": key, "before": a, "after": b}
            if a is not None and b is not None:
                entry["delta"] = b - a
            changes.append(entry)
        return changes


class MetricsRegistry:
    """A named collection of metrics with unified export surfaces."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def _register(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.type}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Register (or fetch) the named :class:`Counter`."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Register (or fetch) the named :class:`Gauge`."""
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Register (or fetch) the named :class:`Histogram`."""
        return self._register(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    # Export surfaces.
    # ------------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Return the registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self:
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_jsonl(self) -> str:
        """Return one JSON object per sample (JSON Lines)."""
        lines = []
        for metric in self:
            for items, value in metric.samples():
                lines.append(
                    json.dumps(
                        {
                            "name": metric.name,
                            "type": metric.type,
                            "labels": dict(items),
                            "value": value,
                        },
                        sort_keys=True,
                    )
                )
        return "\n".join(lines)

    def snapshot(self) -> MetricsSnapshot:
        """Return an immutable :class:`MetricsSnapshot` of every sample."""
        data: Dict[str, Dict[str, Any]] = {}
        for metric in self:
            data[metric.name] = {
                "type": metric.type,
                "help": metric.help,
                "samples": [
                    {"labels": dict(items), "value": value}
                    for items, value in metric.samples()
                ],
            }
        return MetricsSnapshot(data)


# ----------------------------------------------------------------------
# Collectors: map the repository's existing stats objects into metrics.
# ----------------------------------------------------------------------

#: SimulationStats counter -> (metric name, help).
_SIM_COUNTERS = {
    "cycles": ("repro_sim_cycles_total", "Simulated cycles"),
    "instructions": ("repro_sim_instructions_total", "Committed instructions"),
    "threads_committed": ("repro_sim_threads_committed_total",
                          "Threads retired in program order"),
    "spawns": ("repro_sim_spawns_total", "Successful thread spawns"),
    "control_misspeculations": ("repro_sim_spawn_ghosts_total",
                                "Spawns whose CQIP was never reached"),
    "spawns_denied_no_tu": ("repro_sim_spawns_denied_total",
                            "Spawns denied for lack of a free thread unit"),
    "spawns_skipped_existing": ("repro_sim_spawns_skipped_total",
                                "Spawns skipped (successor already started)"),
    "spawns_rejected_order": ("repro_sim_spawns_rejected_order_total",
                              "Spawns rejected by the ordering check"),
    "pairs_removed_alone": ("repro_sim_pairs_removed_alone_total",
                            "Pairs removed by the alone-cycles policy"),
    "pairs_removed_min_size": ("repro_sim_pairs_removed_min_size_total",
                               "Pairs removed by the min-thread-size policy"),
    "value_predictions": ("repro_sim_value_predictions_total",
                          "Live-in value predictions made"),
    "value_hits": ("repro_sim_value_hits_total",
                   "Live-in value predictions that were correct"),
    "branch_predictions": ("repro_sim_branch_predictions_total",
                           "Conditional-branch predictions made"),
    "branch_hits": ("repro_sim_branch_hits_total",
                    "Conditional-branch predictions that were correct"),
    "cache_accesses": ("repro_sim_cache_accesses_total", "L1 accesses"),
    "cache_misses": ("repro_sim_cache_misses_total", "L1 misses"),
    "reassign_fallbacks": ("repro_sim_reassign_fallbacks_total",
                           "Spawns served by a non-best CQIP"),
    "faults_injected": ("repro_sim_faults_injected_total",
                        "Fault events that fired"),
    "tu_blackouts": ("repro_sim_tu_blackouts_total",
                     "Blackout windows a running thread hit"),
    "threads_degraded": ("repro_sim_threads_degraded_total",
                         "Threads squashed and gracefully degraded"),
    "spawns_dropped": ("repro_sim_spawns_dropped_total",
                       "Spawn requests abandoned after retries"),
    "spawns_retried": ("repro_sim_spawn_retries_total",
                       "Retry attempts of eventually-granted spawns"),
    "liveins_corrupted": ("repro_sim_liveins_corrupted_total",
                          "Predicted live-ins corrupted in flight"),
    "forward_delays": ("repro_sim_forward_delays_total",
                       "Cross-thread forwards with an injected delay"),
    "fault_cycles_lost": ("repro_sim_fault_cycles_lost_total",
                          "Cycles lost to squashed work and dark units"),
}

#: SimulationStats derived rate -> (metric name, help).
_SIM_GAUGES = {
    "ipc": ("repro_sim_ipc", "Instructions per cycle"),
    "avg_active_threads": ("repro_sim_active_threads_avg",
                           "Time-weighted average active threads (Fig. 4)"),
    "value_hit_rate": ("repro_sim_value_hit_rate",
                       "Live-in value-prediction hit rate (Fig. 9a)"),
    "branch_hit_rate": ("repro_sim_branch_hit_rate",
                        "Branch-prediction hit rate"),
    "cache_miss_rate": ("repro_sim_cache_miss_rate", "L1 miss rate"),
}


def sim_metrics(stats, registry: Optional[MetricsRegistry] = None,
                **labels: Any) -> MetricsRegistry:
    """Record a :class:`~repro.cmt.stats.SimulationStats` into a registry.

    Args:
        stats: The run's statistics.
        registry: Registry to record into (a fresh one when None).
        **labels: Run-identity labels stamped on every sample
            (e.g. ``workload="gcc"``, ``policy="profile"``).

    Returns:
        The registry, for chaining.
    """
    registry = registry or MetricsRegistry()
    for attr, (name, help_text) in _SIM_COUNTERS.items():
        registry.counter(name, help_text).inc(getattr(stats, attr), **labels)
    for attr, (name, help_text) in _SIM_GAUGES.items():
        registry.gauge(name, help_text).set(getattr(stats, attr), **labels)
    sizes = registry.histogram(
        "repro_sim_thread_size_insts",
        "Committed-thread sizes in instructions (Fig. 7)",
    )
    for size in stats.thread_sizes:
        sizes.observe(size, **labels)
    return registry


def cache_metrics(cache_stats, registry: Optional[MetricsRegistry] = None,
                  **labels: Any) -> MetricsRegistry:
    """Record artifact-cache counters into a registry.

    Args:
        cache_stats: A :class:`~repro.cache.CacheStats` or a plain dict
            with ``memory_hits``/``disk_hits``/``misses``/``puts`` keys
            (the engine's aggregated ``cache_events`` shape).
        registry: Registry to record into (a fresh one when None).
        **labels: Labels stamped on every sample.

    Returns:
        The registry, for chaining.
    """
    registry = registry or MetricsRegistry()
    if not isinstance(cache_stats, dict):
        cache_stats = cache_stats.to_dict()
    names = {
        "memory_hits": ("repro_cache_memory_hits_total",
                        "Artifact-cache lookups served from memory"),
        "disk_hits": ("repro_cache_disk_hits_total",
                      "Artifact-cache lookups served from disk"),
        "misses": ("repro_cache_misses_total", "Artifact-cache misses"),
        "puts": ("repro_cache_puts_total", "Artifacts written to the cache"),
    }
    for key, (name, help_text) in names.items():
        registry.counter(name, help_text).inc(
            int(cache_stats.get(key, 0)), **labels
        )
    hits = int(cache_stats.get("memory_hits", 0)) + int(
        cache_stats.get("disk_hits", 0)
    )
    total = hits + int(cache_stats.get("misses", 0))
    registry.gauge(
        "repro_cache_hit_rate", "Artifact-cache hit rate"
    ).set(hits / total if total else 0.0, **labels)
    return registry


def events_metrics(events: Iterable, registry: Optional[MetricsRegistry] = None,
                   **labels: Any) -> MetricsRegistry:
    """Record an event stream's per-kind totals into a registry.

    Args:
        events: Iterable of :class:`~repro.obs.events.SimEvent`.
        registry: Registry to record into (a fresh one when None).
        **labels: Labels stamped on every sample (``kind`` is added).

    Returns:
        The registry, for chaining.
    """
    registry = registry or MetricsRegistry()
    counter = registry.counter(
        "repro_events_total", "Structured simulation events by kind"
    )
    for event in events:
        counter.inc(1, kind=event.kind, **labels)
    return registry


def outcome_metrics(outcomes: Mapping[str, Any],
                    registry: Optional[MetricsRegistry] = None,
                    **labels: Any) -> MetricsRegistry:
    """Record hardened-runner outcomes (engine/sweep telemetry).

    Args:
        outcomes: Mapping of run key to
            :class:`~repro.experiments.framework.ResilientOutcome`.
        registry: Registry to record into (a fresh one when None).
        **labels: Labels stamped on every sample.

    Returns:
        The registry, for chaining.
    """
    registry = registry or MetricsRegistry()
    points = registry.counter(
        "repro_engine_points_total", "Sweep points by final status"
    )
    retries = registry.counter(
        "repro_engine_retry_attempts_total",
        "Extra attempts beyond the first, over all points",
    )
    seconds = registry.histogram(
        "repro_engine_point_seconds",
        "Per-point wall time in seconds",
        buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600),
    )
    for outcome in outcomes.values():
        status = "ok" if outcome.ok else "failed"
        points.inc(1, status=status, **labels)
        if outcome.attempts > 1:
            retries.inc(outcome.attempts - 1, **labels)
        seconds.observe(getattr(outcome, "seconds", 0.0), **labels)
    return registry
