"""Per-run and per-sweep manifests: what ran, with what, how long.

A manifest is the provenance record of one experiment point (or one
sweep): the canonical config digest, the seed, cache statistics, the
fault plan (when one applied), and wall-clock durations.  Manifests are
plain JSON files under a telemetry directory — ``repro exp --telemetry
DIR`` and ``repro faults --telemetry DIR`` write one per point plus one
sweep-level rollup, so a finished run can always answer "what exactly
produced this number?" without re-running anything.

Config digests reuse the artifact cache's canonical JSON encoding
(:func:`repro.cache.canonical_key_fields`): two points with the same
digest were produced by byte-identical key fields, which is the same
identity the cache itself uses.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.cache import canonical_key_fields

#: Version of the manifest JSON shape (bump on breaking changes).
MANIFEST_SCHEMA_VERSION = 1


def config_digest(fields: Dict[str, Any]) -> str:
    """Return the blake2b digest of a canonical config encoding.

    Args:
        fields: Every knob that identifies the run (workload, scale,
            policy, predictor, processor overrides, fault plan, ...).

    Returns:
        A 32-hex-character digest; equal digests mean equal canonical
        configs.
    """
    payload = canonical_key_fields(fields)
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class RunManifest:
    """Provenance record of one run (experiment point or campaign cell).

    Attributes:
        name: Human-readable point identity (e.g. ``fig8/gcc/tus=8``).
        config: The canonical key fields of the run.
        digest: blake2b digest of ``config`` (filled automatically).
        seed: The run's RNG seed, when one applies.
        seconds: Wall-clock duration of the run.
        attempts: Hardened-runner attempts consumed (1 = first try).
        ok: Whether the run ultimately succeeded.
        cache: Artifact-cache counters observed by the run.
        fault_plan: Fault-campaign parameters, when faults were injected.
        extra: Free-form additional fields (summary counters, notes).
    """

    name: str
    config: Dict[str, Any] = field(default_factory=dict)
    digest: str = ""
    seed: Optional[int] = None
    seconds: float = 0.0
    attempts: int = 1
    ok: bool = True
    cache: Dict[str, Any] = field(default_factory=dict)
    fault_plan: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = config_digest(self.config)

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON view (``schema_version`` included)."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "name": self.name,
            "config": self.config,
            "digest": self.digest,
            "seed": self.seed,
            "seconds": round(self.seconds, 6),
            "attempts": self.attempts,
            "ok": self.ok,
            "cache": self.cache,
            "fault_plan": self.fault_plan,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its :meth:`to_dict` encoding."""
        return cls(
            name=data["name"],
            config=dict(data.get("config", {})),
            digest=data.get("digest", ""),
            seed=data.get("seed"),
            seconds=float(data.get("seconds", 0.0)),
            attempts=int(data.get("attempts", 1)),
            ok=bool(data.get("ok", True)),
            cache=dict(data.get("cache", {})),
            fault_plan=data.get("fault_plan"),
            extra=dict(data.get("extra", {})),
        )

    def write(self, directory: Union[str, Path]) -> Path:
        """Write the manifest as ``<safe-name>.manifest.json`` under
        ``directory`` (created on demand); atomic replace.

        Returns:
            The manifest's path.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{_safe_name(self.name)}.manifest.json"
        _atomic_write_json(path, self.to_dict())
        return path


def _safe_name(name: str) -> str:
    """Flatten a point name into a filesystem-safe stem."""
    return "".join(c if c.isalnum() or c in "-._" else "_" for c in name)


def _atomic_write_json(path: Path, data: Dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def write_sweep_manifest(
    directory: Union[str, Path],
    name: str,
    points: int,
    config: Dict[str, Any],
    seconds: float,
    cache: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the sweep-level rollup manifest (``sweep.manifest.json``).

    Args:
        directory: Telemetry directory (created on demand).
        name: Sweep identity (e.g. ``fig8`` or ``faults/campaign``).
        points: Number of points the sweep covered.
        config: Sweep-level key fields (figure, jobs, scale, ...).
        seconds: Total sweep wall time.
        cache: Aggregated cache counters across workers, if any.
        extra: Free-form additional fields.

    Returns:
        The manifest's path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "name": name,
        "points": points,
        "config": config,
        "digest": config_digest(config),
        "seconds": round(seconds, 6),
        "cache": cache or {},
        "extra": extra or {},
    }
    path = directory / "sweep.manifest.json"
    _atomic_write_json(path, payload)
    return path


def find_telemetry(root: Union[str, Path] = ".",
                   max_depth: int = 4) -> List[Path]:
    """Discover telemetry directories under ``root``.

    A telemetry directory is any directory holding at least one
    ``*.manifest.json`` — the layout every ``--telemetry`` flag
    (``repro exp``, ``repro faults``, ``repro serve``, ``repro trace``,
    ``repro metrics dump``) writes.  This is the shared discovery the
    dashboard's manifest browser and the CLIs use, so "where did my
    telemetry go?" has one answer everywhere.

    Args:
        root: Directory to search from (``root`` itself counts).
        max_depth: How many directory levels below ``root`` to descend
            (hidden and ``__pycache__`` directories are skipped).

    Returns:
        Sorted list of telemetry directory paths (empty when ``root``
        is not a directory or holds no manifests).
    """
    root = Path(root)
    found: List[Path] = []
    if not root.is_dir():
        return found

    def _walk(directory: Path, depth: int) -> None:
        try:
            entries = sorted(directory.iterdir())
        except OSError:
            return
        if any(
            entry.name.endswith(".manifest.json") and entry.is_file()
            for entry in entries
        ):
            found.append(directory)
        if depth >= max_depth:
            return
        for entry in entries:
            if entry.name.startswith(".") or entry.name == "__pycache__":
                continue
            if entry.is_dir():
                _walk(entry, depth + 1)

    _walk(root, 0)
    return found


def read_manifests(directory: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Load every ``*.manifest.json`` under ``directory``.

    Returns:
        ``{file stem: parsed JSON}`` (the sweep rollup appears under
        ``sweep.manifest``).
    """
    directory = Path(directory)
    result: Dict[str, Dict[str, Any]] = {}
    if not directory.is_dir():
        return result
    for path in sorted(directory.glob("*.manifest.json")):
        result[path.name[: -len(".json")]] = json.loads(path.read_text())
    return result
