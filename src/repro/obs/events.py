"""Structured simulation events: typed emission, JSONL export, replay.

The simulator's end-of-run :class:`~repro.cmt.stats.SimulationStats`
aggregates *how much* happened; the event stream records *when and to
whom*.  Every behavioural quantity the paper plots — active-thread
occupancy (Fig. 4), thread-size distributions (Fig. 7), squash/removal
dynamics (Figs. 5/10) — can be reconstructed from the stream, which is
what :func:`replay_counters` does (and what the round-trip test in
``tests/test_obs_events.py`` enforces against the aggregate counters).

Tracing follows a null-object design: the processor holds a tracer
object unconditionally, and :data:`NULL_TRACER` (``enabled = False``,
no-op ``emit``) stands in when tracing is off.  Emission sites in the
hot loop are guarded by one hoisted boolean, so a run with tracing
disabled executes the same instruction-for-instruction path as before —
the equal-stats and BENCH_simcore gates hold unchanged.

Event taxonomy (``kind`` strings, dotted ``<subsystem>.<what>``):

================== ====================================================
kind               emitted when
================== ====================================================
``thread.spawn``   a spawn succeeds (parent forks a new thread)
``thread.start``   a thread begins fetching (root thread included)
``thread.squash``  a thread's speculative work is discarded
``thread.restart`` a squashed thread restarts on another unit
``thread.commit``  a thread retires in program order
``spawn.retry``    a spawn request needed interconnect retries
``spawn.drop``     a spawn request exhausted its retry budget
``spawn.ghost``    control misspeculation — the CQIP is never reached
``tu.blackout``    a running thread hit a unit blackout window
``pair.remove``    a spawning pair was removed by a dynamic policy
``pair.revive``    a removed pair was given another chance
``predict.hit``    a live-in value prediction (or copy) was correct
``predict.miss``   a live-in value prediction was wrong
``predict.sync``   a live-in was not predicted (synchronise)
``livein.corrupt`` an injected fault corrupted a predicted live-in
``forward.delay``  an injected fault delayed a register forward
``cache.install``  an L1 miss installed a cache line
================== ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

EV_THREAD_SPAWN = "thread.spawn"
EV_THREAD_START = "thread.start"
EV_THREAD_SQUASH = "thread.squash"
EV_THREAD_RESTART = "thread.restart"
EV_THREAD_COMMIT = "thread.commit"
EV_SPAWN_RETRY = "spawn.retry"
EV_SPAWN_DROP = "spawn.drop"
EV_SPAWN_GHOST = "spawn.ghost"
EV_TU_BLACKOUT = "tu.blackout"
EV_PAIR_REMOVE = "pair.remove"
EV_PAIR_REVIVE = "pair.revive"
EV_PREDICT_HIT = "predict.hit"
EV_PREDICT_MISS = "predict.miss"
EV_PREDICT_SYNC = "predict.sync"
EV_LIVEIN_CORRUPT = "livein.corrupt"
EV_FORWARD_DELAY = "forward.delay"
EV_CACHE_INSTALL = "cache.install"

#: Every event kind the simulator can emit.
EVENT_KINDS = frozenset(
    {
        EV_THREAD_SPAWN,
        EV_THREAD_START,
        EV_THREAD_SQUASH,
        EV_THREAD_RESTART,
        EV_THREAD_COMMIT,
        EV_SPAWN_RETRY,
        EV_SPAWN_DROP,
        EV_SPAWN_GHOST,
        EV_TU_BLACKOUT,
        EV_PAIR_REMOVE,
        EV_PAIR_REVIVE,
        EV_PREDICT_HIT,
        EV_PREDICT_MISS,
        EV_PREDICT_SYNC,
        EV_LIVEIN_CORRUPT,
        EV_FORWARD_DELAY,
        EV_CACHE_INSTALL,
    }
)

#: High-volume kinds (one event per live-in or per L1 miss).  Timeline
#: export and the default CLI trace skip them; pass an explicit kind
#: filter to keep them.
BULK_KINDS = frozenset(
    {EV_PREDICT_HIT, EV_PREDICT_MISS, EV_PREDICT_SYNC, EV_CACHE_INSTALL}
)


@dataclass(frozen=True)
class SimEvent:
    """One structured simulation event.

    ``cycle`` is simulated time (``-1`` when the emitting site has no
    cycle in scope, e.g. injector-internal decisions); ``tu`` and
    ``thread`` are ``-1`` when not applicable.
    """

    kind: str
    cycle: int
    tu: int = -1
    thread: int = -1
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Return the flat JSON view of the event."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "tu": self.tu,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class NullTracer:
    """The disabled tracer: ``emit`` is a no-op and ``enabled`` is False.

    The simulator keeps a tracer reference unconditionally; holding this
    null object (rather than ``None`` plus scattered conditionals) keeps
    every cold emission site a plain method call while the hot loop
    skips emission entirely via one hoisted ``enabled`` check.
    """

    enabled = False
    events: List[SimEvent] = []  # always empty, shared read-only view

    def emit(self, kind: str, cycle: int, tu: int = -1, thread: int = -1,
             **attrs: Any) -> None:
        """Discard the event (disabled-tracing fast path)."""


#: Shared disabled tracer (stateless, safe to reuse across simulations).
NULL_TRACER = NullTracer()


class EventTracer:
    """Collects :class:`SimEvent` records from one simulation.

    Args:
        kinds: Optional subset of :data:`EVENT_KINDS` to record; events
            of other kinds are dropped at emission time.  ``None``
            records everything.
    """

    enabled = True

    def __init__(self, kinds: Optional[Iterable[str]] = None):
        if kinds is not None:
            kinds = frozenset(kinds)
            unknown = kinds - EVENT_KINDS
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        self.kinds = kinds
        self.events: List[SimEvent] = []

    def emit(self, kind: str, cycle: int, tu: int = -1, thread: int = -1,
             **attrs: Any) -> None:
        """Record one event (dropped when filtered out by ``kinds``)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.events.append(SimEvent(kind, cycle, tu, thread, attrs))

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> Dict[str, int]:
        """Return ``{kind: occurrences}`` over the recorded stream."""
        result: Dict[str, int] = {}
        for event in self.events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result

    def select(self, *kinds: str) -> List[SimEvent]:
        """Return the recorded events of the given kinds, in order."""
        wanted = frozenset(kinds)
        return [e for e in self.events if e.kind in wanted]

    def to_jsonl(self) -> str:
        """Serialise the stream as JSON Lines (one event per line)."""
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True) for e in self.events
        )


def events_from_jsonl(text: str) -> List[SimEvent]:
    """Parse a :meth:`EventTracer.to_jsonl` stream back into events."""
    events: List[SimEvent] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        events.append(
            SimEvent(
                kind=data["kind"],
                cycle=int(data["cycle"]),
                tu=int(data.get("tu", -1)),
                thread=int(data.get("thread", -1)),
                attrs=data.get("attrs", {}),
            )
        )
    return events


def replay_counters(events: Iterable[SimEvent]) -> Dict[str, int]:
    """Reconstruct the headline simulation counters from an event stream.

    The returned keys mirror their :class:`~repro.cmt.stats.SimulationStats`
    namesakes; the round-trip test asserts exact equality for a traced
    run, which is what makes the stream trustworthy as a debugging
    artifact: if the events and the counters ever disagree, one of them
    is lying.
    """
    spawned = committed = squashed = dropped = 0
    retried = blackouts = ghosts = corrupted = delays = 0
    predict_hits = predict_misses = 0
    for event in events:
        kind = event.kind
        if kind == EV_THREAD_SPAWN:
            spawned += 1
        elif kind == EV_THREAD_COMMIT:
            committed += 1
        elif kind == EV_THREAD_SQUASH:
            squashed += 1
        elif kind == EV_SPAWN_DROP:
            dropped += 1
        elif kind == EV_SPAWN_RETRY:
            retried += int(event.attrs.get("retries", 1))
        elif kind == EV_TU_BLACKOUT:
            blackouts += 1
        elif kind == EV_SPAWN_GHOST:
            ghosts += 1
        elif kind == EV_LIVEIN_CORRUPT:
            corrupted += 1
        elif kind == EV_FORWARD_DELAY:
            delays += 1
        elif kind == EV_PREDICT_HIT:
            predict_hits += 1
        elif kind == EV_PREDICT_MISS:
            predict_misses += 1
    return {
        "spawns": spawned,
        "threads_committed": committed,
        "threads_degraded": squashed,
        "spawns_dropped": dropped,
        "spawns_retried": retried,
        "tu_blackouts": blackouts,
        "control_misspeculations": ghosts,
        "liveins_corrupted": corrupted,
        "forward_delays": delays,
        "predict_hits": predict_hits,
        "predict_misses": predict_misses,
    }
