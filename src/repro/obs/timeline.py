"""Timeline data model and Chrome trace-event / Perfetto export.

The simulator collects per-thread :class:`~repro.cmt.stats.ThreadRecord`
lifetimes when ``ProcessorConfig.collect_timeline`` is on.  This module
lifts those records (plus, optionally, a structured event stream) into a
:class:`TimelineModel` that both the ASCII Gantt renderer
(:func:`repro.cmt.gantt.render_gantt`) and the Chrome trace-event JSON
exporter consume, so the terminal view and the Perfetto view are two
projections of one data structure.

The Chrome trace-event format reference:
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
We emit ``"X"`` (complete) events for thread execute/wait slices, ``"M"``
(metadata) events naming processes/threads, and ``"i"`` (instant) events
for point occurrences such as squashes and spawn drops.  Cycles map 1:1
to microseconds (``ts``/``dur`` are expressed in us), which keeps
Perfetto's time axis readable without a scale factor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.events import BULK_KINDS, SimEvent

#: Version of the emitted Chrome-trace shape, stamped into the trace's
#: ``metadata`` object.  Version 1 (implicit) predates the stamp;
#: version 2 added ``metadata.schema_version`` itself.  Bump on any
#: change a consumer (the dashboard, Perfetto tooling, the CI smoke
#: step) could trip over.
CHROME_TRACE_SCHEMA_VERSION = 2

#: Chrome trace-event phase codes used by the exporter.
_PH_COMPLETE = "X"
_PH_METADATA = "M"
_PH_INSTANT = "i"


@dataclass(frozen=True)
class Lifetime:
    """One thread's occupancy of a thread unit.

    ``start``..``finish`` is the execute slice; ``finish``..``commit`` is
    the wait-for-in-order-commit slice (the imbalance the paper's removal
    policies target).
    """

    tu: int
    start: int
    finish: int
    commit: int
    size: int
    pair: Optional[Sequence[int]] = None
    livein_hits: int = 0
    livein_misses: int = 0

    @property
    def wait(self) -> int:
        """Cycles spent finished but waiting for the commit slot."""
        return self.commit - self.finish


class TimelineModel:
    """Per-TU thread lifetimes plus optional instant markers.

    Raises:
        ValueError: if constructed with no lifetimes — the upstream run
            forgot ``collect_timeline=True`` (mirrors the historical
            :func:`render_gantt` behaviour).
    """

    def __init__(self, lifetimes: Sequence[Lifetime], num_tus: int,
                 markers: Sequence[SimEvent] = (),
                 meta: Optional[Dict[str, Any]] = None):
        if not lifetimes:
            raise ValueError(
                "no timeline collected; simulate with collect_timeline=True"
            )
        self.lifetimes = list(lifetimes)
        self.num_tus = num_tus
        self.markers = [m for m in markers if m.kind not in BULK_KINDS]
        self.meta = dict(meta or {})

    @classmethod
    def from_stats(cls, stats, num_tus: int,
                   events: Iterable[SimEvent] = (),
                   meta: Optional[Dict[str, Any]] = None) -> "TimelineModel":
        """Build the model from a timeline-enabled run's statistics.

        Args:
            stats: A :class:`~repro.cmt.stats.SimulationStats` whose
                ``timeline`` is populated.
            num_tus: Number of thread units in the simulated processor.
            events: Optional structured event stream; non-bulk events
                become instant markers on the exported trace.
            meta: Run-identity metadata recorded on the model (workload,
                policy, predictor, ...).
        """
        lifetimes = [
            Lifetime(
                tu=rec.tu,
                start=rec.start_cycle,
                finish=rec.finish_cycle,
                commit=rec.commit_cycle,
                size=rec.size,
                pair=rec.pair,
                livein_hits=rec.livein_hits,
                livein_misses=rec.livein_misses,
            )
            for rec in stats.timeline
        ]
        return cls(lifetimes, num_tus, markers=list(events), meta=meta)

    @property
    def total_cycles(self) -> int:
        """Last commit cycle across every lifetime (at least 1)."""
        return max(l.commit for l in self.lifetimes) or 1

    def lanes(self) -> Dict[int, List[Lifetime]]:
        """Return lifetimes grouped by thread unit, sorted by start."""
        result: Dict[int, List[Lifetime]] = {
            tu: [] for tu in range(self.num_tus)
        }
        for lifetime in self.lifetimes:
            result.setdefault(lifetime.tu, []).append(lifetime)
        for lane in result.values():
            lane.sort(key=lambda l: (l.start, l.commit))
        return result

    def commit_waits(self) -> List[int]:
        """Per-thread commit-wait cycles, in timeline order."""
        return [l.wait for l in self.lifetimes]

    # ------------------------------------------------------------------
    # Chrome trace-event export.
    # ------------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """Return the timeline as a Chrome trace-event JSON object.

        Open the serialised file in https://ui.perfetto.dev (or
        ``chrome://tracing``): each thread unit is a track, execute and
        commit-wait slices nest on it, and squash/drop/blackout markers
        appear as instants.
        """
        events: List[Dict[str, Any]] = [
            {
                "ph": _PH_METADATA,
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": self.meta.get("workload", "simulation")},
            }
        ]
        for tu in range(self.num_tus):
            events.append(
                {
                    "ph": _PH_METADATA,
                    "pid": 1,
                    "tid": tu + 1,
                    "name": "thread_name",
                    "args": {"name": f"TU{tu:02d}"},
                }
            )
        for index, lifetime in enumerate(self.lifetimes):
            tid = lifetime.tu + 1
            args = {
                "thread": index,
                "size_insts": lifetime.size,
                "pair": list(lifetime.pair) if lifetime.pair else None,
                "livein_hits": lifetime.livein_hits,
                "livein_misses": lifetime.livein_misses,
            }
            label = (
                f"T{index} sp={lifetime.pair[0]:#x}"
                if lifetime.pair
                else f"T{index} (root)"
            )
            events.append(
                {
                    "ph": _PH_COMPLETE,
                    "pid": 1,
                    "tid": tid,
                    "name": label,
                    "cat": "execute",
                    "ts": lifetime.start,
                    "dur": max(lifetime.finish - lifetime.start, 1),
                    "args": args,
                }
            )
            if lifetime.commit > lifetime.finish:
                events.append(
                    {
                        "ph": _PH_COMPLETE,
                        "pid": 1,
                        "tid": tid,
                        "name": f"T{index} commit-wait",
                        "cat": "commit_wait",
                        "ts": lifetime.finish,
                        "dur": lifetime.commit - lifetime.finish,
                        "args": {"thread": index},
                    }
                )
        for marker in self.markers:
            events.append(
                {
                    "ph": _PH_INSTANT,
                    "pid": 1,
                    "tid": (marker.tu + 1) if marker.tu >= 0 else 0,
                    "name": marker.kind,
                    "cat": marker.kind.split(".", 1)[0],
                    "ts": max(marker.cycle, 0),
                    "s": "t" if marker.tu >= 0 else "p",
                    "args": dict(marker.attrs),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(self.meta),
            "metadata": {"schema_version": CHROME_TRACE_SCHEMA_VERSION},
        }

    def chrome_trace_json(self) -> str:
        """Serialise :meth:`chrome_trace` (stable key order)."""
        return json.dumps(self.chrome_trace(), sort_keys=True)


def validate_chrome_trace(
    trace: Dict[str, Any],
    expected_version: int = CHROME_TRACE_SCHEMA_VERSION,
) -> List[str]:
    """Check a trace object against the Chrome trace-event schema.

    Returns a list of problems (empty when the trace is valid).  This is
    the schema check the CLI smoke step, the dashboard and the tests
    share — it covers the subset of the format we emit: a
    ``traceEvents`` array whose entries carry ``ph``/``pid``/``tid``/
    ``name``, with ``ts``+``dur`` on complete events and a scope flag on
    instants.  The trace's ``metadata.schema_version`` must equal
    ``expected_version``; a trace with no stamp at all is treated as
    version 1 (pre-stamp exports) and flagged unless the caller passes
    ``expected_version=1``.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    metadata = trace.get("metadata")
    if metadata is not None and not isinstance(metadata, dict):
        problems.append("metadata is not an object")
        metadata = None
    version = (metadata or {}).get("schema_version", 1)
    if version != expected_version:
        problems.append(
            f"trace schema_version {version!r} != expected "
            f"{expected_version}"
            + ("" if metadata and "schema_version" in metadata
               else " (no metadata.schema_version stamp; assuming 1)")
        )
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in (_PH_COMPLETE, _PH_METADATA, _PH_INSTANT, "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} missing or not an int")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name missing or not a string")
        if ph == _PH_COMPLETE:
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: complete event needs ts >= 0")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
        elif ph == _PH_INSTANT:
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: instant event needs ts")
            if event.get("s") not in ("g", "p", "t", None):
                problems.append(f"{where}: bad instant scope {event.get('s')!r}")
        elif ph == _PH_METADATA:
            if event.get("name") not in (
                "process_name", "thread_name", "process_labels",
                "process_sort_index", "thread_sort_index",
            ):
                problems.append(
                    f"{where}: unknown metadata name {event.get('name')!r}"
                )
    return problems
