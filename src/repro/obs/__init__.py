"""Observability layer: structured events, metrics, timelines, manifests.

Four cooperating pieces (see ``docs/observability.md``):

- :mod:`repro.obs.events` — typed simulation events with a null-object
  disabled path (:data:`NULL_TRACER`), JSONL round-trip, and
  :func:`replay_counters` for stream-vs-aggregate cross-checks;
- :mod:`repro.obs.registry` — labelled counters/gauges/histograms with
  snapshot/diff semantics, Prometheus text exposition and JSONL export,
  plus collectors bridging the repository's existing stats objects;
- :mod:`repro.obs.timeline` — the per-TU thread-lifetime data model
  shared by the ASCII Gantt view and the Chrome trace-event / Perfetto
  exporter;
- :mod:`repro.obs.manifest` — per-run and per-sweep provenance records
  (config digest, seed, cache stats, fault plan, durations).
"""

from repro.obs.events import (
    BULK_KINDS,
    EVENT_KINDS,
    EventTracer,
    NULL_TRACER,
    NullTracer,
    SimEvent,
    events_from_jsonl,
    replay_counters,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_digest,
    find_telemetry,
    read_manifests,
    write_sweep_manifest,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SNAPSHOT_SCHEMA_VERSION,
    cache_metrics,
    events_metrics,
    outcome_metrics,
    sim_metrics,
)
from repro.obs.timeline import (
    CHROME_TRACE_SCHEMA_VERSION,
    Lifetime,
    TimelineModel,
    validate_chrome_trace,
)

__all__ = [
    "BULK_KINDS",
    "EVENT_KINDS",
    "EventTracer",
    "NULL_TRACER",
    "NullTracer",
    "SimEvent",
    "events_from_jsonl",
    "replay_counters",
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "config_digest",
    "find_telemetry",
    "read_manifests",
    "write_sweep_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SNAPSHOT_SCHEMA_VERSION",
    "cache_metrics",
    "events_metrics",
    "outcome_metrics",
    "sim_metrics",
    "CHROME_TRACE_SCHEMA_VERSION",
    "Lifetime",
    "TimelineModel",
    "validate_chrome_trace",
]
