"""Fault-model dataclasses and the :class:`FaultPlan` that groups them.

Every model carries a ``rate`` in [0, 1]; a plan whose rates are all zero
is inert — the injector never fires and the simulation is cycle-for-cycle
identical to running with no injector at all (tested).  Plans serialise
to/from JSON so a campaign checkpoint fully describes its runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} rate must be in [0, 1], got {rate!r}")


@dataclass(frozen=True)
class TUBlackoutFault:
    """Transient thread-unit blackouts.

    Each thread unit's timeline is divided into ``slot_cycles``-cycle
    slots; with probability ``rate`` a slot starts a blackout window of
    ``duration`` cycles somewhere inside it.  Windows are pre-drawn from
    the plan seed over ``horizon`` cycles, so the schedule is a pure
    function of (seed, unit id).
    """

    rate: float = 0.0
    duration: int = 150
    slot_cycles: int = 1000
    horizon: int = 2_000_000

    def __post_init__(self) -> None:
        _check_rate("blackout", self.rate)
        if self.duration < 1 or self.slot_cycles < 1 or self.horizon < 1:
            raise ValueError("blackout duration/slot/horizon must be >= 1")


@dataclass(frozen=True)
class SpawnDropFault:
    """Spawn-request drops with bounded retry and exponential backoff.

    Each attempt of a spawn request is dropped with probability ``rate``;
    the requester retries up to ``max_retries`` times, waiting
    ``backoff * 2**attempt`` cycles before retry ``attempt``.  A request
    whose every attempt is dropped is abandoned.
    """

    rate: float = 0.0
    max_retries: int = 3
    backoff: int = 8

    def __post_init__(self) -> None:
        _check_rate("spawn-drop", self.rate)
        if self.max_retries < 0 or self.backoff < 0:
            raise ValueError("max_retries/backoff cannot be negative")


@dataclass(frozen=True)
class LiveinCorruptionFault:
    """Corruption of predicted live-in values.

    With probability ``rate`` a live-in the value predictor delivered as
    correct is corrupted in flight; the consuming thread detects the
    mismatch and takes the synchronise+recovery (miss) path.
    """

    rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("live-in corruption", self.rate)


@dataclass(frozen=True)
class ForwardDelayFault:
    """Delays on inter-thread register forwarding.

    With probability ``rate`` a cross-thread register forward takes
    ``delay`` extra cycles on top of the configured forward latency.
    The draw is keyed per (consumer thread, register, producer), so
    repeated evaluations of the same forward see the same delay.
    """

    rate: float = 0.0
    delay: int = 16

    def __post_init__(self) -> None:
        _check_rate("forward-delay", self.rate)
        if self.delay < 0:
            raise ValueError("forward delay cannot be negative")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible collection of fault models."""

    seed: int = 0
    tu_blackout: TUBlackoutFault = field(default_factory=TUBlackoutFault)
    spawn_drop: SpawnDropFault = field(default_factory=SpawnDropFault)
    livein_corruption: LiveinCorruptionFault = field(
        default_factory=LiveinCorruptionFault
    )
    forward_delay: ForwardDelayFault = field(default_factory=ForwardDelayFault)

    @property
    def is_zero(self) -> bool:
        """True when no model can ever fire."""
        return (
            self.tu_blackout.rate == 0.0
            and self.spawn_drop.rate == 0.0
            and self.livein_corruption.rate == 0.0
            and self.forward_delay.rate == 0.0
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Return a plan with every model firing at the same ``rate``."""
        return cls(
            seed=seed,
            tu_blackout=TUBlackoutFault(rate=rate),
            spawn_drop=SpawnDropFault(rate=rate),
            livein_corruption=LiveinCorruptionFault(rate=rate),
            forward_delay=ForwardDelayFault(rate=rate),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """Return a copy of the plan reseeded with ``seed``."""
        return replace(self, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON view of the plan (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Return the plan encoded by a :meth:`to_dict` dictionary."""
        return cls(
            seed=int(data.get("seed", 0)),
            tu_blackout=TUBlackoutFault(**data.get("tu_blackout", {})),
            spawn_drop=SpawnDropFault(**data.get("spawn_drop", {})),
            livein_corruption=LiveinCorruptionFault(
                **data.get("livein_corruption", {})
            ),
            forward_delay=ForwardDelayFault(**data.get("forward_delay", {})),
        )
