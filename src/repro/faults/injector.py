"""Deterministic fault decisions for one simulation.

Two sources of randomness, both pure functions of the plan seed:

- blackout windows are pre-drawn per thread unit with ``random.Random``
  seeded by (plan seed, unit id);
- per-event decisions (spawn drops, live-in corruption, forward delays)
  are keyed hashes of (plan seed, event identity), so they do not depend
  on how many or in what order other events were drawn.  Re-evaluating
  the same event always yields the same answer.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Tuple

from repro.faults.models import FaultPlan
from repro.obs.events import EV_FORWARD_DELAY, NULL_TRACER


def _keyed_u01(seed: int, tag: str, keys: tuple) -> float:
    """Uniform [0, 1) draw keyed by (seed, tag, keys); stable across runs."""
    payload = repr((seed, tag, keys)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-event decisions.

    One injector serves one simulation: it owns per-run caches and fault
    counters (read back by the processor into ``SimulationStats``).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        # Hot-path guards: the processor checks these before hashing.
        self.blackout_rate = plan.tu_blackout.rate
        self.spawn_drop_rate = plan.spawn_drop.rate
        self.corrupt_rate = plan.livein_corruption.rate
        self.forward_rate = plan.forward_delay.rate
        #: Unique forwarding delays that fired (an event may be evaluated
        #: several times; the cache keeps the count and the delay stable).
        self.forward_delay_events = 0
        self._forward_cache: Dict[Tuple[int, int, int], int] = {}
        #: Structured-event sink (the processor installs its tracer).
        self.tracer = NULL_TRACER
        #: Lazily drawn blackout schedules, one entry per queried unit.
        self._windows: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Thread-unit blackouts.
    # ------------------------------------------------------------------

    def _draw_windows(self, tu_id: int) -> List[Tuple[int, int]]:
        model = self.plan.tu_blackout
        if model.rate == 0.0:
            return []
        rng = random.Random(f"{self.plan.seed}:blackout:{tu_id}")
        windows: List[Tuple[int, int]] = []
        for slot_start in range(0, model.horizon, model.slot_cycles):
            if rng.random() < model.rate:
                start = slot_start + rng.randrange(model.slot_cycles)
                end = start + model.duration
                if windows and start <= windows[-1][1]:
                    windows[-1] = (windows[-1][0], max(windows[-1][1], end))
                else:
                    windows.append((start, end))
        return windows

    def blackout_windows(self, tu_id: int) -> List[Tuple[int, int]]:
        """Return the unit's full (start, end) blackout schedule, sorted."""
        if tu_id not in self._windows:
            self._windows[tu_id] = self._draw_windows(tu_id)
        return list(self._windows[tu_id])

    # ------------------------------------------------------------------
    # Per-event keyed decisions.
    # ------------------------------------------------------------------

    def spawn_dropped(
        self, sp_pc: int, parent_seq: int, pos: int, attempt: int
    ) -> bool:
        """Return True when this attempt of the spawn request is dropped."""
        if self.spawn_drop_rate == 0.0:
            return False
        draw = _keyed_u01(
            self.plan.seed, "spawn", (sp_pc, parent_seq, pos, attempt)
        )
        return draw < self.spawn_drop_rate

    def corrupt_livein(self, thread_seq: int, reg: int) -> bool:
        """Return True when ``reg``'s predicted live-in for ``thread_seq`` is corrupted."""
        if self.corrupt_rate == 0.0:
            return False
        draw = _keyed_u01(self.plan.seed, "livein", (thread_seq, reg))
        return draw < self.corrupt_rate

    def forward_delay(self, thread_seq: int, reg: int, producer: int) -> int:
        """Return extra cycles delaying ``producer``'s forward of ``reg`` to ``thread_seq``."""
        if self.forward_rate == 0.0:
            return 0
        key = (thread_seq, reg, producer)
        cached = self._forward_cache.get(key)
        if cached is not None:
            return cached
        draw = _keyed_u01(self.plan.seed, "forward", key)
        delay = self.plan.forward_delay.delay if draw < self.forward_rate else 0
        self._forward_cache[key] = delay
        if delay:
            self.forward_delay_events += 1
            # Cycle -1: the keyed decision has no simulated cycle in
            # scope (the consumer applies the delay on its own clock).
            if self.tracer.enabled:
                self.tracer.emit(
                    EV_FORWARD_DELAY,
                    -1,
                    thread=thread_seq,
                    reg=reg,
                    producer=producer,
                    delay=delay,
                )
        return delay
