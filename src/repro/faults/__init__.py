"""Seeded fault injection for the CMT simulator.

The paper's architectural premise is that speculative threads may be
wrong and the processor must recover — squash, reassign to the next-best
CQIP, synchronise on mispredicted live-ins.  This package exercises those
recovery paths *on purpose*: a :class:`FaultPlan` describes a set of
deterministic, seed-driven fault models and a :class:`FaultInjector`
turns the plan into per-event decisions the simulator consults.

Fault models (all reproducible from the plan's single seed):

- :class:`TUBlackoutFault` — a thread unit goes dark for a cycle window;
  its thread is squashed and gracefully degraded (restarted on a free
  unit, or folded back into its predecessor's sequential execution).
- :class:`SpawnDropFault` — spawn requests are dropped in the spawn
  interconnect and retried with bounded exponential backoff.
- :class:`LiveinCorruptionFault` — a predicted live-in value is
  corrupted in flight, forcing the synchronise+recovery (miss) path.
- :class:`ForwardDelayFault` — inter-thread register forwarding is
  delayed by extra cycles.

Graceful degradation never changes architectural results — the committed
instruction stream always equals the sequential trace — only timing.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    FaultPlan,
    ForwardDelayFault,
    LiveinCorruptionFault,
    SpawnDropFault,
    TUBlackoutFault,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "TUBlackoutFault",
    "SpawnDropFault",
    "LiveinCorruptionFault",
    "ForwardDelayFault",
]
