"""Fault-injection campaigns: sweep fault rates, report degradation.

A campaign runs every requested workload at every fault rate through the
hardened experiment runner (per-run wall-clock timeout, bounded retry,
checkpoint/resume) and reports speed-up versus fault rate — the
"degradation curve" of each workload.  Two built-in gates make the
campaign CI-friendly, like ``repro lint``:

- the zero-rate run must be cycle-for-cycle identical to the faultless
  simulator (fault plumbing must not perturb a healthy machine);
- every faulty run must still commit exactly the sequential instruction
  stream (graceful degradation changes timing, never results).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cmt import simulate
from repro.experiments.framework import (
    EXPERIMENT_CONFIG,
    ResilientOutcome,
    SweepCheckpoint,
    baseline_cycles,
    pair_set_for,
    resilient_sweep,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultPlan
from repro.workloads import load_trace, workload_names


def run_key(workload: str, rate: float) -> str:
    """Return the stable checkpoint key of one (workload, rate) run."""
    return f"{workload}@{rate:g}"


def workload_seed(seed: int, workload: str) -> int:
    """Return the per-workload fault seed derived from the campaign seed."""
    digest = hashlib.blake2b(
        f"{seed}:{workload}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of one fault-injection campaign."""

    workloads: Tuple[str, ...]
    rates: Tuple[float, ...]
    seed: int = 2002
    scale: float = 1.0
    policy: str = "profile"
    thread_units: int = 16
    #: Per-run wall-clock limit in seconds (None = unbounded).
    timeout: Optional[float] = 120.0
    retries: int = 2
    backoff: float = 0.05
    #: In-simulator cycle budget for faulty runs, as a multiple of the
    #: workload's faultless cycle count (runaway guard).
    cycle_budget_factor: int = 50

    @classmethod
    def smoke(cls, seed: int = 2002) -> "CampaignSpec":
        """Return a small fixed-seed campaign spec for CI (all-model)."""
        return cls(
            workloads=tuple(workload_names()),
            rates=(0.0, 0.05),
            seed=seed,
            scale=0.25,
            timeout=60.0,
            retries=1,
        )


@dataclass
class CampaignResult:
    """Everything a campaign learned, renderable and JSON-serialisable."""

    spec: CampaignSpec
    #: workload -> {"sequential_cycles", "faultless_cycles"}.
    reference: Dict[str, Dict[str, int]] = field(default_factory=dict)
    outcomes: Dict[str, ResilientOutcome] = field(default_factory=dict)
    resumed: int = 0

    # ------------------------------------------------------------------
    # Gates.
    # ------------------------------------------------------------------

    def failures(self) -> List[str]:
        """Return the human-readable gate failures (empty = passed)."""
        problems: List[str] = []
        for workload in self.spec.workloads:
            for rate in self.spec.rates:
                key = run_key(workload, rate)
                outcome = self.outcomes.get(key)
                if outcome is None:
                    problems.append(f"{key}: missing run")
                    continue
                if not outcome.ok:
                    problems.append(
                        f"{key}: failed after {outcome.attempts} attempts "
                        f"({outcome.error_type}: {outcome.error})"
                    )
                    continue
                value = outcome.value or {}
                if not value.get("stream_ok", False):
                    problems.append(
                        f"{key}: committed stream diverged from the "
                        "sequential trace"
                    )
                if rate == 0.0:
                    faultless = self.reference[workload]["faultless_cycles"]
                    if value.get("cycles") != faultless:
                        problems.append(
                            f"{key}: zero-fault run took "
                            f"{value.get('cycles')} cycles, faultless "
                            f"simulator took {faultless}"
                        )
        return problems

    @property
    def ok(self) -> bool:
        """Whether every campaign gate passed."""
        return not self.failures()

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON report (spec, references, outcomes, gates)."""
        return {
            "spec": {
                "workloads": list(self.spec.workloads),
                "rates": list(self.spec.rates),
                "seed": self.spec.seed,
                "scale": self.spec.scale,
                "policy": self.spec.policy,
                "thread_units": self.spec.thread_units,
            },
            "reference": self.reference,
            "outcomes": {
                key: outcome.to_dict()
                for key, outcome in self.outcomes.items()
            },
            "resumed": self.resumed,
            "failures": self.failures(),
        }

    def render(self) -> str:
        """Return the ASCII degradation report (speed-up per rate)."""
        rates = list(self.spec.rates)
        lines = [
            "Fault-injection campaign "
            f"(seed {self.spec.seed}, scale {self.spec.scale}, "
            f"{self.spec.thread_units} TUs, policy {self.spec.policy})"
        ]
        header = f"{'workload':>10} " + " ".join(
            f"{f'rate {rate:g}':>10}" for rate in rates
        )
        lines.append(header)
        totals = {
            "faults_injected": 0,
            "threads_degraded": 0,
            "spawns_retried": 0,
            "spawns_dropped": 0,
            "fault_cycles_lost": 0,
        }
        for workload in self.spec.workloads:
            cells = []
            for rate in rates:
                outcome = self.outcomes.get(run_key(workload, rate))
                if outcome is None or not outcome.ok:
                    cells.append(f"{'FAIL':>10}")
                    continue
                value = outcome.value or {}
                cells.append(f"{value.get('speedup', 0.0):>10.2f}")
                for counter in totals:
                    totals[counter] += int(value.get(counter, 0))
            lines.append(f"{workload:>10} " + " ".join(cells))
        lines.append(
            f"totals: {totals['faults_injected']} faults injected, "
            f"{totals['threads_degraded']} threads degraded, "
            f"{totals['spawns_retried']} spawns retried, "
            f"{totals['spawns_dropped']} spawns dropped, "
            f"{totals['fault_cycles_lost']} cycles lost"
        )
        if self.resumed:
            lines.append(f"resumed {self.resumed} runs from checkpoint")
        failures = self.failures()
        if failures:
            lines.append("FAILURES:")
            lines.extend(f"  {problem}" for problem in failures)
        else:
            lines.append("all gates passed")
        return "\n".join(lines)


def _run_payload(spec: CampaignSpec, workload: str, rate: float,
                 sequential: int, faultless: int) -> Dict[str, Any]:
    """One campaign run: simulate under the rate's fault plan."""
    trace = load_trace(workload, spec.scale)
    pairs = pair_set_for(workload, spec.policy, spec.scale)
    config = EXPERIMENT_CONFIG.with_(
        num_thread_units=spec.thread_units,
        cycle_budget=max(faultless, 1) * spec.cycle_budget_factor,
    )
    plan = FaultPlan.uniform(rate, seed=workload_seed(spec.seed, workload))
    stats = simulate(trace, pairs, config, FaultInjector(plan))
    return {
        "cycles": stats.cycles,
        "speedup": round(sequential / stats.cycles, 4) if stats.cycles else 0.0,
        "stream_ok": sum(stats.thread_sizes) == len(trace),
        "faults_injected": stats.faults_injected,
        "tu_blackouts": stats.tu_blackouts,
        "threads_degraded": stats.threads_degraded,
        "spawns_retried": stats.spawns_retried,
        "spawns_dropped": stats.spawns_dropped,
        "liveins_corrupted": stats.liveins_corrupted,
        "forward_delays": stats.forward_delays,
        "fault_cycles_lost": stats.fault_cycles_lost,
    }


def _campaign_points(
    spec: CampaignSpec,
    reference: Dict[str, Dict[str, int]],
    crash_keys: Tuple[str, ...],
):
    """Pickle-safe engine points covering the campaign's sweep grid."""
    from repro.experiments.engine import Point

    spec_fields = {
        "seed": spec.seed,
        "scale": spec.scale,
        "policy": spec.policy,
        "thread_units": spec.thread_units,
        "cycle_budget_factor": spec.cycle_budget_factor,
    }
    points = []
    for workload in spec.workloads:
        for rate in spec.rates:
            key = run_key(workload, rate)
            points.append(
                Point(
                    key=key,
                    runner="campaign",
                    params={
                        "spec_fields": spec_fields,
                        "workload": workload,
                        "rate": rate,
                        "sequential": reference[workload]["sequential_cycles"],
                        "faultless": reference[workload]["faultless_cycles"],
                        "crash_key": key if key in crash_keys else None,
                    },
                )
            )
    return points


def run_campaign(
    spec: CampaignSpec,
    checkpoint: Optional[SweepCheckpoint] = None,
    crash_keys: Tuple[str, ...] = (),
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Execute a campaign, resuming completed runs from ``checkpoint``.

    Args:
        spec: The campaign's sweep parameters.
        checkpoint: Optional resume store; completed run keys are
            loaded instead of re-run.
        crash_keys: Run keys whose *first* attempt raises an injected
            crash — a deterministic way to exercise (and test) the
            retry path end to end.
        progress: Optional one-line-per-run status callback.
        jobs: Worker processes; 1 (the default) keeps the historical
            serial path, >1 fans runs across a
            :class:`~repro.experiments.engine.ParallelEngine`.
        cache_dir: Optional artifact-cache directory shared by the
            reference computation and every worker.
        telemetry_dir: When set, write one provenance manifest per run
            (config digest, derived fault seed, attempts, wall time)
            plus a campaign rollup into this directory — identically
            for the serial and the parallel path.
        backend: Executor backend name forwarded to the engine
            (``serial``/``process``/``async-local``/``remote``); None
            keeps the historical jobs-based selection.
        workers: Backend parallelism (default: ``jobs``).

    Returns:
        The populated :class:`CampaignResult` (gates not yet evaluated;
        call :meth:`CampaignResult.failures` / ``.ok``).
    """
    from repro.experiments import framework
    from repro.experiments.engine import ParallelEngine

    started = time.perf_counter()
    result = CampaignResult(spec=spec)
    crash_budget = {key: 1 for key in crash_keys}
    engine = ParallelEngine(
        jobs=jobs,
        cache_dir=cache_dir,
        timeout=spec.timeout,
        retries=spec.retries,
        backoff=spec.backoff,
        backend=backend,
        workers=workers,
    )

    with framework.use_cache(engine.cache):
        for workload in spec.workloads:
            config = EXPERIMENT_CONFIG.with_(num_thread_units=spec.thread_units)
            trace = load_trace(workload, spec.scale)
            pairs = pair_set_for(workload, spec.policy, spec.scale)
            sequential = baseline_cycles(workload, config, spec.scale)
            faultless = simulate(trace, pairs, config).cycles
            result.reference[workload] = {
                "sequential_cycles": sequential,
                "faultless_cycles": faultless,
            }

    def note(key: str, outcome: ResilientOutcome, resumed: bool) -> None:
        if resumed:
            result.resumed += 1
        if progress is not None:
            status = "resumed" if resumed else (
                "ok" if outcome.ok else "FAILED"
            )
            retry = (
                f" ({outcome.attempts} attempts)"
                if not resumed and outcome.attempts > 1
                else ""
            )
            progress(f"{key}: {status}{retry}")

    if jobs == 1 and backend is None:
        # Historical serial path: closures over the crash budget, run
        # through ``resilient_sweep`` in submission order.
        tasks: Dict[str, Callable[[], Any]] = {}
        for workload in spec.workloads:
            sequential = result.reference[workload]["sequential_cycles"]
            faultless = result.reference[workload]["faultless_cycles"]
            for rate in spec.rates:
                key = run_key(workload, rate)

                def task(workload=workload, rate=rate, key=key,
                         sequential=sequential, faultless=faultless):
                    if crash_budget.get(key, 0) > 0:
                        crash_budget[key] -= 1
                        raise RuntimeError(f"injected worker crash in {key}")
                    return _run_payload(
                        spec, workload, rate, sequential, faultless
                    )

                tasks[key] = task

        with framework.use_cache(engine.cache):
            result.outcomes = resilient_sweep(
                tasks,
                checkpoint=checkpoint,
                timeout=spec.timeout,
                retries=spec.retries,
                backoff=spec.backoff,
                progress=note,
            )
    else:
        points = _campaign_points(spec, result.reference, crash_keys)
        result.outcomes = engine.run(points, checkpoint=checkpoint, progress=note)
    if telemetry_dir is not None:
        _write_campaign_telemetry(
            telemetry_dir, spec, result, engine,
            time.perf_counter() - started,
        )
    return result


def _write_campaign_telemetry(
    telemetry_dir: str,
    spec: CampaignSpec,
    result: CampaignResult,
    engine,
    seconds: float,
) -> None:
    """Write one manifest per campaign run plus the campaign rollup.

    Written after both execution paths, so the manifests are identical
    whether the campaign ran serially or through the parallel engine
    (the per-run cache delta is only known on the engine path).
    """
    from repro.obs.manifest import RunManifest, write_sweep_manifest

    spec_fields = {
        "seed": spec.seed,
        "scale": spec.scale,
        "policy": spec.policy,
        "thread_units": spec.thread_units,
        "cycle_budget_factor": spec.cycle_budget_factor,
    }
    for workload in spec.workloads:
        for rate in spec.rates:
            key = run_key(workload, rate)
            outcome = result.outcomes.get(key)
            if outcome is None:
                continue
            RunManifest(
                name=key,
                config={**spec_fields, "workload": workload, "rate": rate},
                seed=spec.seed,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
                ok=outcome.ok,
                cache=engine._point_deltas.get(key, {}),
                fault_plan={
                    "rate": rate,
                    "seed": workload_seed(spec.seed, workload),
                },
            ).write(telemetry_dir)
    cache_totals = (
        engine.cache.stats.to_dict() if engine.cache is not None else {}
    )
    write_sweep_manifest(
        telemetry_dir,
        name="campaign",
        points=len(result.outcomes),
        config=spec_fields,
        seconds=seconds,
        cache=cache_totals,
        extra={
            "workloads": list(spec.workloads),
            "rates": list(spec.rates),
            "resumed": result.resumed,
            "failures": result.failures(),
        },
    )
