"""Structured error taxonomy for execution and simulation failures.

Every failure a long experiment campaign can encounter maps onto one of
these classes so the experiment runner (and the CLI) can distinguish
"this run is broken" from "this run needs more budget" from "the
simulator itself violated an invariant":

- :class:`ExecutionError` — architectural errors in the functional
  machine (bad pc, return without call, unimplemented opcode).
- :class:`SimulationError` — base of every structured simulator failure.
  Carries a context dict (cycle, thread, workload, ...) rendered into
  the message so a one-line report is actionable.
- :class:`SimulationTimeout` — a cycle-budget or wall-clock limit was
  exceeded; the run may succeed with a larger budget.
- :class:`InvariantViolation` — the simulator's internal consistency
  checks failed; always a bug, never data.
- :class:`WorkloadError` — the workload program itself misbehaved
  (e.g. did not halt within its step budget).  Subclasses both
  :class:`SimulationError` and :class:`ExecutionError` so existing
  ``except ExecutionError`` call sites keep working.
"""

from __future__ import annotations

from typing import Any, Dict


class ExecutionError(RuntimeError):
    """Raised on architectural errors (bad pc, return without call, ...)."""


class SimulationError(RuntimeError):
    """Base class of structured simulator failures.

    Keyword arguments become a ``context`` dict appended to the message,
    e.g. ``SimulationError("stuck", cycle=12, thread=3)`` renders as
    ``stuck [cycle=12, thread=3]``.
    """

    def __init__(self, message: str, **context: Any):
        self.context: Dict[str, Any] = {
            key: value for key, value in context.items() if value is not None
        }
        if self.context:
            detail = ", ".join(
                f"{key}={value}" for key, value in sorted(self.context.items())
            )
            message = f"{message} [{detail}]"
        super().__init__(message)


class SimulationTimeout(SimulationError):
    """A cycle-budget or wall-clock limit was exceeded."""


class InvariantViolation(SimulationError):
    """The simulator's internal consistency checks failed (always a bug)."""


class WorkloadError(SimulationError, ExecutionError):
    """The workload program misbehaved (e.g. a runaway loop)."""
