"""Reproduction of Marcuello & Gonzalez, "Thread-Spawning Schemes for
Speculative Multithreading" (HPCA 2002).

Public API layers (bottom-up):

- :mod:`repro.isa`, :mod:`repro.exec` — RISC-like ISA and functional
  execution into dynamic traces.
- :mod:`repro.workloads` — the SpecInt95-analogue synthetic benchmark suite.
- :mod:`repro.profiling` — dynamic CFG, pruning, reaching-probability and
  dependence analyses.
- :mod:`repro.spawning` — spawning-pair policies: the paper's profile-based
  scheme and the traditional heuristics baseline.
- :mod:`repro.predictors` — value predictors (perfect/last-value/stride/FCM)
  and the gshare branch predictor.
- :mod:`repro.cmt` — the Clustered Speculative Multithreaded processor
  timing simulator.
- :mod:`repro.experiments` — drivers that regenerate each paper figure.
"""

__version__ = "1.0.0"
