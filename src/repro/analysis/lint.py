"""Workload linter: static sanity rules over a :class:`Program`.

Every rule inspects the static CFG / dataflow facts and emits structured
:class:`~repro.analysis.diagnostics.Diagnostic` records.  Severities:

- ``error``   — the program can crash the executor or silently produce a
  truncated trace (dangling targets, falling off the program text, a
  ``ret`` that no call can own).
- ``warning`` — almost certainly a workload-generator bug but executable
  (unreachable code, reads of never-written registers, no reachable halt).
- ``info``    — style/efficiency notes (dead stores).

Suppressions: a program may carry ``lint_suppressions`` mapping a rule id
(``"dead-store"``) or a pc-qualified rule (``"dead-store@17"``) to a short
rationale; suppressed findings are dropped and only counted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cfg import StaticCFG
from repro.analysis.dataflow import (
    dead_stores,
    solve_liveness,
    solve_reaching,
)
from repro.analysis.dependence import DependenceAnalysis, SquashRiskReport
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.isa.instructions import Opcode
from repro.isa.program import Program

#: ``high-squash-risk-pair`` fires at or above this static risk score.
HIGH_SQUASH_RISK_THRESHOLD = 8.0

#: rule id -> (severity, one-line description); the registry the CLI prints.
LINT_RULES: Dict[str, tuple] = {
    "dangling-target": (
        Severity.ERROR,
        "control transfer whose target pc is missing or outside the program",
    ),
    "fallthrough-end": (
        Severity.ERROR,
        "execution can fall through past the last instruction",
    ),
    "ret-outside-subroutine": (
        Severity.ERROR,
        "ret not reachable from any call target (would pop an empty stack)",
    ),
    "unreachable-code": (
        Severity.WARNING,
        "basic block unreachable from the program entry",
    ),
    "undefined-read": (
        Severity.WARNING,
        "register read with no reaching definition on any static path",
    ),
    "halt-unreachable": (
        Severity.WARNING,
        "no halt instruction is statically reachable",
    ),
    "dead-store": (
        Severity.INFO,
        "register definition that is never live afterwards",
    ),
    "high-squash-risk-pair": (
        Severity.INFO,
        "spawning-pair candidate whose static squash-risk score is high",
    ),
    "memory-carried-live-in-without-realistic-vp": (
        Severity.INFO,
        "spawning-pair candidate with a memory-carried live-in no value "
        "predictor can cover",
    ),
}


def _check_dangling_targets(cfg: StaticCFG) -> List[Diagnostic]:
    out = []
    for pc in cfg.invalid_targets:
        inst = cfg.program[pc]
        target = "missing" if inst.target is None else f"{inst.target}"
        out.append(
            Diagnostic(
                "dangling-target",
                Severity.ERROR,
                f"{inst.op.value} target {target} outside program of size "
                f"{len(cfg.program)}",
                pc=pc,
            )
        )
    return out


def _check_fallthrough_end(cfg: StaticCFG) -> List[Diagnostic]:
    reachable = cfg.reachable_blocks()
    out = []
    for bid in sorted(cfg.falls_off_end):
        if bid not in reachable:
            continue
        block = cfg.blocks[bid]
        out.append(
            Diagnostic(
                "fallthrough-end",
                Severity.ERROR,
                "block can fall through past the end of the program "
                "(missing halt/jump/ret)",
                pc=block.last_pc,
            )
        )
    return out


def _check_ret_ownership(cfg: StaticCFG) -> List[Diagnostic]:
    owned = {
        bid for rets in cfg.function_rets.values() for bid in rets
    }
    reachable = cfg.reachable_blocks()
    out = []
    for block in cfg.blocks:
        if cfg.program[block.last_pc].op is not Opcode.RET:
            continue
        if block.bid in reachable and block.bid not in owned:
            out.append(
                Diagnostic(
                    "ret-outside-subroutine",
                    Severity.ERROR,
                    "ret is not intraprocedurally reachable from any call "
                    "target; executing it would pop an empty call stack",
                    pc=block.last_pc,
                )
            )
    return out


def _check_unreachable(cfg: StaticCFG) -> List[Diagnostic]:
    reachable = cfg.reachable_blocks()
    out = []
    for block in cfg.blocks:
        if block.bid not in reachable:
            out.append(
                Diagnostic(
                    "unreachable-code",
                    Severity.WARNING,
                    f"block of {block.size} instruction(s) is unreachable "
                    "from the entry",
                    pc=block.start_pc,
                )
            )
    return out


def _check_undefined_reads(cfg: StaticCFG) -> List[Diagnostic]:
    reaching = solve_reaching(cfg)
    out = []
    for read in reaching.undefined_reads():
        out.append(
            Diagnostic(
                "undefined-read",
                Severity.WARNING,
                f"r{read.reg} is read but never written on any path here "
                "(the machine zero-initialises it)",
                pc=read.pc,
            )
        )
    return out


def _check_halt_reachable(cfg: StaticCFG) -> List[Diagnostic]:
    reachable = cfg.reachable_blocks()
    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        for pc in range(block.start_pc, block.end_pc):
            if cfg.program[pc].op is Opcode.HALT:
                return []
    return [
        Diagnostic(
            "halt-unreachable",
            Severity.WARNING,
            "no halt is statically reachable; the program cannot terminate "
            "cleanly",
        )
    ]


def _check_dead_stores(cfg: StaticCFG) -> List[Diagnostic]:
    liveness = solve_liveness(cfg)
    out = []
    for dead in dead_stores(cfg, liveness):
        out.append(
            Diagnostic(
                "dead-store",
                Severity.INFO,
                f"value written to r{dead.reg} is never read afterwards",
                pc=dead.pc,
            )
        )
    return out


def _static_candidate_pairs(program: Program) -> List[Tuple[int, int]]:
    """(SP, CQIP) candidates derivable from static constructs alone.

    The same constructs the traditional heuristics key on: loop
    iterations (head, head), loop continuations (head, after the backward
    branch) and subroutine continuations (call, return point).
    """
    n = len(program)
    candidates = {(head, head) for head in program.loop_heads()}
    for branch_pc in program.backward_branch_pcs():
        target = program[branch_pc].target
        if target is not None and branch_pc + 1 < n:
            candidates.add((target, branch_pc + 1))
    for call_pc in program.call_sites():
        if call_pc + 1 < n:
            candidates.add((call_pc, call_pc + 1))
    return sorted(candidates)


def _squash_reports(cfg: StaticCFG) -> List[SquashRiskReport]:
    """Squash-risk reports for every static spawning-pair candidate."""
    analysis = DependenceAnalysis(cfg.program, cfg)
    reports = []
    for sp_pc, cqip_pc in _static_candidate_pairs(cfg.program):
        try:
            reports.append(analysis.analyze_pair(sp_pc, cqip_pc))
        except ValueError:
            continue
    return reports


def _check_high_squash_risk(cfg: StaticCFG) -> List[Diagnostic]:
    out = []
    for report in _squash_reports(cfg):
        if report.risk_score >= HIGH_SQUASH_RISK_THRESHOLD:
            out.append(
                Diagnostic(
                    "high-squash-risk-pair",
                    Severity.INFO,
                    f"spawning candidate (SP {report.sp_pc}, CQIP "
                    f"{report.cqip_pc}) has static squash risk "
                    f"{report.risk_score:.2f} (threshold "
                    f"{HIGH_SQUASH_RISK_THRESHOLD:.0f}): a speculative "
                    "thread here would likely be squashed or mispredicted",
                    pc=report.sp_pc,
                )
            )
    return out


def _check_memory_carried_live_ins(cfg: StaticCFG) -> List[Diagnostic]:
    out = []
    for report in _squash_reports(cfg):
        carried = report.memory_carried_live_ins()
        if carried:
            regs = ", ".join(f"r{reg}" for reg in carried)
            out.append(
                Diagnostic(
                    "memory-carried-live-in-without-realistic-vp",
                    Severity.INFO,
                    f"spawning candidate (SP {report.sp_pc}, CQIP "
                    f"{report.cqip_pc}) has memory-carried live-in(s) "
                    f"{regs}; no realistic value predictor covers them "
                    "(recommended: synchronise)",
                    pc=report.sp_pc,
                )
            )
    return out


_CHECKS = {
    "dangling-target": _check_dangling_targets,
    "fallthrough-end": _check_fallthrough_end,
    "ret-outside-subroutine": _check_ret_ownership,
    "unreachable-code": _check_unreachable,
    "undefined-read": _check_undefined_reads,
    "halt-unreachable": _check_halt_reachable,
    "dead-store": _check_dead_stores,
    "high-squash-risk-pair": _check_high_squash_risk,
    "memory-carried-live-in-without-realistic-vp": (
        _check_memory_carried_live_ins
    ),
}


def lint_program(
    program: Program,
    ignore: Iterable[str] = (),
    cfg: Optional[StaticCFG] = None,
) -> DiagnosticReport:
    """Run every lint rule over ``program`` and return the report.

    ``ignore`` drops entire rules; the program's own ``lint_suppressions``
    (rule id or ``rule@pc`` keys, each mapped to a rationale) drop
    individual findings and are tallied in the report summary.
    """
    ignored = set(ignore)
    unknown = ignored - set(LINT_RULES)
    if unknown:
        raise ValueError(f"unknown lint rule(s): {sorted(unknown)}")
    cfg = cfg or StaticCFG(program)
    suppressions = getattr(program, "lint_suppressions", {}) or {}

    diagnostics: List[Diagnostic] = []
    suppressed = 0
    for rule, check in _CHECKS.items():
        if rule in ignored:
            continue
        for diag in check(cfg):
            if diag.rule in suppressions or (
                diag.pc is not None
                and f"{diag.rule}@{diag.pc}" in suppressions
            ):
                suppressed += 1
                continue
            diagnostics.append(diag)
    return DiagnosticReport(diagnostics, suppressed=suppressed)
