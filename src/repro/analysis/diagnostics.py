"""Structured diagnostics shared by the linter and the pair validator."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering allows ``max()`` over a report."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        """Return the lowercase severity name (``info`` .. ``error``)."""
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule id, a severity, an anchor pc and a message."""

    rule: str
    severity: Severity
    message: str
    pc: Optional[int] = None

    def format(self) -> str:
        """Return a one-line ``pc severity rule: message`` rendering."""
        where = f"pc {self.pc:5d}" if self.pc is not None else "program "
        return f"{where}  {self.severity.label():7s} {self.rule}: {self.message}"


class DiagnosticReport:
    """An ordered collection of diagnostics with severity queries."""

    def __init__(self, diagnostics: List[Diagnostic], suppressed: int = 0):
        self.diagnostics = sorted(
            diagnostics,
            key=lambda d: (-int(d.severity), d.pc if d.pc is not None else -1),
        )
        #: Findings dropped by suppressions (kept for the summary line).
        self.suppressed = suppressed

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        """Return the diagnostics at exactly the given severity."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        """The error-level diagnostics."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        """The warning-level diagnostics."""
        return self.by_severity(Severity.WARNING)

    def has_errors(self) -> bool:
        """Return True when any diagnostic is error-level."""
        return bool(self.errors)

    def summary(self) -> str:
        """Return a one-line per-severity count of the diagnostics."""
        counts = ", ".join(
            f"{len(self.by_severity(sev))} {sev.label()}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if self.by_severity(sev)
        )
        text = f"{len(self.diagnostics)} diagnostics"
        if counts:
            text += f" ({counts})"
        if self.suppressed:
            text += f", {self.suppressed} suppressed"
        return text

    def format(self) -> str:
        """Return the summary plus every diagnostic, one per line."""
        lines = [self.summary()]
        lines.extend(f"  {d.format()}" for d in self.diagnostics)
        return "\n".join(lines)
