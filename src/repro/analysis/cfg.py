"""Static control-flow graph construction from a :class:`Program`.

Unlike :mod:`repro.profiling.cfg`, which segments an observed dynamic
instruction stream, this module derives basic blocks and edges purely from
the program *text* — no trace is needed.  Leaders are pc 0, every valid
control-transfer target, and the instruction following any control transfer
or halt; blocks extend from a leader to the next terminator or leader.

Call and return flow is modelled context-insensitively: a ``call`` block
gets a CALL edge to the callee entry, and every ``ret`` reachable
intraprocedurally from that entry gets a RETURN edge back to each of the
entry's call continuations.  The resulting whole-program graph
over-approximates every dynamically-realisable path, which is exactly what
the linter and the spawning-pair validator need: anything the static graph
calls unreachable can never happen at runtime.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Opcode
from repro.isa.program import Program


class EdgeKind(enum.Enum):
    """Why control can flow from one static block to another."""

    FALLTHROUGH = "fallthrough"
    TAKEN = "taken"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"


@dataclass(frozen=True)
class StaticBlock:
    """A maximal straight-line instruction range ``[start_pc, end_pc)``."""

    bid: int
    start_pc: int
    end_pc: int

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return self.end_pc - self.start_pc

    @property
    def last_pc(self) -> int:
        """pc of the block's final instruction (its terminator)."""
        return self.end_pc - 1


class StaticCFG:
    """Whole-program static CFG with typed edges and function structure."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: List[StaticBlock] = []
        #: leader pc -> block id
        self.by_pc: Dict[int, int] = {}
        self.succs: Dict[int, List[Tuple[int, EdgeKind]]] = {}
        self.preds: Dict[int, List[Tuple[int, EdgeKind]]] = {}
        #: pcs of control transfers whose target is missing or out of range.
        self.invalid_targets: List[int] = []
        #: block ids whose fallthrough would leave the program text.
        self.falls_off_end: Set[int] = set()
        #: callee entry pc -> block ids intraprocedurally reachable from it.
        self.function_blocks: Dict[int, Set[int]] = {}
        #: callee entry pc -> ret-terminated block ids of that function.
        self.function_rets: Dict[int, List[int]] = {}
        self._starts: List[int] = []
        self._build()
        self._reachable: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build(self) -> None:
        program = self.program
        n = len(program)
        if n == 0:
            raise ValueError("cannot build a static CFG of an empty program")

        leaders = {0}
        for pc, inst in enumerate(program):
            if inst.is_control or inst.op is Opcode.HALT:
                if pc + 1 < n:
                    leaders.add(pc + 1)
                target = inst.target
                if inst.is_control and inst.op is not Opcode.RET:
                    if target is not None and 0 <= target < n:
                        leaders.add(target)
                    else:
                        self.invalid_targets.append(pc)

        starts = sorted(leaders)
        self._starts = starts
        for bid, start in enumerate(starts):
            end = starts[bid + 1] if bid + 1 < len(starts) else n
            self.blocks.append(StaticBlock(bid=bid, start_pc=start, end_pc=end))
            self.by_pc[start] = bid
        self.succs = {b.bid: [] for b in self.blocks}
        self.preds = {b.bid: [] for b in self.blocks}

        for block in self.blocks:
            self._add_block_edges(block)
        self._add_return_edges()

    def _add_edge(self, src: int, dst_pc: int, kind: EdgeKind) -> None:
        dst = self.by_pc[dst_pc]
        self.succs[src].append((dst, kind))
        self.preds[dst].append((src, kind))

    def _add_block_edges(self, block: StaticBlock) -> None:
        n = len(self.program)
        term = self.program[block.last_pc]
        op = term.op
        valid_target = (
            term.target is not None and 0 <= term.target < n
        )
        if op in (Opcode.HALT, Opcode.RET):
            return
        if op is Opcode.JUMP:
            if valid_target:
                self._add_edge(block.bid, term.target, EdgeKind.JUMP)
            return
        if op is Opcode.CALL:
            if valid_target:
                self._add_edge(block.bid, term.target, EdgeKind.CALL)
            # The continuation edge is added from the callee's rets.
            return
        if term.is_branch:
            if valid_target:
                self._add_edge(block.bid, term.target, EdgeKind.TAKEN)
            if block.end_pc < n:
                self._add_edge(block.bid, block.end_pc, EdgeKind.FALLTHROUGH)
            else:
                self.falls_off_end.add(block.bid)
            return
        # Plain block split by a following leader (or the program end).
        if block.end_pc < n:
            self._add_edge(block.bid, block.end_pc, EdgeKind.FALLTHROUGH)
        else:
            self.falls_off_end.add(block.bid)

    def _add_return_edges(self) -> None:
        """Wire every callee ``ret`` to each of its call continuations."""
        program = self.program
        n = len(program)
        call_sites: Dict[int, List[int]] = {}
        for pc, inst in enumerate(program):
            if inst.op is Opcode.CALL and inst.target is not None:
                if 0 <= inst.target < n:
                    call_sites.setdefault(inst.target, []).append(pc)

        for entry in call_sites:
            body, rets = self._intraprocedural_walk(entry)
            self.function_blocks[entry] = body
            self.function_rets[entry] = rets

        for entry, sites in call_sites.items():
            for ret_bid in self.function_rets[entry]:
                for call_pc in sites:
                    if call_pc + 1 < n:
                        self._add_edge(
                            ret_bid, call_pc + 1, EdgeKind.RETURN
                        )

    def _intraprocedural_walk(self, entry_pc: int) -> Tuple[Set[int], List[int]]:
        """Blocks and ret blocks reachable from ``entry_pc`` within one
        function (calls are stepped over to their continuation)."""
        n = len(self.program)
        start = self.by_pc[entry_pc]
        seen = {start}
        stack = [start]
        rets: List[int] = []
        while stack:
            bid = stack.pop()
            block = self.blocks[bid]
            term = self.program[block.last_pc]
            nexts: List[int] = []
            if term.op is Opcode.RET:
                rets.append(bid)
            elif term.op is Opcode.CALL:
                if block.end_pc < n:
                    nexts.append(self.by_pc[block.end_pc])
            else:
                nexts = [
                    dst
                    for dst, kind in self.succs[bid]
                    if kind is not EdgeKind.RETURN
                ]
            for dst in nexts:
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen, rets

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def entry(self) -> int:
        """Block id of the program entry (pc 0)."""
        return self.by_pc[0]

    def block_containing(self, pc: int) -> StaticBlock:
        """Return the block whose range covers ``pc`` (ValueError if outside)."""
        if not 0 <= pc < len(self.program):
            raise ValueError(f"pc {pc} outside program")
        idx = bisect.bisect_right(self._starts, pc) - 1
        return self.blocks[idx]

    def leader_pcs(self) -> List[int]:
        """Return every block leader pc in ascending order."""
        return list(self._starts)

    def successors(self, bid: int) -> List[int]:
        """Return successor block ids over every edge kind (deduplicated)."""
        seen: List[int] = []
        for dst, _kind in self.succs[bid]:
            if dst not in seen:
                seen.append(dst)
        return seen

    def predecessors(self, bid: int) -> List[int]:
        """Return predecessor block ids over every edge kind (deduplicated)."""
        seen: List[int] = []
        for src, _kind in self.preds[bid]:
            if src not in seen:
                seen.append(src)
        return seen

    def reachable_blocks(self) -> Set[int]:
        """Return block ids reachable from the entry over every edge kind."""
        if self._reachable is None:
            seen = {self.entry}
            stack = [self.entry]
            while stack:
                bid = stack.pop()
                for dst in self.successors(bid):
                    if dst not in seen:
                        seen.add(dst)
                        stack.append(dst)
            self._reachable = seen
        return self._reachable

    def reachable_from(self, bid: int) -> Set[int]:
        """Return block ids reachable from ``bid`` (excluding ``bid``
        itself unless it lies on a cycle)."""
        seen: Set[int] = set()
        stack = [dst for dst in self.successors(bid)]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.successors(cur))
        return seen

    def shortest_distance(self, sp_pc: int, cqip_pc: int) -> Optional[float]:
        """Minimum static instruction count from ``sp_pc`` to ``cqip_pc``.

        Counts instructions executed starting at the SP (inclusive) until
        control first arrives at the CQIP (exclusive) — the static
        counterpart of the dynamic ``cqip_pos - sp_pos`` distance.  Returns
        ``None`` when no static path exists.  ``sp_pc == cqip_pc`` measures
        the shortest cycle through the pc.
        """
        import heapq

        sp_block = self.block_containing(sp_pc)
        cq_block = self.block_containing(cqip_pc)
        direct: Optional[int] = None
        if sp_block.bid == cq_block.bid and cqip_pc > sp_pc:
            direct = cqip_pc - sp_pc

        # Dijkstra over blocks; dist[b] = instructions from the SP until
        # control enters block b.
        dist: Dict[int, int] = {}
        head = sp_block.end_pc - sp_pc
        heap: List[Tuple[int, int]] = []
        for dst in self.successors(sp_block.bid):
            if dst not in dist or head < dist[dst]:
                dist[dst] = head
                heapq.heappush(heap, (head, dst))
        while heap:
            d, bid = heapq.heappop(heap)
            if d > dist.get(bid, float("inf")):
                continue
            nd = d + self.blocks[bid].size
            for dst in self.successors(bid):
                if nd < dist.get(dst, float("inf")):
                    dist[dst] = nd
                    heapq.heappush(heap, (nd, dst))

        via_graph: Optional[int] = None
        if cq_block.bid in dist:
            via_graph = dist[cq_block.bid] + (cqip_pc - cq_block.start_pc)
        candidates = [c for c in (direct, via_graph) if c is not None]
        return float(min(candidates)) if candidates else None
