"""Static validation of spawning-pair tables against a program.

The paper selects (SP, CQIP) pairs from a *dynamic* profile; this module is
the static pre-flight check.  Because the static CFG over-approximates
every realisable execution, anything it rejects — a pc off an instruction
boundary, a CQIP no static path can reach — can never work at runtime, so
error-level findings are safe to filter before simulation.  Warning-level
findings are the static analogues of the paper's Section 3.1 selection
criteria: a short static SP→CQIP distance (criterion: average thread size
>= 32) and speculative-thread live-ins written inside the SP→CQIP region
(criterion: the thread's inputs should be independent of, or predictable
from, the instructions it is skipped over).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import StaticCFG
from repro.analysis.dataflow import (
    LivenessResult,
    inst_def,
    solve_liveness,
)
from repro.analysis.dependence import region_pc_ranges
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.dominators import postdominator_tree
from repro.isa.program import Program
from repro.spawning.pairs import SpawnPair, SpawnPairSet


@dataclass
class PairValidationConfig:
    """Thresholds for the static checks.

    ``min_static_distance`` is deliberately far below the paper's dynamic
    minimum of 32: the static shortest path is a lower bound over *all*
    paths, so only degenerate pairs should trip it by default.
    """

    min_static_distance: float = 2.0
    check_live_ins: bool = True
    check_postdominance: bool = True


@dataclass(frozen=True)
class PairFinding:
    """One validator finding attached to a specific pair."""

    pair: SpawnPair
    diagnostic: Diagnostic

    def format(self) -> str:
        """Return a one-line ``SP -> CQIP severity rule: message`` string."""
        d = self.diagnostic
        return (
            f"SP {self.pair.sp_pc} -> CQIP {self.pair.cqip_pc}  "
            f"{d.severity.label():7s} {d.rule}: {d.message}"
        )


class PairValidationReport:
    """All findings for a pair table, with per-pair and per-severity views."""

    def __init__(self, pairs: List[SpawnPair], findings: List[PairFinding]):
        self.pairs = pairs
        self.findings = findings
        self._by_key: Dict[Tuple, List[PairFinding]] = {}
        for finding in findings:
            self._by_key.setdefault(finding.pair.key(), []).append(finding)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def findings_for(self, pair: SpawnPair) -> List[PairFinding]:
        """Return the findings attached to ``pair`` (possibly empty)."""
        return self._by_key.get(pair.key(), [])

    def errors(self) -> List[PairFinding]:
        """Return the error-level findings."""
        return [
            f for f in self.findings if f.diagnostic.severity is Severity.ERROR
        ]

    def warnings(self) -> List[PairFinding]:
        """Return the warning-level findings."""
        return [
            f
            for f in self.findings
            if f.diagnostic.severity is Severity.WARNING
        ]

    def is_valid(self, pair: SpawnPair) -> bool:
        """Return True when the pair has no error-level finding."""
        return not any(
            f.diagnostic.severity is Severity.ERROR
            for f in self.findings_for(pair)
        )

    def valid_pairs(self) -> List[SpawnPair]:
        """Return the pairs with no error-level finding."""
        return [p for p in self.pairs if self.is_valid(p)]

    def invalid_pairs(self) -> List[SpawnPair]:
        """Return the pairs rejected by an error-level finding."""
        return [p for p in self.pairs if not self.is_valid(p)]

    def summary(self) -> str:
        """Return a one-line count of checked/rejected pairs and findings."""
        return (
            f"{len(self.pairs)} pairs checked: "
            f"{len(self.invalid_pairs())} rejected, "
            f"{len(self.errors())} errors, {len(self.warnings())} warnings"
        )

    def format(self) -> str:
        """Return the summary plus every finding, one per line."""
        lines = [self.summary()]
        lines.extend(f"  {f.format()}" for f in self.findings)
        return "\n".join(lines)


def _on_boundary(pc) -> bool:
    """pc names a real instruction boundary (integral, non-bool)."""
    return isinstance(pc, int) and not isinstance(pc, bool)


def _region_written_regs(
    cfg: StaticCFG, sp_pc: int, cqip_pc: int
) -> Set[int]:
    """Registers possibly written on some SP→CQIP path (CQIP exclusive).

    Returns:
        The register numbers defined anywhere in the pc ranges of
        :func:`repro.analysis.dependence.region_pc_ranges` (the shared
        SP→CQIP region model).
    """
    written: Set[int] = set()
    for start, end in region_pc_ranges(cfg, sp_pc, cqip_pc):
        for pc in range(start, end):
            defined = inst_def(cfg.program[pc])
            if defined is not None:
                written.add(defined)
    return written


def validate_pairs(
    program: Program,
    pairs: SpawnPairSet,
    config: Optional[PairValidationConfig] = None,
    cfg: Optional[StaticCFG] = None,
) -> PairValidationReport:
    """Cross-check every pair (including alternatives) against the program.

    Returns:
        A :class:`PairValidationReport` holding all findings.
    """
    config = config or PairValidationConfig()
    cfg = cfg or StaticCFG(program)
    liveness: Optional[LivenessResult] = None
    postdom = None
    n = len(program)
    all_pairs = pairs.all_pairs()
    findings: List[PairFinding] = []

    def add(pair: SpawnPair, rule: str, severity: Severity, msg: str) -> None:
        findings.append(
            PairFinding(pair, Diagnostic(rule, severity, msg, pc=None))
        )

    for pair in all_pairs:
        bad_boundary = False
        for name, pc in (("SP", pair.sp_pc), ("CQIP", pair.cqip_pc)):
            if not _on_boundary(pc):
                add(
                    pair,
                    "mid-instruction-pc",
                    Severity.ERROR,
                    f"{name} pc {pc!r} is not an instruction boundary",
                )
                bad_boundary = True
            elif not 0 <= pc < n:
                add(
                    pair,
                    "pc-out-of-range",
                    Severity.ERROR,
                    f"{name} pc {pc} outside program of size {n}",
                )
                bad_boundary = True
        if bad_boundary:
            continue

        if pair.cqip_pc not in cfg.by_pc:
            add(
                pair,
                "cqip-not-block-leader",
                Severity.WARNING,
                f"CQIP pc {pair.cqip_pc} is not a basic-block leader; the "
                "speculative thread would start mid-block",
            )

        distance = cfg.shortest_distance(pair.sp_pc, pair.cqip_pc)
        if distance is None:
            add(
                pair,
                "cqip-unreachable",
                Severity.ERROR,
                f"no static path from SP {pair.sp_pc} to CQIP "
                f"{pair.cqip_pc}; the thread could never be validated",
            )
            continue
        if distance < config.min_static_distance:
            add(
                pair,
                "thread-too-short",
                Severity.WARNING,
                f"shortest static SP->CQIP distance is {distance:.0f} "
                f"instruction(s) (threshold {config.min_static_distance:.0f})",
            )

        if config.check_live_ins:
            if liveness is None:
                liveness = solve_liveness(cfg)
            live_ins = liveness.live_before(pair.cqip_pc)
            written = _region_written_regs(cfg, pair.sp_pc, pair.cqip_pc)
            clobbered = sorted(live_ins & written)
            if clobbered:
                regs = ", ".join(f"r{r}" for r in clobbered)
                add(
                    pair,
                    "live-in-clobbered",
                    Severity.WARNING,
                    f"thread live-in(s) {regs} may be written between SP "
                    "and CQIP; the spawned thread depends on value "
                    "prediction for them",
                )

        if config.check_postdominance:
            if postdom is None:
                postdom = postdominator_tree(cfg)
            sp_bid = cfg.block_containing(pair.sp_pc).bid
            cq_bid = cfg.block_containing(pair.cqip_pc).bid
            if sp_bid != cq_bid and not postdom.dominates(cq_bid, sp_bid):
                add(
                    pair,
                    "cqip-not-postdominator",
                    Severity.INFO,
                    "CQIP does not postdominate SP (quasi-independent, not "
                    "control-independent: reach probability < 1 statically)",
                )

    return PairValidationReport(all_pairs, findings)


def filter_statically_valid(
    program: Program,
    pairs: SpawnPairSet,
    config: Optional[PairValidationConfig] = None,
) -> SpawnPairSet:
    """Drop pairs with error-level findings; keep provenance counters.

    Returns:
        ``pairs`` unchanged when nothing was rejected, otherwise a new
        :class:`SpawnPairSet` with only the statically-valid pairs.
    """
    report = validate_pairs(program, pairs, config)
    if not report.errors():
        return pairs
    return SpawnPairSet(
        report.valid_pairs(),
        candidates_evaluated=pairs.candidates_evaluated,
    )
