"""Docstring audit: every public entry point documents itself.

AST-based (nothing is imported), so it is safe to run in CI on any
checkout.  The audit walks the targeted modules and checks that every
public module, class, function and method carries a docstring whose
first line is a one-line summary, and that functions taking arguments or
returning values mention them (an ``Args:``/``Returns:`` section, Sphinx
field lists, or simply naming the parameters in prose).

Rules
-----

- ``missing-docstring`` (warning) — public def/class with no docstring;
- ``missing-summary`` (warning) — docstring whose first line is blank;
- ``args-undocumented`` (info) — function with two or more parameters,
  none of which its docstring mentions;
- ``returns-undocumented`` (info) — function returning a value whose
  docstring never mentions a return.

``repro lint --docstrings`` prints the findings and exits 0 (warn-only,
the CI default) unless ``--strict`` is given.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

__all__ = ["DocIssue", "audit_docstrings", "DEFAULT_TARGETS", "DOC_RULES"]

#: Dotted modules/packages audited by default: the public entry points
#: named in the documentation pass (experiments, spawning, faults, the
#: processor configuration) plus the cache/engine layers they grew.
DEFAULT_TARGETS: Tuple[str, ...] = (
    "repro.experiments",
    "repro.spawning",
    "repro.faults",
    "repro.cmt.config",
    "repro.cmt.event_core",
    "repro.cache",
    "repro.analysis",
    "repro.serve",
    "repro.dist",
    "repro.dashboard",
)

#: rule id -> (severity label, one-line description).
DOC_RULES = {
    "missing-docstring": ("warning", "public def/class without a docstring"),
    "missing-summary": ("warning", "docstring without a one-line summary"),
    "args-undocumented": ("info", "no parameter is mentioned in the docstring"),
    "returns-undocumented": ("info", "return value is never documented"),
}


@dataclass(frozen=True)
class DocIssue:
    """One docstring finding.

    Attributes:
        module: Dotted module name the symbol lives in.
        qualname: Qualified symbol name (``Class.method`` for methods).
        lineno: 1-based source line of the definition.
        rule: Rule id (a key of :data:`DOC_RULES`).
        message: Human-readable explanation.
    """

    module: str
    qualname: str
    lineno: int
    rule: str
    message: str

    @property
    def severity(self) -> str:
        """The rule's severity label (``warning`` or ``info``)."""
        return DOC_RULES[self.rule][0]

    def format(self) -> str:
        """Return the one-line rendering used by the CLI."""
        return (
            f"{self.module}:{self.lineno} [{self.severity}] "
            f"{self.qualname}: {self.message} ({self.rule})"
        )


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _params_of(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return [n for n in names if n not in ("self", "cls")]


def _returns_value(node: ast.AST) -> bool:
    defs = (ast.FunctionDef, ast.AsyncFunctionDef)
    for child in ast.walk(node):
        if isinstance(child, defs) and child is not node:
            continue  # nested defs are inspected on their own
        if isinstance(child, ast.Return) and child.value is not None:
            value = child.value
            if not (isinstance(value, ast.Constant) and value.value is None):
                return True
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _is_property(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", ()):
        name = decorator
        if isinstance(name, ast.Attribute):
            name = name.attr
        elif isinstance(name, ast.Name):
            name = name.id
        else:
            continue
        if name in ("property", "cached_property", "setter"):
            return True
    return False


def _check_def(
    module: str, qualname: str, node: ast.AST, issues: List[DocIssue]
) -> None:
    doc = ast.get_docstring(node, clean=True)
    if doc is None:
        issues.append(
            DocIssue(module, qualname, node.lineno, "missing-docstring",
                     "add a one-line summary docstring")
        )
        return
    first_line = doc.splitlines()[0].strip() if doc else ""
    if not first_line:
        issues.append(
            DocIssue(module, qualname, node.lineno, "missing-summary",
                     "docstring should start with a one-line summary")
        )
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        lowered = doc.lower()
        params = _params_of(node)
        if len(params) >= 2 and not any(p.lower() in lowered for p in params):
            issues.append(
                DocIssue(module, qualname, node.lineno, "args-undocumented",
                         f"none of {params} appears in the docstring")
            )
        # Property getters read as attributes; their summary line already
        # describes the value, so no explicit "Returns" is demanded.
        if _returns_value(node) and not _is_property(node) and not any(
            token in lowered for token in ("return", "yield", ":rtype", "->")
        ):
            issues.append(
                DocIssue(module, qualname, node.lineno, "returns-undocumented",
                         "document what the function returns")
            )


def _audit_module(module: str, path: Path, issues: List[DocIssue]) -> None:
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        issues.append(
            DocIssue(module, "<module>", 1, "missing-docstring",
                     "add a module docstring")
        )
    # Names re-exported with leading underscores or dunder machinery are
    # skipped; only the public surface is audited.
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                _check_def(module, node.name, node, issues)
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            _check_def(module, node.name, node, issues)
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public(member.name):
                        _check_def(
                            module, f"{node.name}.{member.name}", member, issues
                        )


def _resolve(target: str, src_root: Path) -> List[Tuple[str, Path]]:
    """Module files of one dotted target (a module or a whole package)."""
    relative = Path(*target.split("."))
    module_file = src_root / relative.with_suffix(".py")
    package_dir = src_root / relative
    if module_file.is_file():
        return [(target, module_file)]
    if package_dir.is_dir():
        found = []
        for path in sorted(package_dir.rglob("*.py")):
            parts = path.relative_to(src_root).with_suffix("").parts
            if parts[-1] == "__init__":
                parts = parts[:-1]
            found.append((".".join(parts), path))
        return found
    raise FileNotFoundError(f"cannot resolve audit target {target!r}")


def audit_docstrings(
    targets: Sequence[str] = DEFAULT_TARGETS,
    src_root: Optional[Path] = None,
) -> List[DocIssue]:
    """Audit the given modules/packages for docstring completeness.

    Args:
        targets: Dotted module or package names (defaults to the public
            entry-point packages).
        src_root: Directory containing the ``repro`` package (defaults
            to the checkout this module was imported from).

    Returns:
        Every finding, ordered by module, line and rule.
    """
    if src_root is None:
        src_root = Path(__file__).resolve().parent.parent.parent
    issues: List[DocIssue] = []
    for target in targets:
        for module, path in _resolve(target, src_root):
            _audit_module(module, path, issues)
    issues.sort(key=lambda i: (i.module, i.lineno, i.rule))
    return issues
