"""Static memory-dependence and squash-risk analysis for (SP, CQIP) pairs.

The paper's cost model charges a spawned speculative thread for every
mis-predicted live-in and every inter-thread memory dependence violated at
runtime.  This module predicts both *statically*: an interval-based
may-alias analysis over base+offset address expressions finds the store/load
pairs that can violate a RAW dependence across the spawn (the thread reads
what the skipped-over region writes), and an induction-variable analysis
classifies each live-in register by how predictable its value is at the
spawning point.  Both feed a per-pair :class:`SquashRiskReport`:

- the *may-RAW set* over-approximates every cross-thread memory dependence
  any execution can exhibit, which makes it the soundness oracle for the
  replay sanitizer (``repro.analysis.sanitizer``) — a dynamic dependence
  outside the static may-set is a bug in one of the two analyses;
- the *live-in classes* form a small lattice (induction < affine < other <
  memory-carried) that maps onto the value-predictor menu: induction/affine
  values suit a stride predictor, memory-carried values defeat value
  prediction entirely and favour synchronisation.

The value domain is the classic integer-interval lattice, widened against
the natural-loop structure from :mod:`repro.analysis.dominators`: a register
updated only by recognised self-update shapes inside a loop (``r += c`` and
friends) is bounded by its entry value, the loop-guard limit and the
per-iteration growth, instead of iterating the transfer functions to a
fixpoint.  Results feed :func:`rank_pairs` (an optional re-ranking signal
for pair selection) and the dependence-aware ``repro lint`` rules.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import EdgeKind, StaticCFG
from repro.analysis.dataflow import (
    LivenessResult,
    ReachingDefsResult,
    inst_def,
    solve_liveness,
    solve_reaching,
)
from repro.analysis.dominators import NaturalLoop, dominator_tree, natural_loops
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.spawning.pairs import SpawnPair, SpawnPairSet

_INT_MIN = -(1 << 31)
_INT_MAX = (1 << 31) - 1
_MASK = 0xFFFFFFFF
_INF = float("inf")

#: Resolution depth cap: beyond this many nested definition lookups the
#: analysis widens to TOP/OTHER.  Keeps recursion bounded on long
#: definition chains; giving up early only loses precision, never soundness.
_DEPTH_LIMIT = 64


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; endpoints may be infinite.

    The abstract value of the address/value analysis: every concrete value
    the analysed expression can produce lies inside the interval.  ``lo``
    is finite or ``-inf`` and ``hi`` finite or ``+inf``, which keeps the
    arithmetic below free of ``inf - inf`` indeterminates.
    """

    lo: float
    hi: float

    @property
    def is_top(self) -> bool:
        """True for the unbounded interval (no information)."""
        return self.lo == -_INF and self.hi == _INF

    @property
    def is_bounded(self) -> bool:
        """True when both endpoints are finite."""
        return self.lo > -_INF and self.hi < _INF

    def hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def shift(self, offset: int) -> "Interval":
        """Return the interval translated by a constant ``offset``."""
        return Interval(self.lo + offset, self.hi + offset)

    def overlaps(self, other: "Interval") -> bool:
        """Return True when the two intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def contains(self, value: float) -> bool:
        """Return True when ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi


#: The no-information interval.
TOP = Interval(-_INF, _INF)


def _clamp32(iv: Interval) -> Interval:
    """Widen to TOP when a 32-bit two's-complement wrap is possible.

    The machine wraps every integer register write; an interval that never
    leaves the representable range is exact, anything else may alias an
    arbitrary wrapped value.
    """
    if iv.lo < _INT_MIN or iv.hi > _INT_MAX:
        return TOP
    return iv


def _add(a: Interval, b: Interval) -> Interval:
    """Interval sum (before wrap clamping)."""
    return Interval(a.lo + b.lo, a.hi + b.hi)


def _sub(a: Interval, b: Interval) -> Interval:
    """Interval difference (before wrap clamping)."""
    return Interval(a.lo - b.hi, a.hi - b.lo)


def _neg(a: Interval) -> Interval:
    """Interval negation."""
    return Interval(-a.hi, -a.lo)


def _mul(a: Interval, b: Interval) -> Interval:
    """Interval product; TOP unless both operands are fully bounded.

    Restricting to bounded operands avoids the ``inf * 0`` indeterminate
    and is all the address analysis needs (scaled induction variables).
    """
    if not (a.is_bounded and b.is_bounded):
        return TOP
    corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return Interval(min(corners), max(corners))


class LiveInClass(enum.IntEnum):
    """Predictability class of a speculative-thread live-in register.

    Ordered from most to least value-predictable; the pair-level class is
    the maximum over the live-in's reaching definitions, so one
    memory-carried producer taints the whole register.
    """

    INDUCTION = 0
    AFFINE = 1
    OTHER = 2
    MEMORY_CARRIED = 3

    def label(self) -> str:
        """Return the lower-case name used in reports and JSON."""
        return self.name.lower()


#: Lint/risk weight of each live-in class (roughly: expected mispredictions
#: per spawn under the best matching predictor).
_CLASS_WEIGHT: Dict[LiveInClass, float] = {
    LiveInClass.INDUCTION: 0.25,
    LiveInClass.AFFINE: 0.5,
    LiveInClass.OTHER: 1.0,
    LiveInClass.MEMORY_CARRIED: 2.0,
}

#: Opcodes whose result is an arithmetic combination of the sources —
#: affine-preserving for classification purposes.
_ARITH_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.ADDI,
        Opcode.SUB,
        Opcode.MOV,
        Opcode.SHLI,
        Opcode.MUL,
        Opcode.SHL,
    }
)


def region_pc_ranges(
    cfg: StaticCFG, sp_pc: int, cqip_pc: int
) -> List[Tuple[int, int]]:
    """Half-open pc ranges executable on some SP→CQIP path (CQIP exclusive).

    The region is every block B with SP →* B →* CQIP.  Within the CQIP
    block only instructions before the CQIP count (a path entering the
    block stops at the first CQIP occurrence); within the SP block,
    instructions before the SP count too when the block can be re-entered
    from inside the region (a looping path may revisit them before
    reaching the CQIP).

    Args:
        cfg: Static CFG of the program.
        sp_pc: Spawning-point pc.
        cqip_pc: Control quasi-independent point pc.

    Returns:
        Sorted list of ``(start_pc, end_pc)`` half-open ranges.
    """
    sp_block = cfg.block_containing(sp_pc)
    cq_block = cfg.block_containing(cqip_pc)
    from_sp = cfg.reachable_from(sp_block.bid)
    from_sp.add(sp_block.bid)
    to_cq: Set[int] = {cq_block.bid}
    stack = [cq_block.bid]
    while stack:
        cur = stack.pop()
        for pred in cfg.predecessors(cur):
            if pred not in to_cq:
                to_cq.add(pred)
                stack.append(pred)
    region = from_sp & to_cq

    ranges: List[Tuple[int, int]] = []
    for bid in sorted(region):
        block = cfg.blocks[bid]
        reentrant = any(p in region for p in cfg.predecessors(bid))
        if bid == sp_block.bid and bid == cq_block.bid:
            if cqip_pc > sp_pc:
                if reentrant:
                    ranges.append((block.start_pc, cqip_pc))
                else:
                    ranges.append((sp_pc, cqip_pc))
            else:
                # The path wraps around a cycle through this block.
                ranges.append((block.start_pc, cqip_pc))
                ranges.append((sp_pc, block.end_pc))
        elif bid == sp_block.bid:
            if reentrant:
                ranges.append((block.start_pc, block.end_pc))
            else:
                ranges.append((sp_pc, block.end_pc))
        elif bid == cq_block.bid:
            ranges.append((block.start_pc, cqip_pc))
        else:
            ranges.append((block.start_pc, block.end_pc))
    return ranges


def continuation_pc_ranges(cfg: StaticCFG, cqip_pc: int) -> List[Tuple[int, int]]:
    """Half-open pc ranges the speculative thread can execute from the CQIP.

    Everything from the CQIP to the end of its block, plus every block
    statically reachable from there; when the CQIP block lies on a cycle
    the whole block is included (it can re-execute).

    Args:
        cfg: Static CFG of the program.
        cqip_pc: The speculative thread's start pc.

    Returns:
        Sorted list of ``(start_pc, end_pc)`` half-open ranges.
    """
    cq_block = cfg.block_containing(cqip_pc)
    reach = cfg.reachable_from(cq_block.bid)
    ranges: List[Tuple[int, int]] = []
    if cq_block.bid not in reach:
        ranges.append((cqip_pc, cq_block.end_pc))
    for bid in sorted(reach):
        block = cfg.blocks[bid]
        ranges.append((block.start_pc, block.end_pc))
    return sorted(ranges)


def _pcs_in(ranges: Sequence[Tuple[int, int]]) -> Iterator[int]:
    """Iterate every pc covered by a list of half-open ranges."""
    for start, end in ranges:
        yield from range(start, end)


@dataclass(frozen=True)
class SquashRiskReport:
    """Static squash-risk summary for one (SP, CQIP) pair.

    ``may_raw`` is the sound over-approximation: every cross-thread RAW
    memory dependence any execution of this pair can exhibit appears here
    as a ``(store_pc, load_pc)`` tuple.  ``likely_raw`` is the subset whose
    address intervals are both bounded — precise enough that an overlap is
    a strong signal rather than mere ignorance.  ``live_in_classes`` maps
    each live-in register the skipped region may clobber to its
    :class:`LiveInClass`; ``recommended_predictor`` and ``risk_score``
    condense the report for ranking and linting.
    """

    sp_pc: int
    cqip_pc: int
    store_pcs: Tuple[int, ...]
    load_pcs: Tuple[int, ...]
    may_raw: FrozenSet[Tuple[int, int]]
    likely_raw: FrozenSet[Tuple[int, int]]
    live_in_classes: Tuple[Tuple[int, LiveInClass], ...]
    recommended_predictor: str
    risk_score: float

    def memory_carried_live_ins(self) -> List[int]:
        """Return the live-in registers classified as memory-carried."""
        return [
            reg
            for reg, cls in self.live_in_classes
            if cls is LiveInClass.MEMORY_CARRIED
        ]

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable view of the report."""
        return {
            "sp_pc": self.sp_pc,
            "cqip_pc": self.cqip_pc,
            "store_pcs": list(self.store_pcs),
            "load_pcs": list(self.load_pcs),
            "may_raw": sorted(list(p) for p in self.may_raw),
            "likely_raw": sorted(list(p) for p in self.likely_raw),
            "live_in_classes": {
                f"r{reg}": cls.label() for reg, cls in self.live_in_classes
            },
            "recommended_predictor": self.recommended_predictor,
            "risk_score": round(self.risk_score, 4),
        }

    def format(self) -> str:
        """Return a one-line human-readable summary."""
        classes = ", ".join(
            f"r{reg}:{cls.label()}" for reg, cls in self.live_in_classes
        )
        return (
            f"SP {self.sp_pc} -> CQIP {self.cqip_pc}  "
            f"risk={self.risk_score:.2f} vp={self.recommended_predictor} "
            f"may_raw={len(self.may_raw)} likely_raw={len(self.likely_raw)} "
            f"live_ins=[{classes or '-'}]"
        )


class DependenceAnalysis:
    """Whole-program value/taint analysis with per-pair risk reports.

    One instance amortises the CFG, dataflow and loop analyses across
    every pair queried; :meth:`analyze_pair` results are memoised.

    Args:
        program: The program to analyse.
        cfg: Optional pre-built static CFG (built on demand otherwise).
    """

    def __init__(self, program: Program, cfg: Optional[StaticCFG] = None):
        self.program = program
        self.cfg = cfg or StaticCFG(program)
        self.reaching: ReachingDefsResult = solve_reaching(self.cfg)
        self.liveness: LivenessResult = solve_liveness(self.cfg)
        self.loops: List[NaturalLoop] = natural_loops(
            self.cfg, dominator_tree(self.cfg)
        )
        self._interval_memo: Dict[int, Interval] = {}
        self._interval_stack: Set[int] = set()
        self._taint_memo: Dict[int, LiveInClass] = {}
        self._taint_stack: Set[int] = set()
        self._induction_memo: Dict[Tuple[int, int], Optional[Interval]] = {}
        self._induction_stack: Set[Tuple[int, int]] = set()
        self._cyclic_memo: Dict[int, Set[int]] = {}
        self._loop_of: Dict[int, Optional[NaturalLoop]] = {}
        self._pair_memo: Dict[Tuple[int, int], SquashRiskReport] = {}
        self._depth = 0

    # ------------------------------------------------------------------
    # Value intervals.
    # ------------------------------------------------------------------

    def use_interval(self, pc: int, reg: int) -> Interval:
        """Abstract value of ``reg`` just before executing ``pc``.

        The hull over every reaching definition of the register; registers
        with no reaching definition are the machine's zero-initialised
        value.

        Args:
            pc: Program counter of the reading instruction.
            reg: Register number read.

        Returns:
            A sound :class:`Interval` for the register's value.
        """
        if reg == 0:
            return Interval(0.0, 0.0)
        defs = sorted(
            d
            for d in self.reaching.defs_reaching(pc)
            if inst_def(self.program[d]) == reg
        )
        if not defs:
            return Interval(0.0, 0.0)
        result = self._def_interval(defs[0])
        for d in defs[1:]:
            result = result.hull(self._def_interval(d))
        return result

    def _def_interval(self, d: int) -> Interval:
        """Memoised abstract value produced by the definition at pc ``d``."""
        cached = self._interval_memo.get(d)
        if cached is not None:
            return cached
        if d in self._interval_stack or self._depth >= _DEPTH_LIMIT:
            return TOP
        self._interval_stack.add(d)
        self._depth += 1
        try:
            result = self._compute_def_interval(d)
        finally:
            self._depth -= 1
            self._interval_stack.discard(d)
        self._interval_memo[d] = result
        return result

    def _compute_def_interval(self, d: int) -> Interval:
        """Uncached transfer of one definition (induction-aware)."""
        inst = self.program[d]
        reg = inst_def(inst)
        if reg is not None and self._self_update_step(d, reg) is not None:
            loop = self._innermost_loop(self.cfg.block_containing(d).bid)
            if loop is not None:
                widened = self._induction_interval(loop, reg)
                if widened is not None:
                    return widened
        return self._transfer(d, inst)

    def _transfer(self, d: int, inst: Instruction) -> Interval:
        """Plain (loop-oblivious) transfer function of one instruction."""
        op = inst.op
        imm = inst.imm if inst.imm is not None else 0

        def u(i: int) -> Interval:
            return self.use_interval(d, inst.srcs[i])

        if op is Opcode.LI:
            return _clamp32(Interval(float(imm), float(imm)))
        if op is Opcode.MOV:
            return u(0)
        if op is Opcode.ADD:
            return _clamp32(_add(u(0), u(1)))
        if op is Opcode.ADDI:
            return _clamp32(u(0).shift(imm))
        if op is Opcode.SUB:
            return _clamp32(_sub(u(0), u(1)))
        if op is Opcode.MUL:
            return _clamp32(_mul(u(0), u(1)))
        if op in (Opcode.SLT, Opcode.SLTI):
            return Interval(0.0, 1.0)
        if op is Opcode.ANDI:
            operand = u(0)
            if imm >= 0:
                hi = float(imm)
                if operand.lo >= 0 and operand.hi < hi:
                    hi = operand.hi
                return Interval(0.0, hi)
            if operand.lo >= 0 and operand.hi < _INF:
                return Interval(0.0, operand.hi)
            return TOP
        if op is Opcode.AND:
            bounds = [
                iv.hi for iv in (u(0), u(1)) if iv.lo >= 0 and iv.hi < _INF
            ]
            if bounds:
                return Interval(0.0, min(bounds))
            return TOP
        if op in (Opcode.ORI, Opcode.XORI):
            operand = u(0)
            if imm >= 0 and operand.lo >= 0 and operand.hi < _INF:
                bits = max(int(operand.hi).bit_length(), imm.bit_length())
                return Interval(0.0, float((1 << bits) - 1))
            return TOP
        if op in (Opcode.OR, Opcode.XOR):
            a, b = u(0), u(1)
            if a.lo >= 0 and b.lo >= 0 and a.is_bounded and b.is_bounded:
                bits = max(
                    int(a.hi).bit_length(), int(b.hi).bit_length()
                )
                return Interval(0.0, float((1 << bits) - 1))
            return TOP
        if op is Opcode.SHRI:
            sh = imm & 31
            operand = u(0)
            if sh == 0:
                # (x & MASK) >> 0 wraps back to x.
                return operand
            if operand.lo >= 0 and operand.hi <= _INT_MAX:
                return Interval(
                    float(int(operand.lo) >> sh), float(int(operand.hi) >> sh)
                )
            return Interval(0.0, float(_MASK >> sh))
        if op is Opcode.SHR:
            operand = u(0)
            if operand.lo >= 0 and operand.hi <= _INT_MAX:
                return Interval(0.0, operand.hi)
            return TOP
        if op is Opcode.SHLI:
            operand = u(0)
            factor = 1 << (imm & 31)
            if operand.is_bounded:
                return _clamp32(
                    Interval(operand.lo * factor, operand.hi * factor)
                )
            return TOP
        if op is Opcode.REM:
            divisor = u(1)
            if divisor.is_bounded:
                magnitude = max(abs(int(divisor.lo)), abs(int(divisor.hi)))
                if magnitude == 0:
                    return Interval(0.0, 0.0)
                dividend = u(0)
                lo = 0.0 if dividend.lo >= 0 else float(-(magnitude - 1))
                hi = 0.0 if dividend.hi <= 0 else float(magnitude - 1)
                return Interval(lo, hi)
            return TOP
        # LOAD, DIV, SHL-by-register overflow, floating point, …
        return TOP

    # ------------------------------------------------------------------
    # Induction-variable widening.
    # ------------------------------------------------------------------

    def _innermost_loop(self, bid: int) -> Optional[NaturalLoop]:
        """Smallest natural loop whose body contains block ``bid``."""
        if bid not in self._loop_of:
            best: Optional[NaturalLoop] = None
            for loop in self.loops:
                if bid in loop.body and (
                    best is None or len(loop.body) < len(best.body)
                ):
                    best = loop
            self._loop_of[bid] = best
        return self._loop_of[bid]

    def _self_update_step(self, d: int, reg: int) -> Optional[Interval]:
        """Per-execution increment when ``d`` is a self-update of ``reg``.

        Recognised shapes: ``addi r, r, c`` / ``add r, r, s`` /
        ``sub r, r, s`` / ``mov r, r``.  Returns None for anything else.
        """
        inst = self.program[d]
        op = inst.op
        srcs = inst.srcs
        if op is Opcode.ADDI and srcs == (reg,):
            imm = inst.imm if inst.imm is not None else 0
            return Interval(float(imm), float(imm))
        if op is Opcode.MOV and srcs == (reg,):
            return Interval(0.0, 0.0)
        if (
            op is Opcode.ADD
            and len(srcs) == 2
            and (srcs[0] == reg) != (srcs[1] == reg)
        ):
            other = srcs[1] if srcs[0] == reg else srcs[0]
            return self.use_interval(d, other)
        if (
            op is Opcode.SUB
            and len(srcs) == 2
            and srcs[0] == reg
            and srcs[1] != reg
        ):
            return _neg(self.use_interval(d, srcs[1]))
        return None

    def _induction_interval(
        self, loop: NaturalLoop, reg: int
    ) -> Optional[Interval]:
        """Widened interval of an induction register over a natural loop.

        None when the register is not a pure induction of the loop (some
        in-body definition is not a recognised self-update).
        """
        key = (loop.head, reg)
        if key in self._induction_memo:
            return self._induction_memo[key]
        if key in self._induction_stack:
            return None
        self._induction_stack.add(key)
        try:
            result = self._compute_induction(loop, reg)
        finally:
            self._induction_stack.discard(key)
        self._induction_memo[key] = result
        return result

    def _compute_induction(
        self, loop: NaturalLoop, reg: int
    ) -> Optional[Interval]:
        """Uncached induction widening (see :meth:`_induction_interval`)."""
        program = self.program
        cfg = self.cfg
        body_defs: List[int] = []
        for bid in sorted(loop.body):
            block = cfg.blocks[bid]
            for pc in range(block.start_pc, block.end_pc):
                if inst_def(program[pc]) == reg:
                    body_defs.append(pc)
        if not body_defs:
            return None
        steps: List[Interval] = []
        for pc in body_defs:
            step = self._self_update_step(pc, reg)
            if step is None:
                return None
            steps.append(step)
        pos_growth = sum(max(s.hi, 0.0) for s in steps)
        neg_growth = sum(min(s.lo, 0.0) for s in steps)

        # Entry value: definitions reaching the head from outside the body,
        # hulled with 0 for paths on which the register is never written.
        head_pc = cfg.blocks[loop.head].start_pc
        init = Interval(0.0, 0.0)
        for d in sorted(self.reaching.defs_reaching(head_pc)):
            if inst_def(program[d]) != reg:
                continue
            if cfg.block_containing(d).bid in loop.body:
                continue
            init = init.hull(self._def_interval(d))

        lo: float = -_INF
        hi: float = _INF
        if pos_growth == 0:
            hi = init.hi  # monotone non-increasing
        if neg_growth == 0:
            lo = init.lo  # monotone non-decreasing
        if pos_growth > 0:
            upper = self._head_bound(loop, reg, upper=True)
            if upper is not None and self._defs_execute_once(loop, body_defs):
                hi = upper + pos_growth
        if neg_growth < 0:
            lower = self._head_bound(loop, reg, upper=False)
            if lower is not None and self._defs_execute_once(loop, body_defs):
                lo = lower + neg_growth
        if lo == -_INF and hi == _INF:
            return TOP
        return _clamp32(Interval(lo, hi))

    def _head_bound(
        self, loop: NaturalLoop, reg: int, upper: bool
    ) -> Optional[float]:
        """Bound on ``reg`` guaranteed on *every* edge into the loop head.

        Entry edges and back edges are checked uniformly: each must be a
        branch shape implying ``reg < s`` / ``reg <= s`` (upper) or
        ``reg >= s`` / ``reg > s`` (lower).  Returns the loosest such bound,
        or None when any head-entering edge carries no recognised guard.
        """
        cfg = self.cfg
        head_pc = cfg.blocks[loop.head].start_pc
        best: Optional[float] = None
        preds = cfg.preds[loop.head]
        if not preds:
            return None
        for src, kind in preds:
            term_pc = cfg.blocks[src].last_pc
            term = self.program[term_pc]
            srcs = term.srcs
            if len(srcs) != 2 or term.op not in (Opcode.BLT, Opcode.BGE):
                return None
            taken = kind is EdgeKind.TAKEN
            if taken and term.target != head_pc:
                return None
            if not taken and kind is not EdgeKind.FALLTHROUGH:
                return None
            # Condition known true on this edge: the branch condition when
            # taken, its negation when falling through.
            # BLT a, b  taken => a < b   fallthrough => a >= b
            # BGE a, b  taken => a >= b  fallthrough => a < b
            a, b = srcs
            lt = (term.op is Opcode.BLT) == taken  # a < b holds, else a >= b
            bound: Optional[float] = None
            if upper:
                if lt and a == reg and b != reg:
                    bound = self.use_interval(term_pc, b).hi - 1
                elif not lt and b == reg and a != reg:
                    bound = self.use_interval(term_pc, a).hi
            else:
                if not lt and a == reg and b != reg:
                    bound = self.use_interval(term_pc, b).lo
                elif lt and b == reg and a != reg:
                    bound = self.use_interval(term_pc, a).lo + 1
            if bound is None:
                return None
            if best is None:
                best = bound
            else:
                best = max(best, bound) if upper else min(best, bound)
        return best

    def _defs_execute_once(
        self, loop: NaturalLoop, body_defs: Sequence[int]
    ) -> bool:
        """True when no body definition can run twice per head visit.

        A definition inside a nested inner loop executes an unbounded
        number of times between head visits, which would invalidate the
        entry-plus-one-step bound.
        """
        cyclic = self._cyclic_blocks(loop)
        return all(
            self.cfg.block_containing(pc).bid not in cyclic
            for pc in body_defs
        )

    def _cyclic_blocks(self, loop: NaturalLoop) -> Set[int]:
        """Body blocks (head excluded) lying on a cycle avoiding the head."""
        cached = self._cyclic_memo.get(loop.head)
        if cached is not None:
            return cached
        cfg = self.cfg
        inner = set(loop.body) - {loop.head}
        cyclic: Set[int] = set()
        for bid in inner:
            seen: Set[int] = set()
            stack = [dst for dst in cfg.successors(bid) if dst in inner]
            while stack:
                cur = stack.pop()
                if cur == bid:
                    cyclic.add(bid)
                    break
                if cur in seen:
                    continue
                seen.add(cur)
                stack.extend(
                    dst for dst in cfg.successors(cur) if dst in inner
                )
        self._cyclic_memo[loop.head] = cyclic
        return cyclic

    # ------------------------------------------------------------------
    # Live-in classification.
    # ------------------------------------------------------------------

    def use_taint(self, pc: int, reg: int) -> LiveInClass:
        """Predictability class of ``reg``'s value just before ``pc``.

        Args:
            pc: Program counter of the reading instruction.
            reg: Register number read.

        Returns:
            The worst (largest) :class:`LiveInClass` over the register's
            reaching definitions.
        """
        if reg == 0:
            return LiveInClass.AFFINE
        defs = [
            d
            for d in self.reaching.defs_reaching(pc)
            if inst_def(self.program[d]) == reg
        ]
        if not defs:
            return LiveInClass.AFFINE
        return max(self._def_taint(d) for d in sorted(defs))

    def _def_taint(self, d: int) -> LiveInClass:
        """Memoised predictability class of the definition at pc ``d``."""
        cached = self._taint_memo.get(d)
        if cached is not None:
            return cached
        if d in self._taint_stack or self._depth >= _DEPTH_LIMIT:
            return LiveInClass.OTHER
        self._taint_stack.add(d)
        self._depth += 1
        try:
            result = self._compute_def_taint(d)
        finally:
            self._depth -= 1
            self._taint_stack.discard(d)
        self._taint_memo[d] = result
        return result

    def _compute_def_taint(self, d: int) -> LiveInClass:
        """Uncached predictability class of one definition."""
        inst = self.program[d]
        op = inst.op
        if op is Opcode.LOAD:
            return LiveInClass.MEMORY_CARRIED
        reg = inst_def(inst)
        if reg is not None and self._self_update_step(d, reg) is not None:
            return LiveInClass.INDUCTION
        if op is Opcode.LI:
            return LiveInClass.AFFINE
        src_taints = [self.use_taint(d, r) for r in inst.srcs if r != 0]
        worst = max(src_taints) if src_taints else LiveInClass.AFFINE
        if op in _ARITH_OPS:
            return LiveInClass.AFFINE if worst <= LiveInClass.AFFINE else worst
        if worst is LiveInClass.MEMORY_CARRIED:
            return LiveInClass.MEMORY_CARRIED
        return LiveInClass.OTHER

    def _live_in_classes(
        self, cqip_pc: int, region: Sequence[Tuple[int, int]]
    ) -> Tuple[Tuple[int, LiveInClass], ...]:
        """Classify the thread live-ins the SP→CQIP region may clobber."""
        live = self.liveness.live_before(cqip_pc)
        region_defs: Dict[int, List[int]] = {}
        for pc in _pcs_in(region):
            reg = inst_def(self.program[pc])
            if reg is not None and reg in live:
                region_defs.setdefault(reg, []).append(pc)
        return tuple(
            (reg, max(self._def_taint(d) for d in region_defs[reg]))
            for reg in sorted(region_defs)
        )

    # ------------------------------------------------------------------
    # Pair reports.
    # ------------------------------------------------------------------

    def analyze_pair(self, sp_pc: int, cqip_pc: int) -> SquashRiskReport:
        """Build (or fetch the memoised) report for one (SP, CQIP) pair.

        Args:
            sp_pc: Spawning-point pc.
            cqip_pc: Control quasi-independent point pc.

        Returns:
            The pair's :class:`SquashRiskReport`.

        Raises:
            ValueError: When either pc lies outside the program text.
        """
        key = (sp_pc, cqip_pc)
        cached = self._pair_memo.get(key)
        if cached is not None:
            return cached
        region = region_pc_ranges(self.cfg, sp_pc, cqip_pc)
        continuation = continuation_pc_ranges(self.cfg, cqip_pc)
        program = self.program

        stores: List[Tuple[int, Interval]] = []
        for pc in _pcs_in(region):
            inst = program[pc]
            if inst.op is Opcode.STORE:
                offset = inst.imm if inst.imm is not None else 0
                stores.append(
                    (pc, self.use_interval(pc, inst.srcs[1]).shift(offset))
                )
        loads: List[Tuple[int, Interval]] = []
        for pc in _pcs_in(continuation):
            inst = program[pc]
            if inst.op is Opcode.LOAD:
                offset = inst.imm if inst.imm is not None else 0
                loads.append(
                    (pc, self.use_interval(pc, inst.srcs[0]).shift(offset))
                )

        may: Set[Tuple[int, int]] = set()
        likely: Set[Tuple[int, int]] = set()
        for store_pc, store_addr in stores:
            for load_pc, load_addr in loads:
                if store_addr.overlaps(load_addr):
                    may.add((store_pc, load_pc))
                    if store_addr.is_bounded and load_addr.is_bounded:
                        likely.add((store_pc, load_pc))

        classes = self._live_in_classes(cqip_pc, region)
        report = SquashRiskReport(
            sp_pc=sp_pc,
            cqip_pc=cqip_pc,
            store_pcs=tuple(pc for pc, _ in stores),
            load_pcs=tuple(pc for pc, _ in loads),
            may_raw=frozenset(may),
            likely_raw=frozenset(likely),
            live_in_classes=classes,
            recommended_predictor=_recommend(classes),
            risk_score=_risk_score(classes, may, likely),
        )
        self._pair_memo[key] = report
        return report


def _recommend(classes: Tuple[Tuple[int, LiveInClass], ...]) -> str:
    """Value-predictor recommendation from the live-in classes."""
    if not classes:
        return "none"
    worst = max(cls for _, cls in classes)
    if worst <= LiveInClass.AFFINE:
        return "stride"
    if worst is LiveInClass.MEMORY_CARRIED:
        return "sync"
    return "fcm"


def _risk_score(
    classes: Tuple[Tuple[int, LiveInClass], ...],
    may: Set[Tuple[int, int]],
    likely: Set[Tuple[int, int]],
) -> float:
    """Scalar squash-risk estimate (live-in weights + RAW counts)."""
    score = sum(_CLASS_WEIGHT[cls] for _, cls in classes)
    score += 1.0 * min(len(likely), 8)
    score += 0.125 * min(len(may), 16)
    return score


def analyze_pairs(
    program: Program,
    pairs: SpawnPairSet,
    cfg: Optional[StaticCFG] = None,
    analysis: Optional[DependenceAnalysis] = None,
) -> Dict[Tuple[int, int], SquashRiskReport]:
    """Risk reports for every pair (alternatives included) in a pair set.

    Pairs whose pcs lie outside the program are silently skipped (they can
    never spawn; the static validator rejects them separately).

    Args:
        program: Program the pairs refer to.
        pairs: The pair set to analyse.
        cfg: Optional pre-built static CFG.
        analysis: Optional shared :class:`DependenceAnalysis` instance.

    Returns:
        ``{(sp_pc, cqip_pc): SquashRiskReport}`` for the analysable pairs.
    """
    analysis = analysis or DependenceAnalysis(program, cfg)
    reports: Dict[Tuple[int, int], SquashRiskReport] = {}
    for pair in pairs.all_pairs():
        try:
            reports[pair.key()] = analysis.analyze_pair(
                pair.sp_pc, pair.cqip_pc
            )
        except ValueError:
            continue
    return reports


def rank_pairs(
    program: Program,
    pairs: SpawnPairSet,
    cfg: Optional[StaticCFG] = None,
    analysis: Optional[DependenceAnalysis] = None,
) -> SpawnPairSet:
    """Re-rank a pair set by dividing each score by ``1 + risk_score``.

    Pair identity and membership are untouched — only the per-SP
    preference order among CQIP alternatives can change, steering the
    processor toward pairs whose live-ins are predictable and whose
    skipped region is unlikely to feed the speculative thread through
    memory.

    Args:
        program: Program the pairs refer to.
        pairs: The pair set to re-rank.
        cfg: Optional pre-built static CFG.
        analysis: Optional shared :class:`DependenceAnalysis` instance.

    Returns:
        A new :class:`SpawnPairSet` with adjusted scores.
    """
    analysis = analysis or DependenceAnalysis(program, cfg)
    rescored: List[SpawnPair] = []
    for pair in pairs.all_pairs():
        try:
            report = analysis.analyze_pair(pair.sp_pc, pair.cqip_pc)
        except ValueError:
            rescored.append(pair)
            continue
        rescored.append(
            dataclasses.replace(
                pair, score=pair.score / (1.0 + report.risk_score)
            )
        )
    return SpawnPairSet(
        rescored, candidates_evaluated=pairs.candidates_evaluated
    )
