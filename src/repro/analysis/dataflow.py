"""Iterative dataflow over the static CFG: liveness and reaching definitions.

Both analyses run on the whole-program graph (call and return edges
included), which makes them context-insensitive but sound: values passed to
subroutines through the argument registers flow into the callee, and values
produced for the caller flow back through the return edges.  Register 0 is
hardwired zero and excluded everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import StaticCFG
from repro.isa.instructions import Instruction


def inst_def(inst: Instruction) -> Optional[int]:
    """Return the register ``inst`` defines (None for stores, branches, r0)."""
    if inst.dst is None or inst.dst == 0:
        return None
    return inst.dst


def inst_uses(inst: Instruction) -> Tuple[int, ...]:
    """Return the registers ``inst`` reads (r0 excluded)."""
    return tuple(reg for reg in inst.srcs if reg != 0)


class LivenessResult:
    """Per-block live-in/live-out register sets plus per-pc queries."""

    def __init__(
        self,
        cfg: StaticCFG,
        live_in: Dict[int, FrozenSet[int]],
        live_out: Dict[int, FrozenSet[int]],
    ):
        self.cfg = cfg
        self.live_in = live_in
        self.live_out = live_out

    def live_before(self, pc: int) -> FrozenSet[int]:
        """Return the registers live immediately before executing ``pc``."""
        block = self.cfg.block_containing(pc)
        live = set(self.live_out[block.bid])
        for cur in range(block.end_pc - 1, pc - 1, -1):
            inst = self.cfg.program[cur]
            defined = inst_def(inst)
            if defined is not None:
                live.discard(defined)
            live.update(inst_uses(inst))
        return frozenset(live)

    def live_after(self, pc: int) -> FrozenSet[int]:
        """Return the registers live immediately after executing ``pc``."""
        block = self.cfg.block_containing(pc)
        if pc == block.last_pc:
            return self.live_out[block.bid]
        return self.live_before(pc + 1)


def solve_liveness(cfg: StaticCFG) -> LivenessResult:
    """Backward may-analysis: which registers may be read before rewrite.

    Returns:
        A :class:`LivenessResult` with per-block and per-pc queries.
    """
    use: Dict[int, Set[int]] = {}
    defs: Dict[int, Set[int]] = {}
    for block in cfg.blocks:
        block_use: Set[int] = set()
        block_def: Set[int] = set()
        for pc in range(block.start_pc, block.end_pc):
            inst = cfg.program[pc]
            for reg in inst_uses(inst):
                if reg not in block_def:
                    block_use.add(reg)
            defined = inst_def(inst)
            if defined is not None:
                block_def.add(defined)
        use[block.bid] = block_use
        defs[block.bid] = block_def

    live_in: Dict[int, Set[int]] = {b.bid: set() for b in cfg.blocks}
    live_out: Dict[int, Set[int]] = {b.bid: set() for b in cfg.blocks}
    worklist = [b.bid for b in cfg.blocks]
    in_worklist = set(worklist)
    while worklist:
        bid = worklist.pop()
        in_worklist.discard(bid)
        out: Set[int] = set()
        for succ in cfg.successors(bid):
            out |= live_in[succ]
        new_in = use[bid] | (out - defs[bid])
        live_out[bid] = out
        if new_in != live_in[bid]:
            live_in[bid] = new_in
            for pred in cfg.predecessors(bid):
                if pred not in in_worklist:
                    in_worklist.add(pred)
                    worklist.append(pred)
    return LivenessResult(
        cfg,
        {bid: frozenset(s) for bid, s in live_in.items()},
        {bid: frozenset(s) for bid, s in live_out.items()},
    )


@dataclass(frozen=True)
class UndefinedRead:
    """A register read with no reaching definition on any static path."""

    pc: int
    reg: int


class ReachingDefsResult:
    """Per-block sets of definition sites (pcs) reaching the block entry."""

    def __init__(
        self,
        cfg: StaticCFG,
        reach_in: Dict[int, FrozenSet[int]],
        reach_out: Dict[int, FrozenSet[int]],
    ):
        self.cfg = cfg
        self.reach_in = reach_in
        self.reach_out = reach_out

    def defs_reaching(self, pc: int) -> FrozenSet[int]:
        """Return the def sites whose value may be observable before ``pc``."""
        block = self.cfg.block_containing(pc)
        program = self.cfg.program
        local: Set[int] = set()
        regs_defined: Set[int] = set()
        for cur in range(block.start_pc, pc):
            defined = inst_def(program[cur])
            if defined is not None:
                local = {d for d in local if inst_def(program[d]) != defined}
                local.add(cur)
                regs_defined.add(defined)
        inherited = {
            d
            for d in self.reach_in[block.bid]
            if inst_def(program[d]) not in regs_defined
        }
        return frozenset(inherited | local)

    def undefined_reads(self) -> List[UndefinedRead]:
        """Return reads (in reachable blocks) with no reaching definition.

        The machine zero-initialises registers, so these are suspicious
        rather than fatal — typically a workload-generator bug.
        """
        program = self.cfg.program
        result: List[UndefinedRead] = []
        for bid in sorted(self.cfg.reachable_blocks()):
            block = self.cfg.blocks[bid]
            defined_regs = {
                inst_def(program[d]) for d in self.reach_in[bid]
            }
            for pc in range(block.start_pc, block.end_pc):
                inst = program[pc]
                for reg in inst_uses(inst):
                    if reg not in defined_regs:
                        result.append(UndefinedRead(pc=pc, reg=reg))
                defined = inst_def(inst)
                if defined is not None:
                    defined_regs.add(defined)
        return result


def solve_reaching(cfg: StaticCFG) -> ReachingDefsResult:
    """Forward may-analysis: which definition sites reach each block.

    Returns:
        A :class:`ReachingDefsResult` with per-block and per-pc queries.
    """
    program = cfg.program
    gen: Dict[int, Set[int]] = {}
    kill_regs: Dict[int, Set[int]] = {}
    defs_of_reg: Dict[int, Set[int]] = {}
    for pc, inst in enumerate(program):
        defined = inst_def(inst)
        if defined is not None:
            defs_of_reg.setdefault(defined, set()).add(pc)
    for block in cfg.blocks:
        block_gen: Dict[int, int] = {}
        for pc in range(block.start_pc, block.end_pc):
            defined = inst_def(program[pc])
            if defined is not None:
                block_gen[defined] = pc
        gen[block.bid] = set(block_gen.values())
        kill_regs[block.bid] = set(block_gen.keys())

    reach_in: Dict[int, Set[int]] = {b.bid: set() for b in cfg.blocks}
    reach_out: Dict[int, Set[int]] = {b.bid: set() for b in cfg.blocks}
    worklist = [b.bid for b in cfg.blocks]
    in_worklist = set(worklist)
    while worklist:
        bid = worklist.pop(0)
        in_worklist.discard(bid)
        incoming: Set[int] = set()
        for pred in cfg.predecessors(bid):
            incoming |= reach_out[pred]
        reach_in[bid] = incoming
        killed = kill_regs[bid]
        survivors = {
            d for d in incoming if inst_def(program[d]) not in killed
        }
        new_out = gen[bid] | survivors
        if new_out != reach_out[bid]:
            reach_out[bid] = new_out
            for succ in cfg.successors(bid):
                if succ not in in_worklist:
                    in_worklist.add(succ)
                    worklist.append(succ)
    return ReachingDefsResult(
        cfg,
        {bid: frozenset(s) for bid, s in reach_in.items()},
        {bid: frozenset(s) for bid, s in reach_out.items()},
    )


@dataclass(frozen=True)
class DeadStore:
    """A definition whose value can never be observed afterwards."""

    pc: int
    reg: int


def dead_stores(
    cfg: StaticCFG, liveness: Optional[LivenessResult] = None
) -> List[DeadStore]:
    """Return defs in ``cfg``'s reachable blocks never live afterwards.

    ``liveness`` may be passed to reuse an already-solved analysis.
    """
    liveness = liveness or solve_liveness(cfg)
    program = cfg.program
    result: List[DeadStore] = []
    for bid in sorted(cfg.reachable_blocks()):
        block = cfg.blocks[bid]
        live: Set[int] = set(liveness.live_out[bid])
        for pc in range(block.end_pc - 1, block.start_pc - 1, -1):
            inst = program[pc]
            defined = inst_def(inst)
            if defined is not None:
                if defined not in live:
                    result.append(DeadStore(pc=pc, reg=defined))
                live.discard(defined)
            live.update(inst_uses(inst))
    return sorted(result, key=lambda d: d.pc)
