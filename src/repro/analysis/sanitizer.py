"""Replay sanitizer: speculation invariants checked over the event stream.

A TSan-style post-mortem checker for the simulator.  It consumes the
structured event stream (``repro.obs.events``; in memory or round-tripped
through JSONL) of one simulation and verifies the invariants that make
speculative multithreading *safe* — the committed architectural state must
be exactly the sequential execution, no matter how many threads were
spawned, mispredicted, squashed or fault-corrupted along the way:

``spawn-target``
    Every spawn points where it claims: the thread's start position holds
    the pair's CQIP and the spawn position holds its SP.
``commit-tiling``
    Commits appear in program order and tile the sequential trace exactly
    — every position commits once, none twice, none never; folded
    (squashed-into-predecessor) threads never commit.
``counter-parity``
    Replaying the stream reproduces the simulator's headline counters
    (the stream and the aggregate stats cannot disagree).
``corruption-surfaced``
    Every fault-injected live-in corruption is surfaced as an event,
    matches the injected count, and hit a value that was actually
    predicted (a corrupted copy would be an injector bug).
``static-may-dependence``
    Soundness oracle: every *dynamic* cross-thread memory dependence a
    committed speculative thread consumed lies inside the static may-RAW
    set of its (SP, CQIP) pair computed by
    :class:`repro.analysis.dependence.DependenceAnalysis`.

Checks that fail produce structured :class:`Violation` records collected
in a :class:`SanitizerReport`; :meth:`SanitizerReport.raise_first` escalates
to :class:`repro.errors.InvariantViolation` for fail-fast callers.  The
sanitizer needs an *unfiltered* stream (no ``kinds`` filter on the tracer);
prediction-counter parity is only checkable for realistic predictors, since
the perfect oracle emits ``predict.hit`` events for free register-file
copies it does not count as predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.dependence import DependenceAnalysis
from repro.errors import InvariantViolation
from repro.exec.trace import Trace
from repro.obs.events import (
    EV_LIVEIN_CORRUPT,
    EV_PREDICT_HIT,
    EV_PREDICT_MISS,
    EV_PREDICT_SYNC,
    EV_THREAD_COMMIT,
    EV_THREAD_SPAWN,
    EV_THREAD_SQUASH,
    EV_THREAD_START,
    SimEvent,
    replay_counters,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cmt.config import ProcessorConfig
    from repro.cmt.stats import SimulationStats
    from repro.faults.injector import FaultInjector
    from repro.spawning.pairs import SpawnPairSet

#: ``replay_counters`` key -> ``SimulationStats`` attribute, for the
#: counters that must agree on every traced run.
_PARITY_KEYS: Tuple[Tuple[str, str], ...] = (
    ("spawns", "spawns"),
    ("threads_committed", "threads_committed"),
    ("threads_degraded", "threads_degraded"),
    ("spawns_dropped", "spawns_dropped"),
    ("spawns_retried", "spawns_retried"),
    ("tu_blackouts", "tu_blackouts"),
    ("control_misspeculations", "control_misspeculations"),
    ("liveins_corrupted", "liveins_corrupted"),
    ("forward_delays", "forward_delays"),
)

#: Value predictors whose prediction counters match the predict.* events
#: one-to-one (the perfect oracle emits uncounted copy hits).
REALISTIC_PREDICTORS = frozenset({"stride", "fcm", "last"})


@dataclass(frozen=True)
class Violation:
    """One failed speculation invariant.

    ``context`` is a tuple of ``(key, value)`` pairs pinpointing the
    offending event/thread/position — kept as a tuple so violations stay
    hashable and deterministic.
    """

    invariant: str
    message: str
    context: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable view of the violation."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "context": dict(self.context),
        }

    def format(self) -> str:
        """Return a one-line human-readable rendering."""
        ctx = ", ".join(f"{k}={v}" for k, v in self.context)
        suffix = f"  [{ctx}]" if ctx else ""
        return f"{self.invariant}: {self.message}{suffix}"


@dataclass
class SanitizerReport:
    """Outcome of one sanitizer pass over an event stream.

    ``checks`` counts the individual assertions evaluated per invariant
    (so "zero violations" is distinguishable from "nothing checked");
    ``corruptions_flagged`` counts the injected live-in corruptions the
    stream surfaced.
    """

    violations: List[Violation] = field(default_factory=list)
    checks: Dict[str, int] = field(default_factory=dict)
    corruptions_flagged: int = 0
    trace_length: int = 0

    @property
    def ok(self) -> bool:
        """True when every checked invariant held."""
        return not self.violations

    def _checked(self, invariant: str, count: int = 1) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + count

    def _fail(
        self, invariant: str, message: str, **context: object
    ) -> None:
        self.violations.append(
            Violation(invariant, message, tuple(sorted(context.items())))
        )

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable view of the report."""
        return {
            "ok": self.ok,
            "trace_length": self.trace_length,
            "checks": dict(sorted(self.checks.items())),
            "corruptions_flagged": self.corruptions_flagged,
            "violations": [v.to_dict() for v in self.violations],
        }

    def format(self) -> str:
        """Return a multi-line human-readable rendering."""
        total = sum(self.checks.values())
        lines = [
            f"sanitizer: {total} checks, "
            f"{len(self.violations)} violation(s), "
            f"{self.corruptions_flagged} corruption(s) surfaced"
        ]
        lines.extend(f"  {v.format()}" for v in self.violations)
        return "\n".join(lines)

    def raise_first(self) -> None:
        """Raise :class:`InvariantViolation` for the first violation.

        No-op when the report is clean.
        """
        if not self.violations:
            return
        first = self.violations[0]
        raise InvariantViolation(
            f"{first.invariant}: {first.message}",
            **{str(k): v for k, v in first.context},
        )


def sanitize_events(
    trace: Trace,
    events: Sequence[SimEvent],
    stats: Optional["SimulationStats"] = None,
    analysis: Optional[DependenceAnalysis] = None,
    check_oracle: bool = True,
    compare_predictions: bool = False,
) -> SanitizerReport:
    """Check the speculation invariants of one simulation's event stream.

    Args:
        trace: The sequential trace the simulation ran over.
        events: The *unfiltered* event stream of that run (in emission
            order, e.g. ``EventTracer.events`` or ``events_from_jsonl``).
        stats: Optional end-of-run stats; enables counter parity and the
            exact corruption count check.
        analysis: Optional shared static analysis (built on demand when
            the oracle check runs).
        check_oracle: Verify every dynamic cross-thread memory dependence
            against the static may-RAW set.
        compare_predictions: Also compare predict-hit/miss counters
            against the stats (only sound for realistic predictors, see
            :data:`REALISTIC_PREDICTORS`).

    Returns:
        The populated :class:`SanitizerReport`.
    """
    report = SanitizerReport(trace_length=len(trace))
    n = len(trace)

    spawns: Dict[int, SimEvent] = {}
    commits: List[SimEvent] = []
    folded: Set[int] = set()
    corrupts: List[SimEvent] = []
    root_seq: Optional[int] = None
    predicted_hits: Set[Tuple[int, int]] = set()
    has_predict_events = False
    corrupt_unpredicted: List[SimEvent] = []

    for event in events:
        kind = event.kind
        if kind == EV_THREAD_SPAWN:
            spawns[event.thread] = event
        elif kind == EV_THREAD_COMMIT:
            commits.append(event)
        elif kind == EV_THREAD_SQUASH:
            if event.attrs.get("mode") == "fold":
                folded.add(event.thread)
        elif kind == EV_THREAD_START:
            if event.attrs.get("root"):
                root_seq = event.thread
        elif kind == EV_PREDICT_HIT:
            has_predict_events = True
            predicted_hits.add((event.thread, int(event.attrs.get("reg", -1))))
        elif kind in (EV_PREDICT_MISS, EV_PREDICT_SYNC):
            has_predict_events = True
        elif kind == EV_LIVEIN_CORRUPT:
            corrupts.append(event)
            reg = int(event.attrs.get("reg", -1))
            if (event.thread, reg) not in predicted_hits:
                corrupt_unpredicted.append(event)

    # ------------------------------------------------------------------
    # spawn-target: spawns land on their pair's pcs.
    # ------------------------------------------------------------------
    for seq, event in sorted(spawns.items()):
        attrs = event.attrs
        start_pos = attrs.get("start_pos")
        cqip_pc = attrs.get("cqip_pc")
        sp_pc = attrs.get("sp_pc")
        spawn_pos = attrs.get("spawn_pos")
        if start_pos is None or cqip_pc is None:
            continue
        report._checked("spawn-target")
        if not 0 <= start_pos < n:
            report._fail(
                "spawn-target",
                f"thread {seq} start position {start_pos} outside trace",
                thread=seq,
                start_pos=start_pos,
            )
            continue
        if trace[start_pos].pc != cqip_pc:
            report._fail(
                "spawn-target",
                f"thread {seq} starts at trace[{start_pos}] "
                f"(pc {trace[start_pos].pc}), not its CQIP pc {cqip_pc}",
                thread=seq,
                start_pos=start_pos,
                cqip_pc=cqip_pc,
            )
        if spawn_pos is not None:
            if not 0 <= spawn_pos < n or trace[spawn_pos].pc != sp_pc:
                report._fail(
                    "spawn-target",
                    f"thread {seq} spawned from trace[{spawn_pos}], which "
                    f"does not hold its SP pc {sp_pc}",
                    thread=seq,
                    spawn_pos=spawn_pos,
                    sp_pc=sp_pc,
                )
            elif spawn_pos >= start_pos:
                report._fail(
                    "spawn-target",
                    f"thread {seq} spawn position {spawn_pos} is not "
                    f"before its start position {start_pos}",
                    thread=seq,
                    spawn_pos=spawn_pos,
                    start_pos=start_pos,
                )

    # ------------------------------------------------------------------
    # commit-tiling: commits tile the sequential trace in program order.
    # ------------------------------------------------------------------
    if not commits:
        report._checked("commit-tiling")
        if n > 0:
            report._fail(
                "commit-tiling",
                "stream contains no thread.commit events for a non-empty "
                "trace (was the tracer kind-filtered?)",
            )
    else:
        expected = 0
        for event in commits:
            report._checked("commit-tiling")
            seq = event.thread
            size = int(event.attrs.get("size", -1))
            if seq in folded:
                report._fail(
                    "commit-tiling",
                    f"thread {seq} was folded into its predecessor but "
                    "committed anyway",
                    thread=seq,
                )
            if seq == root_seq:
                start = 0
            elif seq in spawns:
                start = int(spawns[seq].attrs.get("start_pos", -1))
            else:
                report._fail(
                    "commit-tiling",
                    f"commit of unknown thread {seq} (no spawn or root "
                    "start event)",
                    thread=seq,
                )
                continue
            if size < 0:
                report._fail(
                    "commit-tiling",
                    f"thread {seq} committed a negative size",
                    thread=seq,
                    size=size,
                )
                continue
            if start != expected:
                report._fail(
                    "commit-tiling",
                    f"thread {seq} committed [{start}, {start + size}) but "
                    f"the next uncommitted position is {expected}",
                    thread=seq,
                    start=start,
                    expected=expected,
                )
            expected = start + size
        report._checked("commit-tiling")
        if expected != n:
            report._fail(
                "commit-tiling",
                f"commits cover [0, {expected}) but the sequential trace "
                f"has {n} instructions",
                committed=expected,
                trace_length=n,
            )

    # ------------------------------------------------------------------
    # counter-parity: the stream replays to the aggregate counters.
    # ------------------------------------------------------------------
    if stats is not None:
        replay = replay_counters(events)
        for replay_key, stats_attr in _PARITY_KEYS:
            report._checked("counter-parity")
            expected_value = int(getattr(stats, stats_attr))
            if replay[replay_key] != expected_value:
                report._fail(
                    "counter-parity",
                    f"stream replays {replay_key}={replay[replay_key]} but "
                    f"stats recorded {expected_value}",
                    counter=replay_key,
                    replayed=replay[replay_key],
                    recorded=expected_value,
                )
        if compare_predictions:
            pairs = (
                ("predict_hits", int(stats.value_hits)),
                (
                    "predict_misses",
                    int(stats.value_predictions) - int(stats.value_hits),
                ),
            )
            for replay_key, expected_value in pairs:
                report._checked("counter-parity")
                if replay[replay_key] != expected_value:
                    report._fail(
                        "counter-parity",
                        f"stream replays {replay_key}={replay[replay_key]} "
                        f"but stats recorded {expected_value}",
                        counter=replay_key,
                        replayed=replay[replay_key],
                        recorded=expected_value,
                    )

    # ------------------------------------------------------------------
    # corruption-surfaced: injected corruptions are visible and sane.
    # ------------------------------------------------------------------
    report.corruptions_flagged = len(corrupts)
    if stats is not None:
        report._checked("corruption-surfaced")
        injected = int(getattr(stats, "liveins_corrupted", 0))
        if len(corrupts) != injected:
            report._fail(
                "corruption-surfaced",
                f"{injected} live-in corruption(s) injected but "
                f"{len(corrupts)} surfaced in the stream",
                injected=injected,
                surfaced=len(corrupts),
            )
    for event in corrupts:
        report._checked("corruption-surfaced")
        if event.thread not in spawns:
            report._fail(
                "corruption-surfaced",
                f"corruption on thread {event.thread} which was never "
                "spawned",
                thread=event.thread,
            )
    if has_predict_events:
        for event in corrupt_unpredicted:
            report._checked("corruption-surfaced")
            report._fail(
                "corruption-surfaced",
                f"corrupted live-in r{event.attrs.get('reg')} of thread "
                f"{event.thread} was never delivered as a predict hit",
                thread=event.thread,
                reg=event.attrs.get("reg"),
            )

    # ------------------------------------------------------------------
    # static-may-dependence: dynamic cross-thread RAWs are in the may-set.
    # ------------------------------------------------------------------
    if check_oracle and trace.program is not None:
        memory_deps = trace.memory_deps
        for event in commits:
            seq = event.thread
            spawn_event = spawns.get(seq)
            if spawn_event is None:
                continue  # root thread or already reported above
            attrs = spawn_event.attrs
            spawn_pos = attrs.get("spawn_pos")
            start = attrs.get("start_pos")
            sp_pc = attrs.get("sp_pc")
            cqip_pc = attrs.get("cqip_pc")
            if spawn_pos is None or start is None:
                continue  # stream predates the spawn_pos attribute
            size = int(event.attrs.get("size", 0))
            if analysis is None:
                analysis = DependenceAnalysis(trace.program)
            try:
                risk = analysis.analyze_pair(int(sp_pc), int(cqip_pc))
            except ValueError:
                report._fail(
                    "static-may-dependence",
                    f"pair ({sp_pc}, {cqip_pc}) of thread {seq} is not "
                    "analysable against the program",
                    thread=seq,
                )
                continue
            end = min(int(start) + size, n)
            for pos in range(int(start), end):
                producer = memory_deps[pos]
                if producer < 0 or not int(spawn_pos) <= producer < int(start):
                    continue
                report._checked("static-may-dependence")
                dep = (trace[producer].pc, trace[pos].pc)
                if dep not in risk.may_raw:
                    report._fail(
                        "static-may-dependence",
                        f"thread {seq} consumed store pc {dep[0]} -> load "
                        f"pc {dep[1]} across the spawn, missing from the "
                        "static may-RAW set of pair "
                        f"({sp_pc}, {cqip_pc})",
                        thread=seq,
                        store_pc=dep[0],
                        load_pc=dep[1],
                        producer_pos=producer,
                        load_pos=pos,
                    )
    return report


def sanitize_run(
    trace: Trace,
    pairs: Optional["SpawnPairSet"] = None,
    config: Optional["ProcessorConfig"] = None,
    injector: Optional["FaultInjector"] = None,
    analysis: Optional[DependenceAnalysis] = None,
    check_oracle: bool = True,
) -> Tuple["SimulationStats", SanitizerReport]:
    """Simulate with tracing enabled and sanitize the resulting stream.

    Convenience wrapper for tests and the ``repro sanitize`` CLI verb:
    runs one simulation with a fresh :class:`~repro.obs.events.EventTracer`
    and checks every invariant, enabling prediction-counter parity exactly
    when the configured predictor is realistic.

    Args:
        trace: Sequential trace to simulate.
        pairs: Spawning pairs (None simulates single-threaded).
        config: Processor configuration (defaults apply otherwise).
        injector: Optional fault injector.
        analysis: Optional shared static analysis.
        check_oracle: Forwarded to :func:`sanitize_events`.

    Returns:
        ``(stats, report)`` for the run.
    """
    # Imported lazily: repro.cmt depends on repro.spawning, and keeping
    # the analysis package importable without the simulator is cheap.
    from repro.cmt.config import ProcessorConfig as _ProcessorConfig
    from repro.cmt.processor import simulate
    from repro.obs.events import EventTracer

    config = config or _ProcessorConfig()
    tracer = EventTracer()
    stats = simulate(trace, pairs, config, injector, tracer=tracer)
    report = sanitize_events(
        trace,
        tracer.events,
        stats=stats,
        analysis=analysis,
        check_oracle=check_oracle,
        compare_predictions=config.value_predictor in REALISTIC_PREDICTORS,
    )
    return stats, report
