"""Dominator/postdominator trees and natural-loop detection.

Implements the Cooper-Harvey-Kennedy iterative dominator algorithm ("A
Simple, Fast Dominance Algorithm") over the static CFG.  Postdominators run
the same engine on the reversed graph rooted at a virtual exit that gathers
every block without successors; natural loops are recovered from back edges
whose head dominates their tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import StaticCFG

#: Virtual node id used as the root of the postdominator tree.
VIRTUAL_EXIT = -1


class DominatorTree:
    """Immediate-dominator mapping plus O(depth) dominance queries."""

    def __init__(self, root: int, idom: Dict[int, int]):
        self.root = root
        #: node -> immediate dominator (the root maps to itself).
        self.idom = idom
        self._depth: Dict[int, int] = {root: 0}
        for node in idom:
            self._depth_of(node)

    def _depth_of(self, node: int) -> int:
        depth = self._depth.get(node)
        if depth is None:
            depth = self._depth_of(self.idom[node]) + 1
            self._depth[node] = depth
        return depth

    def __contains__(self, node: int) -> bool:
        return node in self.idom

    def dominates(self, a: int, b: int) -> bool:
        """Return True when every root-to-``b`` path passes through ``a``.

        Nodes absent from the tree (unreachable from the root) dominate
        nothing and are dominated by nothing.
        """
        if a not in self.idom or b not in self.idom:
            return False
        while self._depth[b] > self._depth[a]:
            b = self.idom[b]
        return a == b

    def strictly_dominates(self, a: int, b: int) -> bool:
        """Return True when ``a`` dominates ``b`` and ``a != b``."""
        return a != b and self.dominates(a, b)


def _solve(root: int, succs_of, preds_of) -> DominatorTree:
    """Cooper-Harvey-Kennedy on the subgraph reachable from ``root``."""
    # Reverse postorder over the reachable subgraph (iterative DFS).
    order: List[int] = []
    seen: Set[int] = {root}
    stack = [(root, iter(succs_of(root)))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, iter(succs_of(nxt))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    rpo = list(reversed(order))
    rpo_num = {node: i for i, node in enumerate(rpo)}

    idom: Dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_num[a] > rpo_num[b]:
                a = idom[a]
            while rpo_num[b] > rpo_num[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            new_idom: Optional[int] = None
            for pred in preds_of(node):
                if pred not in idom:
                    continue
                new_idom = (
                    pred if new_idom is None else intersect(pred, new_idom)
                )
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return DominatorTree(root, idom)


def dominator_tree(cfg: StaticCFG) -> DominatorTree:
    """Return the dominator tree of ``cfg`` rooted at the entry block."""
    return _solve(cfg.entry, cfg.successors, cfg.predecessors)


def postdominator_tree(cfg: StaticCFG) -> DominatorTree:
    """Postdominators, rooted at a virtual exit joining all exit blocks.

    Exit blocks are those with no successors (halt blocks, rets that no
    call continuation absorbs, and fall-off-the-end blocks).  Programs with
    no reachable exit (a provable infinite loop) yield a tree containing
    only the virtual exit.
    """
    exits = [b.bid for b in cfg.blocks if not cfg.successors(b.bid)]

    def succs_of(node: int) -> List[int]:
        if node == VIRTUAL_EXIT:
            return exits
        return cfg.predecessors(node)

    def preds_of(node: int) -> List[int]:
        result = cfg.successors(node)
        if node in exits_set:
            result = result + [VIRTUAL_EXIT]
        return result

    exits_set = set(exits)
    return _solve(VIRTUAL_EXIT, succs_of, preds_of)


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: ``head`` dominates every block in ``body``."""

    head: int
    back_edges: tuple
    body: frozenset


def natural_loops(
    cfg: StaticCFG, dom: Optional[DominatorTree] = None
) -> List[NaturalLoop]:
    """Return the natural loops of ``cfg``; loops sharing a head are merged."""
    dom = dom or dominator_tree(cfg)
    tails_of: Dict[int, List[int]] = {}
    for block in cfg.blocks:
        for dst in cfg.successors(block.bid):
            if dom.dominates(dst, block.bid):
                tails_of.setdefault(dst, []).append(block.bid)

    loops: List[NaturalLoop] = []
    for head in sorted(tails_of):
        body: Set[int] = {head}
        stack = [t for t in tails_of[head] if t != head]
        body.update(tails_of[head])
        while stack:
            node = stack.pop()
            for pred in cfg.predecessors(node):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops.append(
            NaturalLoop(
                head=head,
                back_edges=tuple(sorted(tails_of[head])),
                body=frozenset(body),
            )
        )
    return loops
