"""Static program analysis: CFG, dominators, dataflow, lint, validation.

This package analyses :class:`~repro.isa.program.Program` objects without
executing them — the compile-time counterpart of :mod:`repro.profiling`'s
trace-driven analyses.  It powers the ``repro lint``, ``repro
validate-pairs``, ``repro analyze-deps`` and ``repro sanitize`` CLI
commands and the static pre-filtering of spawning pairs in
:mod:`repro.spawning`.  :mod:`repro.analysis.dependence` adds
memory-dependence race analysis over spawning pairs and
:mod:`repro.analysis.sanitizer` replays simulation event streams against
the speculation invariants.
"""

from repro.analysis.cfg import EdgeKind, StaticBlock, StaticCFG
from repro.analysis.dataflow import (
    DeadStore,
    LivenessResult,
    ReachingDefsResult,
    UndefinedRead,
    dead_stores,
    inst_def,
    inst_uses,
    solve_liveness,
    solve_reaching,
)
from repro.analysis.dependence import (
    TOP,
    DependenceAnalysis,
    Interval,
    LiveInClass,
    SquashRiskReport,
    analyze_pairs,
    continuation_pc_ranges,
    rank_pairs,
    region_pc_ranges,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.dominators import (
    DominatorTree,
    NaturalLoop,
    dominator_tree,
    natural_loops,
    postdominator_tree,
)
from repro.analysis.lint import (
    HIGH_SQUASH_RISK_THRESHOLD,
    LINT_RULES,
    lint_program,
)
from repro.analysis.sanitizer import (
    REALISTIC_PREDICTORS,
    SanitizerReport,
    Violation,
    sanitize_events,
    sanitize_run,
)
from repro.analysis.validator import (
    PairFinding,
    PairValidationConfig,
    PairValidationReport,
    filter_statically_valid,
    validate_pairs,
)

__all__ = [
    "EdgeKind",
    "StaticBlock",
    "StaticCFG",
    "DeadStore",
    "LivenessResult",
    "ReachingDefsResult",
    "UndefinedRead",
    "dead_stores",
    "inst_def",
    "inst_uses",
    "solve_liveness",
    "solve_reaching",
    "TOP",
    "DependenceAnalysis",
    "Interval",
    "LiveInClass",
    "SquashRiskReport",
    "analyze_pairs",
    "continuation_pc_ranges",
    "rank_pairs",
    "region_pc_ranges",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "DominatorTree",
    "NaturalLoop",
    "dominator_tree",
    "natural_loops",
    "postdominator_tree",
    "HIGH_SQUASH_RISK_THRESHOLD",
    "LINT_RULES",
    "lint_program",
    "REALISTIC_PREDICTORS",
    "SanitizerReport",
    "Violation",
    "sanitize_events",
    "sanitize_run",
    "PairFinding",
    "PairValidationConfig",
    "PairValidationReport",
    "filter_statically_valid",
    "validate_pairs",
]
