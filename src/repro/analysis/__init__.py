"""Static program analysis: CFG, dominators, dataflow, lint, validation.

This package analyses :class:`~repro.isa.program.Program` objects without
executing them — the compile-time counterpart of :mod:`repro.profiling`'s
trace-driven analyses.  It powers the ``repro lint`` and ``repro
validate-pairs`` CLI commands and the static pre-filtering of spawning
pairs in :mod:`repro.spawning`.
"""

from repro.analysis.cfg import EdgeKind, StaticBlock, StaticCFG
from repro.analysis.dataflow import (
    DeadStore,
    LivenessResult,
    ReachingDefsResult,
    UndefinedRead,
    dead_stores,
    inst_def,
    inst_uses,
    solve_liveness,
    solve_reaching,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.dominators import (
    DominatorTree,
    NaturalLoop,
    dominator_tree,
    natural_loops,
    postdominator_tree,
)
from repro.analysis.lint import LINT_RULES, lint_program
from repro.analysis.validator import (
    PairFinding,
    PairValidationConfig,
    PairValidationReport,
    filter_statically_valid,
    validate_pairs,
)

__all__ = [
    "EdgeKind",
    "StaticBlock",
    "StaticCFG",
    "DeadStore",
    "LivenessResult",
    "ReachingDefsResult",
    "UndefinedRead",
    "dead_stores",
    "inst_def",
    "inst_uses",
    "solve_liveness",
    "solve_reaching",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "DominatorTree",
    "NaturalLoop",
    "dominator_tree",
    "natural_loops",
    "postdominator_tree",
    "LINT_RULES",
    "lint_program",
    "PairFinding",
    "PairValidationConfig",
    "PairValidationReport",
    "filter_statically_valid",
    "validate_pairs",
]
