"""``li`` analogue: recursive list interpreter over cons cells.

SpecInt95 ``li`` is a Lisp interpreter: recursive evaluation over garbage-
collected cons cells, dominated by pointer chasing and call/return control.
The analogue builds binary cons trees in memory and runs recursive passes
over them (sum, depth, destructive increment) using an explicit memory
stack for values live across recursive calls — recursion depth and branch
outcomes depend on the data.
"""

from __future__ import annotations

from repro.isa.builder import ARG_REGS, RV_REG, ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.generators import (
    dataset_seed,
    emit_pop,
    emit_push,
    pseudo_random_words,
    scaled,
)

#: Cons cell layout (words): [0]=tag (0 atom, 1 cons), [1]=car, [2]=cdr.
_CELL_WORDS = 3
_STACK_WORDS = 512
#: Fixed heap reservation so addresses (and thus program text) do not
#: depend on the data-driven tree shapes.
_HEAP_WORDS = 6000


def _build_tree(cells, rng_words, idx, depth):
    """Construct a random tree in the Python-side heap image.

    Returns (cell index, next rng index).
    """
    my = len(cells)
    if depth == 0 or rng_words[idx % len(rng_words)] % 4 == 0:
        cells.append((0, rng_words[idx % len(rng_words)] % 100, 0))
        return my, idx + 1
    cells.append(None)  # placeholder until children exist
    left, idx = _build_tree(cells, rng_words, idx + 1, depth - 1)
    right, idx = _build_tree(cells, rng_words, idx + 1, depth - 1)
    cells[my] = (1, left, right)
    return my, idx


def build_li(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the li analogue; ``scale`` multiplies the evaluation passes."""
    n_passes = scaled(22, scale)
    b = ProgramBuilder("li")

    rng_words = pseudo_random_words(dataset_seed(0x115B, dataset), 512, 0, 1 << 20)
    cells = []
    roots = []
    idx = 0
    for _ in range(6):
        root, idx = _build_tree(cells, rng_words, idx, 7)
        roots.append(root)

    if len(cells) * _CELL_WORDS > _HEAP_WORDS:
        raise ValueError("li tree image exceeds the fixed heap reservation")
    heap_base = b.alloc(_HEAP_WORDS)
    for ci, (tag, car, cdr) in enumerate(cells):
        base = heap_base + ci * _CELL_WORDS
        if tag == 1:
            car = heap_base + car * _CELL_WORDS
            cdr = heap_base + cdr * _CELL_WORDS
        b.data(base, [tag, car, cdr])

    roots_base = b.alloc_data(heap_base + r * _CELL_WORDS for r in roots)
    stack_top = b.alloc(_STACK_WORDS) + _STACK_WORDS

    p = b.reg("pass")
    r = b.reg("root")
    addr = b.reg("addr")
    total = b.reg("total")
    rbase = b.reg("rbase")
    sp = b.reg("sp")
    t = b.reg("t")

    b.li(rbase, roots_base)
    b.li(sp, stack_top)
    b.li(total, 0)

    with b.for_range(p, 0, n_passes):
        with b.for_range(r, 0, len(roots)):
            b.add(addr, rbase, r)
            b.load(ARG_REGS[0], addr)
            b.call("tree_sum")
            b.add(total, total, RV_REG)
            b.add(addr, rbase, r)
            b.load(ARG_REGS[0], addr)
            b.andi(ARG_REGS[1], p, 3)
            b.call("tree_bump")
        # alternate pass: depth of one rotating root
        b.li(t, len(roots))
        b.rem(t, p, t)
        b.add(addr, rbase, t)
        b.load(ARG_REGS[0], addr)
        b.call("tree_depth")
        b.add(total, total, RV_REG)
    b.halt()

    # tree_sum(cell) -> sum of atom values (recursive).
    with b.function("tree_sum"):
        tag = b.reg("ts_tag")
        node = b.reg("ts_node")
        b.load(tag, ARG_REGS[0], 0)

        def _atom() -> None:
            b.load(RV_REG, ARG_REGS[0], 1)

        def _cons() -> None:
            emit_push(b, sp, ARG_REGS[0])
            b.load(ARG_REGS[0], ARG_REGS[0], 1)
            b.call("tree_sum")
            b.load(node, sp, 0)  # peek the node back
            b.store(RV_REG, sp, 0)  # replace slot with the left sum
            b.load(ARG_REGS[0], node, 2)
            b.call("tree_sum")
            emit_pop(b, sp, node)  # node now holds the left sum
            b.add(RV_REG, RV_REG, node)

        b.if_else(Opcode.BEQZ, (tag,), _atom, _cons)

    # tree_depth(cell) -> max depth (recursive, branchier merge).
    with b.function("tree_depth"):
        tag = b.reg("td_tag")
        node = b.reg("td_node")
        b.load(tag, ARG_REGS[0], 0)

        def _atom() -> None:
            b.li(RV_REG, 1)

        def _cons() -> None:
            emit_push(b, sp, ARG_REGS[0])
            b.load(ARG_REGS[0], ARG_REGS[0], 1)
            b.call("tree_depth")
            b.load(node, sp, 0)
            b.store(RV_REG, sp, 0)
            b.load(ARG_REGS[0], node, 2)
            b.call("tree_depth")
            emit_pop(b, sp, node)  # left depth
            with b.if_(Opcode.BLT, (RV_REG, node)):
                b.mov(RV_REG, node)
            b.addi(RV_REG, RV_REG, 1)

        b.if_else(Opcode.BEQZ, (tag,), _atom, _cons)

    # tree_bump(cell, delta): destructive atom increment (recursive).
    with b.function("tree_bump"):
        tag = b.reg("tb_tag")
        node = b.reg("tb_node")
        v = b.reg("tb_v")
        b.load(tag, ARG_REGS[0], 0)

        def _atom() -> None:
            b.load(v, ARG_REGS[0], 1)
            b.add(v, v, ARG_REGS[1])
            b.andi(v, v, 1023)
            b.store(v, ARG_REGS[0], 1)

        def _cons() -> None:
            emit_push(b, sp, ARG_REGS[0])
            b.load(ARG_REGS[0], ARG_REGS[0], 1)
            b.call("tree_bump")
            emit_pop(b, sp, node)
            b.load(ARG_REGS[0], node, 2)
            b.call("tree_bump")  # tail call: nothing live afterwards

        b.if_else(Opcode.BEQZ, (tag,), _atom, _cons)
    return b.build()
