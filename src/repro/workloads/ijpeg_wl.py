"""``ijpeg`` analogue: regular nested loops over image blocks.

SpecInt95 ``ijpeg`` is the most regular program in the suite — block-wise
DCT/quantisation kernels with independent iterations — and shows the
highest speed-up in the paper (11.9x on 16 thread units, Figure 3).  The
analogue processes a sequence of 8x8 blocks: an FP transform accumulation,
an integer quantisation pass and an output store, with no loop-carried
dependences across blocks.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.generators import dataset_seed, pseudo_random_words, scaled

_BLOCK = 8


def build_ijpeg(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the ijpeg analogue; ``scale`` multiplies the block count."""
    n_blocks = scaled(32, scale)
    pixels = n_blocks * _BLOCK * _BLOCK
    b = ProgramBuilder("ijpeg")

    img_base = b.alloc_data(pseudo_random_words(dataset_seed(0x1A6E, dataset), pixels, 0, 256))
    coef_base = b.alloc_data(pseudo_random_words(dataset_seed(0xD0C7, dataset), _BLOCK, 1, 16))
    out_base = b.alloc(pixels)

    blk = b.reg("blk")
    row = b.reg("row")
    col = b.reg("col")
    base = b.reg("base")
    addr = b.reg("addr")
    pix = b.reg("pix")
    coef = b.reg("coef")
    acc = b.reg("acc")
    q = b.reg("q")
    ibase = b.reg("ibase")
    cbase = b.reg("cbase")
    obase = b.reg("obase")
    fpix = b.reg("fpix")
    fcoef = b.reg("fcoef")
    facc = b.reg("facc")

    b.li(ibase, img_base)
    b.li(cbase, coef_base)
    b.li(obase, out_base)

    rowsums_base = b.alloc(_BLOCK)
    rsums = b.reg("rsums")
    b.li(rsums, rowsums_base)
    with b.for_range(blk, 0, n_blocks):
        # base = blk * 64
        b.shli(base, blk, 6)
        # FP transform: independent row transforms (2D DCT operates on
        # each row separately); per-row sums go to memory, reduced below.
        with b.for_range(row, 0, _BLOCK):
            b.li(facc, 0)
            b.fcvt(facc, facc)
            b.shli(addr, row, 3)
            b.add(addr, addr, base)
            b.add(addr, addr, ibase)
            for u in range(_BLOCK):
                b.load(pix, addr, u)
                b.add(acc, cbase, 0)
                b.load(coef, acc, u)
                b.mul(pix, pix, coef)
                b.fcvt(fpix, pix)
                b.fadd(facc, facc, fpix)
            b.add(acc, rsums, row)
            b.store(facc, acc)
        # Column pass stand-in: reduce the row sums (short serial tail).
        b.li(fcoef, 0)
        b.fcvt(fcoef, fcoef)
        with b.for_range(row, 0, _BLOCK):
            b.add(acc, rsums, row)
            b.load(fpix, acc)
            b.fadd(fcoef, fcoef, fpix)
        # Quantisation scale for this block: q = 1 + (base & 7).
        b.andi(q, base, 7)
        b.addi(q, q, 1)
        # Integer quantisation pass, also fully unrolled per row:
        # out[p] = (pix * q) >> 3.
        with b.for_range(row, 0, _BLOCK):
            b.shli(addr, row, 3)
            b.add(addr, addr, base)
            b.add(acc, addr, ibase)
            b.add(addr, addr, obase)
            for u in range(_BLOCK):
                b.load(pix, acc, u)
                b.mul(pix, pix, q)
                b.shri(pix, pix, 3)
                b.store(pix, addr, u)
    b.halt()
    return b.build()
