"""Shared helpers for the workload generators."""

from __future__ import annotations

import random
from typing import List

from repro.isa.builder import ProgramBuilder

#: Multiplier/increment of the in-program linear congruential generator
#: (the classic C library constants; results masked to 31 bits).
LCG_MUL = 1103515245
LCG_INC = 12345
LCG_MASK = 0x7FFFFFFF


def emit_lcg_next(b: ProgramBuilder, state: int, scratch: int) -> None:
    """Advance an in-program LCG: ``state = (state * MUL + INC) & MASK``."""
    b.li(scratch, LCG_MUL)
    b.mul(state, state, scratch)
    b.addi(state, state, LCG_INC)
    b.andi(state, state, LCG_MASK)


def pseudo_random_words(seed: int, count: int, lo: int, hi: int) -> List[int]:
    """Deterministic pseudo-random data for initial memory images."""
    rng = random.Random(seed)
    return [rng.randrange(lo, hi) for _ in range(count)]


def dataset_seed(seed: int, dataset: str) -> int:
    """Derive a per-dataset seed.

    Workloads take a ``dataset`` name ("train", "ref", ...) that reshuffles
    their *data* while leaving the program text identical — the setup
    needed to profile on one input and evaluate on another.
    """
    if dataset == "train":
        return seed
    folded = 0
    for ch in dataset.encode():
        folded = (folded * 131 + ch) & 0x7FFF
    return seed ^ (folded << 4) ^ 0x2A55AA


def scaled(base: int, scale: float, minimum: int = 1) -> int:
    """Scale a trip count, never below ``minimum``."""
    return max(minimum, int(round(base * scale)))


def emit_push(b: ProgramBuilder, sp: int, reg: int) -> None:
    """Push ``reg`` onto a downward-growing memory stack at ``sp``."""
    b.addi(sp, sp, -1)
    b.store(reg, sp, 0)


def emit_pop(b: ProgramBuilder, sp: int, reg: int) -> None:
    """Pop the stack top into ``reg``."""
    b.load(reg, sp, 0)
    b.addi(sp, sp, 1)
