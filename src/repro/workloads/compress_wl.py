"""``compress`` analogue: LZW-style serial compression loop.

SpecInt95 ``compress`` is dominated by one tight loop whose iterations are
chained through the current code word and a shared hash table — almost no
control variety and strong loop-carried dependences.  The paper notes it
yields very few spawning pairs (~30) and collapses when the 50-cycle pair
removal is applied.  This analogue reproduces that structure: a single
dominant loop, a serial ``code`` chain, hash-table probes with collisions.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.generators import dataset_seed, pseudo_random_words, scaled

_TABLE_SIZE = 256
_HASH_MASK = _TABLE_SIZE - 1


def build_compress(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the compress analogue; ``scale`` multiplies the input length."""
    n_input = scaled(2200, scale)
    b = ProgramBuilder("compress")

    input_base = b.alloc_data(pseudo_random_words(dataset_seed(0xC0DE, dataset), n_input, 0, 64))
    table_base = b.alloc(_TABLE_SIZE)
    codes_base = b.alloc(_TABLE_SIZE)
    out_base = b.alloc(n_input + 8)

    i = b.reg("i")
    code = b.reg("code")
    byte = b.reg("byte")
    h = b.reg("hash")
    probe = b.reg("probe")
    key = b.reg("key")
    nextcode = b.reg("nextcode")
    outpos = b.reg("outpos")
    addr = b.reg("addr")
    inbase = b.reg("inbase")
    tbase = b.reg("tbase")
    cbase = b.reg("cbase")
    obase = b.reg("obase")
    t = b.temp()

    b.li(inbase, input_base)
    b.li(tbase, table_base)
    b.li(cbase, codes_base)
    b.li(obase, out_base)
    b.li(code, 0)
    b.li(nextcode, 64)
    b.li(outpos, 0)

    # Clear the hash table (regular init loop — cheap, regular prologue).
    with b.for_range(t, 0, _TABLE_SIZE):
        b.add(addr, tbase, t)
        b.store(0, addr)

    chk = b.reg("chk")
    b.li(chk, 0)
    with b.for_range(i, 0, n_input):
        # byte = input[i]
        b.add(addr, inbase, i)
        b.load(byte, addr)
        # Rolling checksum over the input (serial mixing chain, as the
        # real compress maintains across its dominant loop).
        b.shli(t, chk, 1)
        b.xor(chk, t, byte)
        b.shri(t, chk, 9)
        b.xor(chk, chk, t)
        b.andi(chk, chk, 0xFFFF)
        # key = code * 64 + byte ; h = two-stage hash mix, masked
        b.shli(key, code, 6)
        b.add(key, key, byte)
        b.shli(h, code, 4)
        b.xor(h, h, byte)
        b.shri(t, h, 3)
        b.xor(h, h, t)
        b.andi(h, h, _HASH_MASK)
        # probe = table[h]
        b.add(addr, tbase, h)
        b.load(probe, addr)

        def _hit() -> None:
            # Found: extend the current string.
            b.add(addr, cbase, h)
            b.load(code, addr)

        def _miss() -> None:
            # Linear re-probe once (collision chain), then insert.
            b.addi(h, h, 1)
            b.andi(h, h, _HASH_MASK)
            b.add(addr, tbase, h)
            b.load(probe, addr)

            def _hit2() -> None:
                b.add(addr, cbase, h)
                b.load(code, addr)

            def _insert() -> None:
                b.add(addr, tbase, h)
                b.store(key, addr)
                b.add(addr, cbase, h)
                b.store(nextcode, addr)
                b.addi(nextcode, nextcode, 1)
                b.andi(nextcode, nextcode, 0xFFFF)
                # Emit the previous code.
                b.add(addr, obase, outpos)
                b.store(code, addr)
                b.addi(outpos, outpos, 1)
                b.mov(code, byte)

            b.if_else(Opcode.BEQ, (probe, key), _hit2, _insert)

        b.if_else(Opcode.BEQ, (probe, key), _hit, _miss)

    # Final checksum over the output (short serial epilogue).
    chk = b.reg("chk")
    b.li(chk, 0)
    with b.for_range(t, 0, 64):
        b.add(addr, obase, t)
        b.load(probe, addr)
        b.xor(chk, chk, probe)
    b.add(addr, obase, outpos)
    b.store(chk, addr)
    b.halt()
    return b.build()
