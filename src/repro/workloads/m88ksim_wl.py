"""``m88ksim`` analogue: fetch/decode/dispatch CPU-simulator loop.

SpecInt95 ``m88ksim`` simulates a Motorola 88100: a dominant
fetch-decode-execute loop whose dispatch and handler control flow depends on
the guest instruction stream.  The analogue interprets a synthetic guest
program (opcode + two operand fields packed per word) held in memory, with
per-opcode handlers as subroutines and guest registers in a memory file.
"""

from __future__ import annotations

from repro.isa.builder import ARG_REGS, ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.generators import dataset_seed, pseudo_random_words, scaled

_GUEST_REGS = 32
_N_OPS = 5  # guest opcodes: 0 add, 1 sub, 2 load, 3 store, 4 branch


def _encode_guest_program(seed: int, length: int):
    """Pack a guest program: word = op*4096 + ra*64 + rb."""
    words = []
    for raw in pseudo_random_words(seed, length, 0, 1 << 20):
        op = raw % _N_OPS
        ra = (raw >> 4) % _GUEST_REGS
        rb = (raw >> 10) % _GUEST_REGS
        words.append(op * 4096 + ra * 64 + rb)
    return words


def build_m88ksim(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the m88ksim analogue; ``scale`` multiplies guest cycles."""
    guest_len = 200
    n_cycles = scaled(1000, scale)
    b = ProgramBuilder("m88ksim")

    code_base = b.alloc_data(_encode_guest_program(dataset_seed(0x88, dataset), guest_len))
    regfile_base = b.alloc_data(pseudo_random_words(dataset_seed(0x88F, dataset), _GUEST_REGS, 0, 100))
    gmem_base = b.alloc_data(pseudo_random_words(dataset_seed(0x88A, dataset), 64, 0, 1000))
    #: Guest PSR word: every handler records an exception/carry code here
    #: and the dispatch loop inspects it right after the handler returns —
    #: the 88100's sequencer does the same after every executed instruction.
    psr_addr = b.alloc_data([0])

    cyc = b.reg("cyc")
    gpc = b.reg("gpc")
    word = b.reg("word")
    gop = b.reg("gop")
    ra = b.reg("ra")
    rb = b.reg("rb")
    addr = b.reg("addr")
    codeb = b.reg("codeb")
    regb = b.reg("regb")
    memb = b.reg("memb")
    glen = b.reg("glen")
    t = b.reg("t")

    b.li(codeb, code_base)
    b.li(regb, regfile_base)
    b.li(memb, gmem_base)
    b.li(glen, guest_len)
    b.li(gpc, 0)

    stats1 = b.reg("stats1")
    stats2 = b.reg("stats2")
    b.li(stats1, 0)
    b.li(stats2, 0)

    with b.for_range(cyc, 0, n_cycles):
        # Fetch and decode.
        b.add(addr, codeb, gpc)
        b.load(word, addr)
        b.shri(gop, word, 12)
        b.shri(ra, word, 6)
        b.andi(ra, ra, _GUEST_REGS - 1)
        b.andi(rb, word, _GUEST_REGS - 1)
        b.mov(ARG_REGS[0], ra)
        b.mov(ARG_REGS[1], rb)
        # Simulator bookkeeping: per-cycle statistics and a decode
        # checksum, independent across iterations except for the plain
        # counters (which are stride-predictable live-ins).
        b.addi(stats1, stats1, 1)
        b.shli(t, gop, 3)
        b.xor(t, t, ra)
        b.shli(t, t, 2)
        b.xor(t, t, rb)
        b.add(stats2, stats2, t)
        b.andi(stats2, stats2, 0xFFFF)
        b.mul(t, gop, gop)
        b.add(stats1, stats1, t)
        b.andi(stats1, stats1, 0xFFFF)
        # Dispatch chain (no indirect jumps in the ISA, like a switch
        # lowered to compare/branch).
        psr = b.reg("psr")
        b.li(t, 0)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.call("h_add")
        b.li(t, 1)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.call("h_sub")
        b.li(t, 2)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.call("h_load")
        b.li(t, 3)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.call("h_store")
        # Exception check: inspect the PSR the handler just wrote.
        b.li(psr, psr_addr)
        b.load(psr, psr)
        with b.if_(Opcode.BNEZ, (psr,)):
            b.addi(stats2, stats2, 1)
        # Guest branch: a counted loop-back — decrement reg[ra]; while it
        # stays positive jump back 7 guest instructions, else reset the
        # counter from rb and fall through (guarantees guest progress).
        b.li(t, 4)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.add(addr, regb, ra)
            b.load(word, addr)
            b.addi(word, word, -1)
            b.andi(word, word, 7)
            b.store(word, addr)

            def _taken() -> None:
                b.addi(gpc, gpc, -7)
                with b.if_(Opcode.BLT, (gpc, 0)):
                    b.li(gpc, 0)

            def _fall() -> None:
                b.addi(gpc, gpc, 1)

            b.if_else(Opcode.BNEZ, (word,), _taken, _fall)
        with b.if_(Opcode.BNE, (gop, t)):
            b.addi(gpc, gpc, 1)
        # Wrap the guest pc.
        with b.if_(Opcode.BGE, (gpc, glen)):
            b.li(gpc, 0)
    b.halt()

    # Handlers: operate on the guest register file in memory.
    with b.function("h_add"):
        x, y = b.reg("ha_x"), b.reg("ha_y")
        a = b.reg("ha_a")
        b.add(a, regb, ARG_REGS[0])
        b.load(x, a)
        b.add(a, regb, ARG_REGS[1])
        b.load(y, a)
        b.add(x, x, y)
        b.add(a, regb, ARG_REGS[0])
        b.store(x, a)
        b.shri(y, x, 14)
        b.li(a, psr_addr)
        b.store(y, a)
    with b.function("h_sub"):
        x, y = b.reg("hs_x"), b.reg("hs_y")
        a = b.reg("hs_a")
        b.add(a, regb, ARG_REGS[0])
        b.load(x, a)
        b.add(a, regb, ARG_REGS[1])
        b.load(y, a)
        b.sub(x, x, y)
        b.addi(x, x, 1)
        b.add(a, regb, ARG_REGS[0])
        b.store(x, a)
        b.shri(y, x, 14)
        b.li(a, psr_addr)
        b.store(y, a)
    with b.function("h_load"):
        x = b.reg("hl_x")
        a = b.reg("hl_a")
        b.add(a, regb, ARG_REGS[1])
        b.load(x, a)
        b.andi(x, x, 63)
        b.add(a, memb, x)
        b.load(x, a)
        b.add(a, regb, ARG_REGS[0])
        b.store(x, a)
        b.shri(x, x, 14)
        b.li(a, psr_addr)
        b.store(x, a)
    with b.function("h_store"):
        x, y = b.reg("hw_x"), b.reg("hw_y")
        a = b.reg("hw_a")
        b.add(a, regb, ARG_REGS[0])
        b.load(x, a)
        b.add(a, regb, ARG_REGS[1])
        b.load(y, a)
        b.andi(y, y, 63)
        b.add(a, memb, y)
        b.store(x, a)
        b.shri(x, x, 14)
        b.li(a, psr_addr)
        b.store(x, a)
    return b.build()
