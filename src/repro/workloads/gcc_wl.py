"""``gcc`` analogue: multi-phase pass pipeline over linked IR nodes.

SpecInt95 ``gcc`` is the most irregular program in the suite: many phases,
each walking pointer-linked RTL structures with highly data-dependent
branches and frequent small-function calls.  The analogue runs a
lex -> build-IR -> constant-fold -> schedule pipeline over a linked list of
"insn" nodes in memory, repeated over several "functions" being compiled.
"""

from __future__ import annotations

from repro.isa.builder import ARG_REGS, RV_REG, ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.generators import dataset_seed, pseudo_random_words, scaled

#: IR node layout (words): [0]=kind, [1]=op1, [2]=op2, [3]=next-pointer.
_NODE_WORDS = 4
_KINDS = 4  # 0 const, 1 reg, 2 binop, 3 jump


def build_gcc(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the gcc analogue; ``scale`` multiplies the compiled functions."""
    n_functions = scaled(11, scale)
    tokens_per_fn = 96
    b = ProgramBuilder("gcc")

    token_base = b.alloc_data(
        pseudo_random_words(dataset_seed(0x6CC, dataset), n_functions * tokens_per_fn, 0, 1 << 12)
    )
    heap_base = b.alloc((tokens_per_fn + 2) * _NODE_WORDS * 2)
    #: Lexer state cell: ``classify`` records the token class here and the
    #: parser consults it right after the call (gcc's lexer communicates
    #: with the parser through globals like yylval in exactly this way).
    lexstate_addr = b.alloc_data([0])

    fn = b.reg("fn")
    i = b.reg("i")
    tok = b.reg("tok")
    kind = b.reg("kind")
    node = b.reg("node")
    prev = b.reg("prev")
    head = b.reg("head")
    heap = b.reg("heap")
    tbase = b.reg("tbase")
    addr = b.reg("addr")
    v1 = b.reg("v1")
    v2 = b.reg("v2")
    folded = b.reg("folded")
    cost = b.reg("cost")
    t = b.reg("t")

    b.li(tbase, token_base)
    b.li(cost, 0)

    with b.for_range(fn, 0, n_functions):
        # ---- Phase 1+2: lex tokens and build the linked IR list. ----
        b.li(heap, heap_base)
        b.li(head, 0)
        b.li(prev, 0)
        with b.for_range(i, 0, tokens_per_fn):
            b.li(addr, tokens_per_fn)
            b.mul(t, fn, addr)
            b.add(t, t, i)
            b.add(addr, tbase, t)
            b.load(tok, addr)
            b.mov(ARG_REGS[0], tok)
            b.call("classify")
            b.li(addr, lexstate_addr)
            b.load(kind, addr)
            # allocate node
            b.mov(node, heap)
            b.addi(heap, heap, _NODE_WORDS)
            b.store(kind, node, 0)
            b.andi(t, tok, 255)
            b.store(t, node, 1)
            b.shri(t, tok, 4)
            b.andi(t, t, 255)
            b.store(t, node, 2)
            b.store(0, node, 3)
            # link

            def _first() -> None:
                b.mov(head, node)

            def _chain() -> None:
                b.store(node, prev, 3)

            b.if_else(Opcode.BEQZ, (prev,), _first, _chain)
            b.mov(prev, node)

        # ---- Phase 3: constant folding walk (data-dependent updates). ----
        b.li(folded, 0)
        b.mov(node, head)
        with b.while_(Opcode.BNEZ, (node,)):
            b.load(kind, node, 0)
            b.load(v1, node, 1)
            b.load(v2, node, 2)
            # Per-node hash of the operands (value-numbering style work).
            b.shli(t, v1, 3)
            b.xor(t, t, v2)
            b.shri(v2, t, 2)
            b.xor(t, t, v2)
            b.andi(t, t, 255)
            b.add(folded, folded, t)
            b.andi(folded, folded, 0xFFFF)
            b.li(t, 2)
            with b.if_(Opcode.BEQ, (kind, t)):
                b.load(v1, node, 1)
                b.load(v2, node, 2)
                with b.if_(Opcode.BLT, (v2, v1)):
                    # fold: becomes a const of the sum
                    b.store(0, node, 0)
                    b.add(v1, v1, v2)
                    b.store(v1, node, 1)
                    b.addi(folded, folded, 1)
            b.load(node, node, 3)

        # ---- Phase 4: scheduling cost walk with an inner lookahead. ----
        b.mov(node, head)
        with b.while_(Opcode.BNEZ, (node,)):
            b.load(kind, node, 0)
            b.mov(ARG_REGS[0], node)
            b.mov(ARG_REGS[1], kind)
            b.call("sched_cost")
            b.add(cost, cost, RV_REG)
            b.load(node, node, 3)
    b.halt()

    # classify(tok): records the token class in the lexer state cell.
    with b.function("classify"):
        x = b.reg("cl_x")
        y = b.reg("cl_y")
        b.shri(x, ARG_REGS[0], 3)
        b.xor(x, x, ARG_REGS[0])
        b.andi(x, x, 7)
        b.li(y, _KINDS)
        b.rem(x, x, y)
        b.li(y, lexstate_addr)
        b.store(x, y)
        b.mov(RV_REG, x)
        # classify returns its token class per the calling convention even
        # though the current callers only consume the lexer-state cell.
        b.lint_suppress(
            f"dead-store@{b.here() - 1}",
            "RV set per calling convention; callers read the state cell",
        )

    # sched_cost(node, kind): look ahead up to 3 successors, sum a
    # kind-dependent latency (irregular short inner loop).
    with b.function("sched_cost"):
        n = b.reg("sc_n")
        k = b.reg("sc_k")
        c = b.reg("sc_c")
        j = b.reg("sc_j")
        kk = b.reg("sc_kk")
        b.mov(n, ARG_REGS[0])
        b.mov(k, ARG_REGS[1])
        b.addi(c, k, 1)
        b.li(j, 0)
        lim = b.temp()
        b.li(lim, 3)
        with b.while_(Opcode.BLT, (j, lim)):
            b.load(n, n, 3)
            with b.if_(Opcode.BEQZ, (n,)):
                b.li(j, 3)
            with b.if_(Opcode.BNEZ, (n,)):
                b.load(kk, n, 0)
                with b.if_(Opcode.BEQ, (kk, k)):
                    b.addi(c, c, 2)  # structural hazard
            b.addi(j, j, 1)
        b.mov(RV_REG, c)
    return b.build()
