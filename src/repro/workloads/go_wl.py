"""``go`` analogue: branchy board evaluation with data-dependent control.

SpecInt95 ``go`` plays the game of Go: its time goes into evaluating board
positions with deeply data-dependent branches and irregular inner loops
(liberty counting, pattern matches).  The analogue keeps a 19x19 board and,
for a sequence of moves, scores a sample of candidate points by inspecting
neighbours and walking chains — heavy conditional control, modest calls.
"""

from __future__ import annotations

from repro.isa.builder import ARG_REGS, RV_REG, ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.generators import dataset_seed, pseudo_random_words, scaled

_SIZE = 19
_POINTS = _SIZE * _SIZE


def build_go(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the go analogue; ``scale`` multiplies the number of moves."""
    n_moves = scaled(42, scale)
    candidates = 24
    b = ProgramBuilder("go")

    board_base = b.alloc_data(pseudo_random_words(dataset_seed(0x60B0, dataset), _POINTS, 0, 3))
    score_base = b.alloc(_POINTS)
    # Candidate move list, precomputed as real go engines do (move
    # generators fill a list; the evaluator scans it) — scanning memory
    # instead of chaining an in-loop RNG keeps evaluations independent.
    cand_base = b.alloc_data(
        v % _POINTS
        for v in pseudo_random_words(dataset_seed(0x5EED, dataset), n_moves * candidates, 0, 1 << 20)
    )

    move = b.reg("move")
    cand = b.reg("cand")
    pos = b.reg("pos")
    best = b.reg("best")
    bestpos = b.reg("bestpos")
    score = b.reg("score")
    bbase = b.reg("bbase")
    sbase = b.reg("sbase")
    addr = b.reg("addr")
    stone = b.reg("stone")
    t = b.reg("t")

    b.li(bbase, board_base)
    b.li(sbase, score_base)

    cbase = b.reg("cbase")
    b.li(cbase, cand_base)
    with b.for_range(move, 0, n_moves):
        b.li(best, -1)
        b.li(bestpos, 0)
        with b.for_range(cand, 0, candidates):
            # pos = candidate_list[move * candidates + cand]
            b.li(t, candidates)
            b.mul(pos, move, t)
            b.add(pos, pos, cand)
            b.add(pos, pos, cbase)
            b.load(pos, pos)
            # score = evaluate(pos)
            b.mov(ARG_REGS[0], pos)
            b.call("evaluate")
            b.mov(score, RV_REG)
            # keep the best candidate
            with b.if_(Opcode.BLT, (best, score)):
                b.mov(best, score)
                b.mov(bestpos, pos)
        # play: flip the stone at bestpos, record the score
        b.add(addr, bbase, bestpos)
        b.load(stone, addr)
        b.addi(stone, stone, 1)
        b.li(t, 3)
        b.rem(stone, stone, t)
        b.store(stone, addr)
        b.add(addr, sbase, bestpos)
        b.store(best, addr)
    b.halt()

    # ------------------------------------------------------------------
    # evaluate(pos) -> score: inspect the four neighbours; for friendly
    # stones walk a short chain east counting "liberties".
    # ------------------------------------------------------------------
    with b.function("evaluate"):
        p = ARG_REGS[0]
        s = b.reg("ev_s")
        a = b.reg("ev_a")
        v = b.reg("ev_v")
        k = b.reg("ev_k")
        lim = b.reg("ev_lim")
        b.li(s, 0)
        for delta in (-_SIZE, _SIZE, -1, 1):
            b.addi(a, p, delta)
            # bounds check: skip when outside [0, POINTS)
            with b.if_(Opcode.BGE, (a, 0)):
                b.li(v, _POINTS)
                with b.if_(Opcode.BLT, (a, v)):
                    b.add(a, a, bbase)
                    b.load(v, a)

                    def _empty() -> None:
                        b.addi(s, s, 2)

                    def _stone() -> None:
                        b.addi(s, s, 1)

                    b.if_else(Opcode.BEQZ, (v,), _empty, _stone)
        # chain walk east while stones continue (data-dependent trip count)
        b.mov(a, p)
        b.li(k, 0)
        b.li(lim, 6)
        head_cond = b.temp()
        with b.while_(Opcode.BLT, (k, lim)):
            b.addi(a, a, 1)
            b.li(head_cond, _POINTS)
            with b.if_(Opcode.BGE, (a, head_cond)):
                b.li(k, 6)  # force exit at the edge
            with b.if_(Opcode.BLT, (a, head_cond)):
                b.add(v, a, bbase)
                b.load(v, v)
                with b.if_(Opcode.BNEZ, (v,)):
                    b.addi(s, s, 1)
                with b.if_(Opcode.BEQZ, (v,)):
                    b.li(k, 6)  # chain ended
            b.addi(k, k, 1)
        b.mov(RV_REG, s)
    return b.build()
