"""Synthetic SpecInt95-analogue workload suite.

The paper evaluates on SpecInt95 (go, m88ksim, gcc, compress, li, ijpeg,
perl, vortex) compiled for Alpha and traced with ATOM.  Those binaries and
inputs are not redistributable, so each workload here is a small program in
our own ISA engineered to mimic the control/data character that drives its
namesake's behaviour in the paper:

- ``compress``  — serial hash-chained loop (few spawning pairs, fragile
  under aggressive pair removal, as in the paper's Figure 5a).
- ``ijpeg``     — regular nested array/FP loops (the most regular program,
  highest speed-up in Figure 3).
- ``go``        — branchy board evaluation with data-dependent control.
- ``m88ksim``   — fetch/decode/dispatch CPU-simulator loop.
- ``gcc``       — multi-phase pass pipeline over linked IR nodes.
- ``li``        — recursive list interpreter with pointer chasing.
- ``perl``      — bytecode interpreter with string and hash-table ops.
- ``vortex``    — call-heavy object-database transactions.
"""

from repro.workloads.suite import (
    SPECINT95,
    WorkloadSpec,
    build_workload,
    load_trace,
    workload_names,
)

__all__ = [
    "SPECINT95",
    "WorkloadSpec",
    "build_workload",
    "load_trace",
    "workload_names",
]
