"""Workload registry: build programs and (cached) traces by name.

``load_trace`` memoizes in-process (``functools.lru_cache``); the
experiment layer adds an on-disk layer on top —
``repro.experiments.framework.trace_for`` stores traces in the
content-addressed :class:`~repro.cache.ArtifactCache`, keyed by
(workload, scale, dataset) plus the generating code's digest, so sweeps
and parallel workers share one functional execution per workload.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exec import Trace, run_program
from repro.isa.program import Program
from repro.workloads.compress_wl import build_compress
from repro.workloads.gcc_wl import build_gcc
from repro.workloads.go_wl import build_go
from repro.workloads.ijpeg_wl import build_ijpeg
from repro.workloads.li_wl import build_li
from repro.workloads.m88ksim_wl import build_m88ksim
from repro.workloads.perl_wl import build_perl
from repro.workloads.vortex_wl import build_vortex


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload and the builder that generates its program.

    Builders take ``(scale, dataset)``: scale multiplies trip counts,
    dataset reshuffles the input data without changing the program text.
    """

    name: str
    builder: Callable[..., Program]
    description: str


#: The SpecInt95-analogue suite, in the paper's presentation order.
SPECINT95: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec("go", build_go, "branchy board evaluation"),
        WorkloadSpec("m88ksim", build_m88ksim, "CPU-simulator dispatch loop"),
        WorkloadSpec("gcc", build_gcc, "multi-phase pass pipeline over IR"),
        WorkloadSpec("compress", build_compress, "serial hash-chained loop"),
        WorkloadSpec("li", build_li, "recursive list interpreter"),
        WorkloadSpec("ijpeg", build_ijpeg, "regular block/FP kernels"),
        WorkloadSpec("perl", build_perl, "bytecode interpreter"),
        WorkloadSpec("vortex", build_vortex, "object-database transactions"),
    )
}


def workload_names() -> List[str]:
    """Return the suite members in canonical (paper) order."""
    return list(SPECINT95.keys())


def build_workload(
    name: str, scale: float = 1.0, dataset: str = "train"
) -> Program:
    """Build the named workload's program.

    Args:
        name: Workload name (see :func:`workload_names`).
        scale: Trip-count multiplier (1.0 = the default size).
        dataset: Input variant (``train``/``ref``) — reshuffles data,
            never changes the program text.

    Returns:
        The assembled :class:`~repro.isa.program.Program`.
    """
    try:
        spec = SPECINT95[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
    return spec.builder(scale, dataset)


@functools.lru_cache(maxsize=32)
def load_trace(
    name: str,
    scale: float = 1.0,
    dataset: str = "train",
    max_steps: Optional[int] = None,
) -> Trace:
    """Build, execute and cache the named workload's dynamic trace.

    Traces are deterministic for a given (name, scale, dataset), so caching
    is safe and keeps experiment sweeps from re-running the functional
    simulation.  ``max_steps`` bounds the functional execution; a workload
    that does not halt within it raises
    :class:`~repro.errors.WorkloadError`.

    Args:
        name: Workload name (see :func:`workload_names`).
        scale: Trip-count multiplier.
        dataset: Input variant (``train``/``ref``).
        max_steps: Functional-execution step budget (None = unbounded).

    Returns:
        The memoized :class:`~repro.exec.Trace`.
    """
    return run_program(build_workload(name, scale, dataset), max_steps=max_steps)
