"""``vortex`` analogue: call-heavy object-database transactions.

SpecInt95 ``vortex`` is an object-oriented database: transaction processing
through deep call chains (lookup, validate, update, index maintenance) over
record structures in memory.  The paper reports its biggest profile-based
win on vortex — subroutine-rich code where the profile finds spawning pairs
the call-continuation heuristic misses.  The analogue runs a transaction
loop where each transaction hashes a key, probes an index, and calls
validate/update/audit routines on fixed-layout records.
"""

from __future__ import annotations

from repro.isa.builder import ARG_REGS, RV_REG, ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.generators import (
    dataset_seed,
    emit_lcg_next,
    pseudo_random_words,
    scaled,
)

#: Record layout (words): [0]=key, [1]=balance, [2]=count, [3]=flags.
_REC_WORDS = 4
_N_RECORDS = 128
_INDEX_SIZE = 256


def build_vortex(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the vortex analogue; ``scale`` multiplies the transactions."""
    n_txns = scaled(260, scale)
    b = ProgramBuilder("vortex")

    keys = pseudo_random_words(dataset_seed(0x50B, dataset), _N_RECORDS, 1, 1 << 14)
    records = []
    for ri, key in enumerate(keys):
        records.extend([key, 100 + ri, 0, ri & 3])
    rec_base = b.alloc_data(records)

    # Index: open-addressed key -> record address.
    index_keys = [0] * _INDEX_SIZE
    index_vals = [0] * _INDEX_SIZE
    for ri, key in enumerate(keys):
        h = ((key << 1) ^ key) & (_INDEX_SIZE - 1)
        while index_keys[h]:
            h = (h + 1) & (_INDEX_SIZE - 1)
        index_keys[h] = key
        index_vals[h] = rec_base + ri * _REC_WORDS
    ikeys_base = b.alloc_data(index_keys)
    ivals_base = b.alloc_data(index_vals)
    log_base = b.alloc(n_txns + 1)

    txn = b.reg("txn")
    rng = b.reg("rng")
    key = b.reg("key")
    rec = b.reg("rec")
    ok = b.reg("ok")
    logp = b.reg("logp")
    addr = b.reg("addr")
    nrec = b.reg("nrec")
    t = b.reg("t")

    b.li(rng, 0xB0B)
    b.li(logp, log_base)
    b.li(nrec, _N_RECORDS)

    with b.for_range(txn, 0, n_txns):
        # Pick an existing key (mostly) or a missing one (sometimes).
        emit_lcg_next(b, rng, t)
        b.rem(key, rng, nrec)
        b.shli(addr, key, 2)  # record index * REC_WORDS
        b.addi(addr, addr, rec_base)
        b.load(key, addr, 0)  # key of that record
        b.andi(t, rng, 15)
        with b.if_(Opcode.BEQZ, (t,)):
            b.addi(key, key, 1)  # poison: likely-miss probe
        b.mov(ARG_REGS[0], key)
        b.call("db_lookup")
        b.mov(rec, RV_REG)

        with b.if_(Opcode.BNEZ, (rec,)):
            b.mov(ARG_REGS[0], rec)
            b.call("db_validate")
            b.mov(ok, RV_REG)
            with b.if_(Opcode.BNEZ, (ok,)):
                b.mov(ARG_REGS[0], rec)
                b.andi(ARG_REGS[1], rng, 31)
                b.call("db_update")
                b.mov(ARG_REGS[0], rec)
                b.call("db_audit")
                b.store(RV_REG, logp, 0)
                b.addi(logp, logp, 1)
    b.halt()

    # db_lookup(key) -> record address or 0 (open-addressing probe loop).
    with b.function("db_lookup"):
        h = b.reg("lk_h")
        probe = b.reg("lk_probe")
        tries = b.reg("lk_tries")
        a = b.reg("lk_a")
        lim = b.reg("lk_lim")
        k = b.reg("lk_k")
        b.mov(k, ARG_REGS[0])
        b.shli(h, k, 1)
        b.xor(h, h, k)
        b.andi(h, h, _INDEX_SIZE - 1)
        b.li(RV_REG, 0)
        b.li(tries, 0)
        b.li(lim, 6)
        with b.while_(Opcode.BLT, (tries, lim)):
            b.li(a, ikeys_base)
            b.add(a, a, h)
            b.load(probe, a)

            def _hit() -> None:
                b.li(a, ivals_base)
                b.add(a, a, h)
                b.load(RV_REG, a)
                b.li(tries, 6)

            def _next() -> None:
                def _empty() -> None:
                    b.li(tries, 6)  # miss: open slot terminates the probe

                def _collide() -> None:
                    b.addi(h, h, 1)
                    b.andi(h, h, _INDEX_SIZE - 1)

                b.if_else(Opcode.BEQZ, (probe,), _empty, _collide)

            b.if_else(Opcode.BEQ, (probe, k), _hit, _next)
            b.addi(tries, tries, 1)

    # db_validate(rec) -> 0/1: flag and balance checks.
    with b.function("db_validate"):
        f = b.reg("vd_f")
        bal = b.reg("vd_bal")
        b.load(f, ARG_REGS[0], 3)
        b.li(RV_REG, 1)
        b.li(bal, 3)
        with b.if_(Opcode.BEQ, (f, bal)):
            b.li(RV_REG, 0)  # flag 3 records are locked
        b.load(bal, ARG_REGS[0], 1)
        with b.if_(Opcode.BLT, (bal, 0)):
            b.li(RV_REG, 0)

    # db_update(rec, delta): mutate balance/count, rotate flags.
    with b.function("db_update"):
        bal = b.reg("up_bal")
        cnt = b.reg("up_cnt")
        f = b.reg("up_f")
        m = b.reg("up_m")
        b.load(bal, ARG_REGS[0], 1)
        b.add(bal, bal, ARG_REGS[1])
        b.li(m, 100000)
        b.rem(bal, bal, m)
        b.store(bal, ARG_REGS[0], 1)
        b.load(cnt, ARG_REGS[0], 2)
        b.addi(cnt, cnt, 1)
        b.store(cnt, ARG_REGS[0], 2)
        b.load(f, ARG_REGS[0], 3)
        b.addi(f, f, 1)
        b.andi(f, f, 3)
        b.store(f, ARG_REGS[0], 3)

    # db_audit(rec) -> checksum of the record (straight-line loads).
    with b.function("db_audit"):
        s = b.reg("au_s")
        w = b.reg("au_w")
        b.li(s, 0)
        for off in range(_REC_WORDS):
            b.load(w, ARG_REGS[0], off)
            b.xor(s, s, w)
            b.shli(s, s, 1)
            b.andi(s, s, 0xFFFF)
        b.mov(RV_REG, s)
    return b.build()
