"""``perl`` analogue: bytecode interpreter with string and hash ops.

SpecInt95 ``perl`` interprets Perl programs: an opcode dispatch loop like
``m88ksim`` but with heavier per-op work — string copies/compares over
memory buffers and symbol-table (hash) lookups — and guest-level control
flow that depends on computed values.
"""

from __future__ import annotations

from repro.isa.builder import ARG_REGS, RV_REG, ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.generators import dataset_seed, pseudo_random_words, scaled

_N_OPS = 6  # 0 push, 1 add, 2 strcpy, 3 strcmp, 4 hset, 5 branch
_HASH_SIZE = 64
_STR_LEN = 12


def _encode_script(seed: int, length: int):
    """Guest bytecode: word = op*4096 + operand."""
    words = []
    for raw in pseudo_random_words(seed, length, 0, 1 << 20):
        op = raw % _N_OPS
        operand = (raw >> 5) % 256
        words.append(op * 4096 + operand)
    return words


def build_perl(scale: float = 1.0, dataset: str = "train") -> Program:
    """Build the perl analogue; ``scale`` multiplies interpreted steps."""
    script_len = 160
    n_steps = scaled(620, scale)
    b = ProgramBuilder("perl")

    script_base = b.alloc_data(_encode_script(dataset_seed(0x9E71, dataset), script_len))
    strpool_base = b.alloc_data(
        pseudo_random_words(dataset_seed(0x57E, dataset), 8 * _STR_LEN, 32, 127)
    )
    strbuf_base = b.alloc(_STR_LEN)
    hkeys_base = b.alloc(_HASH_SIZE)
    hvals_base = b.alloc(_HASH_SIZE)
    stack_base = b.alloc(64)

    step = b.reg("step")
    gpc = b.reg("gpc")
    word = b.reg("word")
    gop = b.reg("gop")
    arg = b.reg("arg")
    addr = b.reg("addr")
    acc = b.reg("acc")
    vsp = b.reg("vsp")
    sbase = b.reg("sbase")
    slen = b.reg("slen")
    t = b.reg("t")

    b.li(sbase, script_base)
    b.li(slen, script_len)
    b.li(gpc, 0)
    b.li(acc, 0)
    b.li(vsp, stack_base)

    with b.for_range(step, 0, n_steps):
        b.add(addr, sbase, gpc)
        b.load(word, addr)
        b.shri(gop, word, 12)
        b.andi(arg, word, 255)
        b.mov(ARG_REGS[0], arg)
        # dispatch chain
        b.li(t, 0)
        with b.if_(Opcode.BEQ, (gop, t)):
            # push arg
            b.store(arg, vsp, 0)
            b.addi(vsp, vsp, 1)
            b.andi(t, vsp, 31)
            with b.if_(Opcode.BEQZ, (t,)):
                b.li(vsp, 0)
                b.addi(vsp, vsp, stack_base)  # wrap the value stack
        b.li(t, 1)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.add(acc, acc, arg)
            b.andi(acc, acc, 0xFFFF)
        b.li(t, 2)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.call("op_strcpy")
        b.li(t, 3)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.call("op_strcmp")
            b.add(acc, acc, RV_REG)
        b.li(t, 4)
        with b.if_(Opcode.BEQ, (gop, t)):
            b.mov(ARG_REGS[1], acc)
            b.call("op_hset")
        # guest control: an LFSR step over acc decides the branch, so the
        # branch itself perturbs its own condition (guest always advances)
        b.li(t, 5)

        def _branch_op() -> None:
            b.andi(t, acc, 1)
            b.shri(acc, acc, 1)
            with b.if_(Opcode.BNEZ, (t,)):
                b.xori(acc, acc, 0xB8)
            with b.if_(Opcode.BEQZ, (acc,)):
                b.li(acc, 0x5A)  # reseed the LFSR

            def _back() -> None:
                b.addi(gpc, gpc, -11)
                with b.if_(Opcode.BLT, (gpc, 0)):
                    b.li(gpc, 0)

            def _fwd() -> None:
                b.addi(gpc, gpc, 2)

            b.if_else(Opcode.BEQZ, (t,), _back, _fwd)

        def _next_op() -> None:
            b.addi(gpc, gpc, 1)

        b.if_else(Opcode.BEQ, (gop, t), _branch_op, _next_op)
        with b.if_(Opcode.BGE, (gpc, slen)):
            b.li(gpc, 0)
    b.halt()

    # op_strcpy(arg): copy one pooled string into the work buffer.
    with b.function("op_strcpy"):
        i = b.reg("sc_i")
        src = b.reg("sc_src")
        dst = b.reg("sc_dst")
        c = b.reg("sc_c")
        b.andi(src, ARG_REGS[0], 7)
        b.li(c, _STR_LEN)
        b.mul(src, src, c)
        b.addi(src, src, strpool_base)
        b.li(dst, strbuf_base)
        with b.for_range(i, 0, _STR_LEN):
            b.load(c, src, 0)
            b.store(c, dst, 0)
            b.addi(src, src, 1)
            b.addi(dst, dst, 1)

    # op_strcmp(arg) -> 0/1: compare the buffer with a pooled string,
    # early-exit loop (data-dependent trip count).
    with b.function("op_strcmp"):
        i = b.reg("sm_i")
        pa = b.reg("sm_pa")
        pb = b.reg("sm_pb")
        ca = b.reg("sm_ca")
        cb = b.reg("sm_cb")
        lim = b.reg("sm_lim")
        b.andi(pa, ARG_REGS[0], 7)
        b.li(lim, _STR_LEN)
        b.mul(pa, pa, lim)
        b.addi(pa, pa, strpool_base)
        b.li(pb, strbuf_base)
        b.li(RV_REG, 1)
        b.li(i, 0)
        with b.while_(Opcode.BLT, (i, lim)):
            b.load(ca, pa, 0)
            b.load(cb, pb, 0)
            with b.if_(Opcode.BNE, (ca, cb)):
                b.li(RV_REG, 0)
                b.li(i, _STR_LEN - 1)
            b.addi(pa, pa, 1)
            b.addi(pb, pb, 1)
            b.addi(i, i, 1)

    # op_hset(key, value): open-addressing insert into the symbol table.
    with b.function("op_hset"):
        h = b.reg("hs_h")
        k = b.reg("hs_k")
        probe = b.reg("hs_probe")
        tries = b.reg("hs_tries")
        a = b.reg("hs_a")
        lim = b.reg("hs_lim")
        b.addi(k, ARG_REGS[0], 1)  # keys are nonzero
        b.shli(h, k, 2)
        b.xor(h, h, k)
        b.andi(h, h, _HASH_SIZE - 1)
        b.li(tries, 0)
        b.li(lim, 4)
        with b.while_(Opcode.BLT, (tries, lim)):
            b.li(a, hkeys_base)
            b.add(a, a, h)
            b.load(probe, a)

            def _takeslot() -> None:
                b.li(a, hkeys_base)
                b.add(a, a, h)
                b.store(k, a)
                b.li(a, hvals_base)
                b.add(a, a, h)
                b.store(ARG_REGS[1], a)
                b.li(tries, 4)

            def _collide() -> None:
                b.addi(h, h, 1)
                b.andi(h, h, _HASH_SIZE - 1)

            def _check() -> None:
                b.if_else(Opcode.BEQ, (probe, k), _takeslot, _collide)

            b.if_else(Opcode.BEQZ, (probe,), _takeslot, _check)
            b.addi(tries, tries, 1)
    return b.build()
