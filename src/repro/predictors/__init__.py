"""Branch and value predictors.

Value predictors supply speculative-thread live-in register values at spawn
time (paper Section 4.3.1): tables are 16KB, indexed by hashing the SP pc,
the CQIP pc and the architectural register number.  The stride [6][19] and
context-based FCM [20] predictors from the paper are provided, plus perfect
and always-miss bounds and a last-value baseline.

The branch predictor is the per-thread-unit 10-bit gshare of Section 4.1;
its tables deliberately persist across the threads that run on a unit.
"""

from repro.predictors.branch import GsharePredictor
from repro.predictors.value import (
    FCMPredictor,
    LastValuePredictor,
    NeverPredictor,
    PerfectPredictor,
    StridePredictor,
    ValuePredictor,
    make_value_predictor,
)

__all__ = [
    "GsharePredictor",
    "ValuePredictor",
    "PerfectPredictor",
    "NeverPredictor",
    "LastValuePredictor",
    "StridePredictor",
    "FCMPredictor",
    "make_value_predictor",
]
