"""Value predictors for speculative-thread live-in registers.

Prediction happens at spawn time: for each live-in register the predictor
sees ``base`` — the architectural value the register holds in the spawning
thread at the spawning point (hardware reads it from the parent's register
file) — and must produce the value the register will hold at the CQIP.
This is the *increment predictor* organisation of the paper's own value-
prediction study [14]: recurrences such as induction variables advance by
a fixed stride per spawned instance, and anchoring the prediction to the
parent's current value makes it immune to the training lag and cross-chain
interleaving that plague plain last-value tables in an SpMT pipeline.

Tables are sized in KB as in the paper (16KB default) and indexed by
hashing the SP pc, the CQIP pc and the register number (Section 4.3.1).
"""

from __future__ import annotations

from typing import List, Optional


def _hash_index(sp_pc: int, cqip_pc: int, reg: int, mask: int) -> int:
    """Combine the three identifiers into a table index."""
    h = sp_pc * 0x9E3779B1 ^ cqip_pc * 0x85EBCA77 ^ reg * 0xC2B2AE3D
    h ^= h >> 13
    return h & mask


class ValuePredictor:
    """Base class keeping the hit/miss accounting used for Figure 9a."""

    name = "base"

    def __init__(self) -> None:
        self.predictions = 0
        self.hits = 0

    def predict(
        self, sp_pc: int, cqip_pc: int, reg: int, base, lookahead: int = 1
    ) -> Optional[int]:
        """Predicted live-in value given the parent's value ``base``.

        ``lookahead`` counts in-flight instances of the pair for table
        predictors that extrapolate from the last *committed* value.
        Returns None when the predictor has no information yet.
        """
        raise NotImplementedError

    def train(self, sp_pc: int, cqip_pc: int, reg: int, base, actual) -> None:
        """Feed back the validated (spawn-time base, live-in value) pair."""
        raise NotImplementedError

    def record(self, correct: bool) -> None:
        """Account one live-in prediction outcome."""
        self.predictions += 1
        if correct:
            self.hits += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.predictions if self.predictions else 0.0


class PerfectPredictor(ValuePredictor):
    """Oracle: every live-in is available at spawn (paper's upper bound)."""

    name = "perfect"

    def predict(
        self, sp_pc: int, cqip_pc: int, reg: int, base, lookahead: int = 1
    ) -> Optional[int]:
        return None  # the simulator special-cases perfection

    def train(self, sp_pc: int, cqip_pc: int, reg: int, base, actual) -> None:
        pass


class NeverPredictor(ValuePredictor):
    """No prediction: consumers always synchronise with producers."""

    name = "none"

    def predict(
        self, sp_pc: int, cqip_pc: int, reg: int, base, lookahead: int = 1
    ) -> Optional[int]:
        return None

    def train(self, sp_pc: int, cqip_pc: int, reg: int, base, actual) -> None:
        pass


class LastValuePredictor(ValuePredictor):
    """Copy predictor: the live-in equals the parent's value at spawn.

    This is exactly the Dynamic Multithreaded Processor's scheme the paper
    describes ("register values of the spawned thread are predicted to be
    the same as those of the spawning thread at spawn time").
    """

    name = "last"

    def predict(
        self, sp_pc: int, cqip_pc: int, reg: int, base, lookahead: int = 1
    ) -> Optional[int]:
        return base

    def train(self, sp_pc: int, cqip_pc: int, reg: int, base, actual) -> None:
        pass


class StridePredictor(ValuePredictor):
    """Increment/stride predictor [6][19] adapted to SpMT per [14].

    Each (pair, register) slot holds the stride between the parent's value
    at the spawning point and the live-in observed at the CQIP; prediction
    is ``base + stride``.  The stride only updates when two consecutive
    observations agree (two-delta rule).
    """

    name = "stride"

    def __init__(self, size_kb: int = 16, entry_bytes: int = 8):
        super().__init__()
        entries = max(1, size_kb * 1024 // entry_bytes)
        self.mask = (1 << (entries.bit_length() - 1)) - 1
        n = self.mask + 1
        self.strides: List[Optional[int]] = [None] * n
        self.last_delta: List[Optional[int]] = [None] * n

    def predict(
        self, sp_pc: int, cqip_pc: int, reg: int, base, lookahead: int = 1
    ) -> Optional[int]:
        index = _hash_index(sp_pc, cqip_pc, reg, self.mask)
        stride = self.strides[index]
        if stride is None or not isinstance(base, int):
            return None
        return base + stride

    def train(self, sp_pc: int, cqip_pc: int, reg: int, base, actual) -> None:
        index = _hash_index(sp_pc, cqip_pc, reg, self.mask)
        if not (isinstance(base, int) and isinstance(actual, int)):
            self.strides[index] = None
            self.last_delta[index] = None
            return
        delta = actual - base
        if delta == self.last_delta[index]:
            self.strides[index] = delta
        self.last_delta[index] = delta


class FCMPredictor(ValuePredictor):
    """Order-2 finite-context-method predictor [20].

    Level 1 maps the (pair, reg) slot to a compressed history of the last
    two observed live-ins; level 2 maps that history to the predicted next
    value.  The 16KB budget is split evenly between the two tables.  FCM
    cannot extrapolate an unseen future history, so the SpMT training lag
    degrades it relative to stride — matching the paper's observation that
    stride works best on this architecture.
    """

    name = "fcm"

    def __init__(self, size_kb: int = 16, entry_bytes: int = 8):
        super().__init__()
        entries = max(2, size_kb * 1024 // entry_bytes)
        l1 = entries // 2
        l2 = entries - l1
        self.l1_mask = (1 << (l1.bit_length() - 1)) - 1
        self.l2_mask = (1 << (l2.bit_length() - 1)) - 1
        self.histories: List[int] = [0] * (self.l1_mask + 1)
        self.values: List[Optional[int]] = [None] * (self.l2_mask + 1)

    @staticmethod
    def _fold(value) -> int:
        if isinstance(value, int):
            return value & 0xFFFF
        return hash(value) & 0xFFFF

    def _l2_index(self, history: int) -> int:
        h = history * 0x9E3779B1
        h ^= h >> 11
        return h & self.l2_mask

    def predict(
        self, sp_pc: int, cqip_pc: int, reg: int, base, lookahead: int = 1
    ) -> Optional[int]:
        slot = _hash_index(sp_pc, cqip_pc, reg, self.l1_mask)
        return self.values[self._l2_index(self.histories[slot])]

    def train(self, sp_pc: int, cqip_pc: int, reg: int, base, actual) -> None:
        slot = _hash_index(sp_pc, cqip_pc, reg, self.l1_mask)
        history = self.histories[slot]
        self.values[self._l2_index(history)] = actual
        self.histories[slot] = ((history << 16) | self._fold(actual)) & 0xFFFFFFFF


def make_value_predictor(name: str, size_kb: int = 16) -> ValuePredictor:
    """Factory keyed by the names used in the experiment configs."""
    factories = {
        "perfect": lambda: PerfectPredictor(),
        "none": lambda: NeverPredictor(),
        "last": lambda: LastValuePredictor(),
        "stride": lambda: StridePredictor(size_kb),
        "fcm": lambda: FCMPredictor(size_kb),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown value predictor {name!r}; choose from {sorted(factories)}"
        ) from None
