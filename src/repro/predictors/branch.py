"""gshare branch predictor (10-bit, 2-bit saturating counters)."""

from __future__ import annotations


class GsharePredictor:
    """Classic gshare: global history XOR pc indexes 2-bit counters.

    One instance lives in each thread unit; the paper notes the tables are
    *not* reinitialised when a new thread is assigned to the unit, so the
    simulator keeps the instance alive across threads.
    """

    def __init__(self, history_bits: int = 10):
        if not 1 <= history_bits <= 20:
            raise ValueError(f"history_bits out of range: {history_bits}")
        self.history_bits = history_bits
        self.mask = (1 << history_bits) - 1
        self.counters = [2] * (1 << history_bits)  # weakly taken
        self.history = 0
        self.predictions = 0
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self.counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was correct."""
        index = self._index(pc)
        predicted = self.counters[index] >= 2
        if taken:
            if self.counters[index] < 3:
                self.counters[index] += 1
        else:
            if self.counters[index] > 0:
                self.counters[index] -= 1
        self.history = ((self.history << 1) | int(taken)) & self.mask
        self.predictions += 1
        correct = predicted == taken
        if correct:
            self.hits += 1
        return correct

    @property
    def hit_rate(self) -> float:
        return self.hits / self.predictions if self.predictions else 0.0


class BimodalPredictor(GsharePredictor):
    """Per-pc 2-bit counters without global history.

    Provided as an alternative to gshare: on a clustered SpMT the dynamic
    stream each unit sees is a sequence of short thread fragments, which
    scrambles a global history register; a history-free table is immune to
    that fragmentation (see DESIGN.md's modelling notes).
    """

    def _index(self, pc: int) -> int:
        return pc & self.mask


def make_branch_predictor(name: str, history_bits: int = 10) -> GsharePredictor:
    """Factory keyed by the names used in processor configs."""
    if name == "gshare":
        return GsharePredictor(history_bits)
    if name == "bimodal":
        return BimodalPredictor(history_bits)
    raise ValueError(f"unknown branch predictor {name!r}")
