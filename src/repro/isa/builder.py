"""Structured program construction.

``ProgramBuilder`` lets the workload generators write programs with named
registers, loops, conditionals, subroutines and static data without managing
raw pcs.  Loops lower to the canonical shape the heuristic spawning policies
expect (a backward branch whose target is the loop head), matching what an
optimizing compiler emits for ``for``/``while`` loops.

Example::

    b = ProgramBuilder("demo")
    i, acc = b.reg("i"), b.reg("acc")
    b.li(acc, 0)
    with b.for_range(i, 0, 100):
        b.add(acc, acc, i)
    b.halt()
    program = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

#: Calling convention: argument and return-value registers.
ARG_REGS = (56, 57, 58, 59)
RV_REG = 60

#: General-purpose allocation pool (r0 is hardwired zero).
_FIRST_ALLOC = 1
_LAST_ALLOC = 55

_NEGATION = {
    Opcode.BEQ: Opcode.BNE,
    Opcode.BNE: Opcode.BEQ,
    Opcode.BLT: Opcode.BGE,
    Opcode.BGE: Opcode.BLT,
    Opcode.BEQZ: Opcode.BNEZ,
    Opcode.BNEZ: Opcode.BEQZ,
}


class ProgramBuilder:
    """Incrementally builds a :class:`Program`."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: List[Tuple[Instruction, Optional[str]]] = []
        self._labels: Dict[str, int] = {}
        self._named_regs: Dict[str, int] = {}
        self._next_reg = _FIRST_ALLOC
        self._next_label = 0
        self._next_addr = 0x1000
        self._initial_memory: Dict[int, int] = {}
        self._lint_suppressions: Dict[str, str] = {}
        self._halted = False

    # ------------------------------------------------------------------
    # Registers and data.
    # ------------------------------------------------------------------

    def reg(self, regname: str) -> int:
        """Return a stable register for ``regname``, allocating on first use."""
        if regname not in self._named_regs:
            self._named_regs[regname] = self._alloc_reg()
        return self._named_regs[regname]

    def temp(self) -> int:
        """Allocate a fresh anonymous register."""
        return self._alloc_reg()

    def _alloc_reg(self) -> int:
        if self._next_reg > _LAST_ALLOC:
            raise RuntimeError("register pool exhausted; reuse named registers")
        reg = self._next_reg
        self._next_reg += 1
        return reg

    def alloc(self, size: int) -> int:
        """Reserve ``size`` words of data memory; returns the base address."""
        base = self._next_addr
        self._next_addr += size
        return base

    def data(self, base: int, values) -> int:
        """Initialise memory at ``base`` with ``values``; returns ``base``."""
        for offset, value in enumerate(values):
            self._initial_memory[base + offset] = value
        return base

    def alloc_data(self, values) -> int:
        """Allocate and initialise a data region in one step."""
        values = list(values)
        return self.data(self.alloc(len(values)), values)

    # ------------------------------------------------------------------
    # Raw emission.
    # ------------------------------------------------------------------

    def emit(
        self,
        op: Opcode,
        dst: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        imm: Optional[int] = None,
        label: Optional[str] = None,
    ) -> int:
        """Append an instruction; ``label`` is a target resolved at build."""
        self._instructions.append(
            (Instruction(op, dst=dst, srcs=srcs, imm=imm), label)
        )
        return len(self._instructions) - 1

    def label(self, name: Optional[str] = None) -> str:
        """Bind ``name`` (or a fresh one) to the next pc."""
        if name is None:
            name = f".L{self._next_label}"
            self._next_label += 1
        if name in self._labels:
            raise ValueError(f"duplicate label: {name}")
        self._labels[name] = len(self._instructions)
        return name

    def here(self) -> int:
        """pc of the next instruction to be emitted."""
        return len(self._instructions)

    def lint_suppress(self, rule: str, reason: str) -> None:
        """Acknowledge an intentional lint finding on the built program.

        ``rule`` is a lint rule id, optionally pc-qualified
        (``"dead-store@17"``); ``reason`` documents why the construct is
        deliberate.  The linter drops matching diagnostics.
        """
        self._lint_suppressions[rule] = reason

    # ------------------------------------------------------------------
    # ALU / memory convenience emitters.
    # ------------------------------------------------------------------

    def li(self, rd: int, imm: int) -> None:
        self.emit(Opcode.LI, dst=rd, imm=imm)

    def mov(self, rd: int, rs: int) -> None:
        self.emit(Opcode.MOV, dst=rd, srcs=(rs,))

    def add(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.ADD, dst=rd, srcs=(ra, rb))

    def sub(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.SUB, dst=rd, srcs=(ra, rb))

    def mul(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.MUL, dst=rd, srcs=(ra, rb))

    def div(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.DIV, dst=rd, srcs=(ra, rb))

    def rem(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.REM, dst=rd, srcs=(ra, rb))

    def and_(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.AND, dst=rd, srcs=(ra, rb))

    def or_(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.OR, dst=rd, srcs=(ra, rb))

    def xor(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.XOR, dst=rd, srcs=(ra, rb))

    def slt(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.SLT, dst=rd, srcs=(ra, rb))

    def addi(self, rd: int, rs: int, imm: int) -> None:
        self.emit(Opcode.ADDI, dst=rd, srcs=(rs,), imm=imm)

    def andi(self, rd: int, rs: int, imm: int) -> None:
        self.emit(Opcode.ANDI, dst=rd, srcs=(rs,), imm=imm)

    def xori(self, rd: int, rs: int, imm: int) -> None:
        self.emit(Opcode.XORI, dst=rd, srcs=(rs,), imm=imm)

    def shli(self, rd: int, rs: int, imm: int) -> None:
        self.emit(Opcode.SHLI, dst=rd, srcs=(rs,), imm=imm)

    def shri(self, rd: int, rs: int, imm: int) -> None:
        self.emit(Opcode.SHRI, dst=rd, srcs=(rs,), imm=imm)

    def fadd(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.FADD, dst=rd, srcs=(ra, rb))

    def fsub(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.FSUB, dst=rd, srcs=(ra, rb))

    def fmul(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.FMUL, dst=rd, srcs=(ra, rb))

    def fdiv(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Opcode.FDIV, dst=rd, srcs=(ra, rb))

    def fcvt(self, rd: int, rs: int) -> None:
        self.emit(Opcode.FCVT, dst=rd, srcs=(rs,))

    def load(self, rd: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.LOAD, dst=rd, srcs=(base,), imm=offset)

    def store(self, rs: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.STORE, srcs=(rs, base), imm=offset)

    def nop(self) -> None:
        self.emit(Opcode.NOP)

    def halt(self) -> None:
        self.emit(Opcode.HALT)
        self._halted = True

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------

    def branch(self, op: Opcode, srcs: Tuple[int, ...], label: str) -> None:
        self.emit(op, srcs=srcs, label=label)

    def jump(self, label: str) -> None:
        self.emit(Opcode.JUMP, label=label)

    def call(self, funcname: str) -> None:
        self.emit(Opcode.CALL, label=funcname)

    def ret(self) -> None:
        self.emit(Opcode.RET)

    @contextlib.contextmanager
    def for_range(
        self, counter: int, start: int, stop, step: int = 1
    ) -> Iterator[None]:
        """Counted loop; ``stop`` is an int bound or a register number string.

        Lowers to the canonical rotated-loop shape: initialisation, a guard
        for the zero-trip case, the body, an increment and a backward
        conditional branch to the head.
        """
        if isinstance(stop, int):
            limit = self.temp()
            self.li(limit, stop)
        else:
            limit = stop
        self.li(counter, start)
        exit_label = f".Lexit{self._next_label}"
        self._next_label += 1
        if step > 0:
            self.branch(Opcode.BGE, (counter, limit), exit_label)
        else:
            self.branch(Opcode.BGE, (limit, counter), exit_label)
        head = self.label()
        yield
        self.addi(counter, counter, step)
        if step > 0:
            self.branch(Opcode.BLT, (counter, limit), head)
        else:
            self.branch(Opcode.BLT, (limit, counter), head)
        self.label(exit_label)

    @contextlib.contextmanager
    def while_(self, op: Opcode, srcs: Tuple[int, ...]) -> Iterator[None]:
        """Loop while the condition ``op srcs`` holds (tested at the top)."""
        head = self.label()
        exit_label = f".Lexit{self._next_label}"
        self._next_label += 1
        self.branch(_NEGATION[op], srcs, exit_label)
        yield
        self.jump(head)
        self.label(exit_label)

    @contextlib.contextmanager
    def if_(self, op: Opcode, srcs: Tuple[int, ...]) -> Iterator[None]:
        """Execute the body only when condition ``op srcs`` holds."""
        skip = f".Lskip{self._next_label}"
        self._next_label += 1
        self.branch(_NEGATION[op], srcs, skip)
        yield
        self.label(skip)

    def if_else(
        self,
        op: Opcode,
        srcs: Tuple[int, ...],
        then_body: Callable[[], None],
        else_body: Callable[[], None],
    ) -> None:
        """Two-armed conditional built from emit callbacks."""
        else_label = f".Lelse{self._next_label}"
        end_label = f".Lend{self._next_label}"
        self._next_label += 1
        self.branch(_NEGATION[op], srcs, else_label)
        then_body()
        self.jump(end_label)
        self.label(else_label)
        else_body()
        self.label(end_label)

    @contextlib.contextmanager
    def function(self, funcname: str) -> Iterator[None]:
        """Define a subroutine; the body must end via :meth:`ret`.

        Functions must be defined after the main code has halted so that
        execution cannot fall through into them.
        """
        if not self._halted:
            raise RuntimeError(
                "define functions after halting the main code path"
            )
        self.label(funcname)
        yield
        last_op = self._instructions[-1][0].op
        if last_op is not Opcode.RET:
            self.ret()

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        instructions = []
        for pc, (inst, label) in enumerate(self._instructions):
            if label is not None:
                if label not in self._labels:
                    raise ValueError(f"pc {pc}: undefined label {label!r}")
                inst = Instruction(
                    inst.op,
                    dst=inst.dst,
                    srcs=inst.srcs,
                    imm=inst.imm,
                    target=self._labels[label],
                )
            instructions.append(inst)
        program = Program(
            instructions=instructions,
            labels=dict(self._labels),
            name=self.name,
            initial_memory=dict(self._initial_memory),
            lint_suppressions=dict(self._lint_suppressions),
        )
        program.validate()
        return program
