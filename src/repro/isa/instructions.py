"""Opcodes, instruction encoding and functional-unit classification.

The functional-unit mix and latencies follow the experimental framework of
the paper (Section 4.1): 2 simple integer units (1 cycle), 2 load/store
units (1 cycle address calculation + cache access), 1 integer multiplier
(4 cycles), 2 simple FP units (4 cycles), 1 FP multiplier (6 cycles) and
1 FP divider (17 cycles).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Opcode(enum.Enum):
    """Every operation understood by the functional executor."""

    # Simple integer ALU (1 cycle).
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"  # set-less-than (signed)
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    SLTI = "slti"
    LI = "li"  # load immediate
    MOV = "mov"

    # Integer multiply (4 cycles).
    MUL = "mul"

    # Integer divide / modulo — share the FP divider (17 cycles).
    DIV = "div"
    REM = "rem"

    # Simple FP (4 cycles).
    FADD = "fadd"
    FSUB = "fsub"
    FCVT = "fcvt"  # int -> float

    # FP multiply (6 cycles) and divide (17 cycles).
    FMUL = "fmul"
    FDIV = "fdiv"

    # Memory (1 cycle + cache access latency).
    LOAD = "load"
    STORE = "store"

    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BEQZ = "beqz"
    BNEZ = "bnez"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"

    # Misc.
    NOP = "nop"
    HALT = "halt"


class FuClass(enum.Enum):
    """Functional-unit classes of the clustered thread units."""

    SIMPLE_INT = "simple_int"
    LDST = "ldst"
    INT_MUL = "int_mul"
    FP_SIMPLE = "fp_simple"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"


#: Execution latency per functional-unit class (paper Section 4.1).  Load
#: latency excludes the cache access, which the timing model adds on top.
FU_LATENCY = {
    FuClass.SIMPLE_INT: 1,
    FuClass.LDST: 1,
    FuClass.INT_MUL: 4,
    FuClass.FP_SIMPLE: 4,
    FuClass.FP_MUL: 6,
    FuClass.FP_DIV: 17,
}

#: Number of functional units of each class per thread unit.
FU_COUNT = {
    FuClass.SIMPLE_INT: 2,
    FuClass.LDST: 2,
    FuClass.INT_MUL: 1,
    FuClass.FP_SIMPLE: 2,
    FuClass.FP_MUL: 1,
    FuClass.FP_DIV: 1,
}

#: Dense ordinal view of the FU classes for the columnar simulator core:
#: ``FU_CLASSES[i]`` is the class with ordinal ``i``, ``FU_INDEX`` maps a
#: class back to its ordinal, and ``FU_LIMITS[i]``/``FU_LATENCY_BY_INDEX[i]``
#: mirror :data:`FU_COUNT`/:data:`FU_LATENCY` as flat tuples so the hot loop
#: indexes integers instead of hashing enum members.
FU_CLASSES = tuple(FuClass)
FU_INDEX = {fu: index for index, fu in enumerate(FU_CLASSES)}
FU_LIMITS = tuple(FU_COUNT[fu] for fu in FU_CLASSES)
FU_LATENCY_BY_INDEX = tuple(FU_LATENCY[fu] for fu in FU_CLASSES)

#: Conditional branches (have an outcome recorded in the trace).
BRANCH_OPS = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BEQZ, Opcode.BNEZ}
)

#: All control transfers (end a fetch group when taken).
CONTROL_OPS = BRANCH_OPS | {Opcode.JUMP, Opcode.CALL, Opcode.RET}

_FU_OF_OP = {
    Opcode.MUL: FuClass.INT_MUL,
    Opcode.DIV: FuClass.FP_DIV,
    Opcode.REM: FuClass.FP_DIV,
    Opcode.FADD: FuClass.FP_SIMPLE,
    Opcode.FSUB: FuClass.FP_SIMPLE,
    Opcode.FCVT: FuClass.FP_SIMPLE,
    Opcode.FMUL: FuClass.FP_MUL,
    Opcode.FDIV: FuClass.FP_DIV,
    Opcode.LOAD: FuClass.LDST,
    Opcode.STORE: FuClass.LDST,
}


def fu_class(op: Opcode) -> FuClass:
    """Return the functional-unit class that executes ``op``.

    Control-flow and simple ALU operations use the simple integer units.
    """
    return _FU_OF_OP.get(op, FuClass.SIMPLE_INT)


def latency_of(op: Opcode) -> int:
    """Execution latency of ``op`` excluding cache access time."""
    return FU_LATENCY[fu_class(op)]


def is_branch_op(op: Opcode) -> bool:
    """True for conditional branches."""
    return op in BRANCH_OPS


def is_control_op(op: Opcode) -> bool:
    """True for any control transfer (branch, jump, call, return)."""
    return op in CONTROL_OPS


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    ``dst`` and ``srcs`` are register numbers (0..63); register 0 is
    hardwired to zero.  ``imm`` holds immediates and load/store offsets.
    ``target`` is the destination pc for control transfers (resolved from a
    label at assembly time).
    """

    op: Opcode
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = field(default=())
    imm: Optional[int] = None
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dst is not None and not 0 <= self.dst < 64:
            raise ValueError(f"destination register out of range: {self.dst}")
        for reg in self.srcs:
            if not 0 <= reg < 64:
                raise ValueError(f"source register out of range: {reg}")

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_control(self) -> bool:
        return self.op in CONTROL_OPS

    @property
    def is_mem(self) -> bool:
        return self.op in (Opcode.LOAD, Opcode.STORE)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        parts = [self.op.value]
        if self.dst is not None:
            parts.append(f"r{self.dst}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
