"""RISC-like instruction set used by the synthetic workloads.

The ISA is deliberately small: enough to express the control/data behaviour
of the SpecInt95-analogue workloads (loops, calls, pointer chasing, hash
tables, FP kernels) while keeping functional execution fast.  Instructions
are fixed-size, one word each; the program counter is the instruction index.
"""

from repro.isa.instructions import (
    BRANCH_OPS,
    FU_LATENCY,
    FuClass,
    Instruction,
    Opcode,
    fu_class,
    is_branch_op,
    is_control_op,
    latency_of,
)
from repro.isa.program import Program
from repro.isa.builder import ProgramBuilder
from repro.isa.assembler import assemble, disassemble

__all__ = [
    "Opcode",
    "Instruction",
    "FuClass",
    "FU_LATENCY",
    "BRANCH_OPS",
    "fu_class",
    "latency_of",
    "is_branch_op",
    "is_control_op",
    "Program",
    "ProgramBuilder",
    "assemble",
    "disassemble",
]
