"""Static program representation: an instruction sequence plus symbol table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.isa.instructions import Instruction, Opcode


@dataclass
class Program:
    """A fully-linked program.

    ``instructions[pc]`` is the instruction at program counter ``pc``.
    ``labels`` maps symbolic names (subroutine entries, loop heads) to pcs —
    kept for diagnostics and for the static heuristics that need call sites.
    """

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "program"
    #: Initial data-memory image (word address -> value), set up by the
    #: workload generators before execution.
    initial_memory: Dict[int, int] = field(default_factory=dict)
    #: Acknowledged lint findings: rule id (``"dead-store"``) or
    #: pc-qualified rule (``"dead-store@17"``) -> one-line rationale.
    #: ``repro.analysis.lint`` drops matching diagnostics.
    lint_suppressions: Dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def label_at(self, pc: int) -> Optional[str]:
        """Return a label whose address is ``pc``, if any."""
        for name, addr in self.labels.items():
            if addr == pc:
                return name
        return None

    def validate(self) -> None:
        """Check that every control transfer targets a valid pc.

        Raises ``ValueError`` on dangling targets so that workload bugs fail
        fast instead of producing nonsense traces.
        """
        size = len(self.instructions)
        for pc, inst in enumerate(self.instructions):
            if inst.is_control and inst.op is not Opcode.RET:
                if inst.target is None:
                    raise ValueError(f"pc {pc}: {inst.op.value} without target")
                if not 0 <= inst.target < size:
                    raise ValueError(
                        f"pc {pc}: target {inst.target} outside program of size {size}"
                    )

    # ------------------------------------------------------------------
    # Static structure queries used by the heuristic spawning policies.
    # ------------------------------------------------------------------

    def backward_branch_pcs(self) -> List[int]:
        """pcs of conditional branches or jumps whose target precedes them."""
        result = []
        for pc, inst in enumerate(self.instructions):
            if inst.is_control and inst.target is not None and inst.target <= pc:
                result.append(pc)
        return result

    def loop_heads(self) -> Set[int]:
        """Targets of backward control transfers (static loop entries)."""
        return {
            self.instructions[pc].target
            for pc in self.backward_branch_pcs()
            if self.instructions[pc].target is not None
        }

    def call_sites(self) -> List[int]:
        """pcs of all subroutine calls."""
        return [
            pc
            for pc, inst in enumerate(self.instructions)
            if inst.op is Opcode.CALL
        ]
