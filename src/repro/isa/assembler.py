"""Tiny textual assembler/disassembler for the ISA.

The assembler exists for tests, examples and debugging — the workload suite
builds programs through :class:`~repro.isa.builder.ProgramBuilder` instead.

Syntax::

    ; comment
    main:
        li   r1 0
    loop:
        addi r1 r1 1
        blt  r1 r2 loop
        halt

Registers are ``r0``–``r63``; bare integers are immediates/offsets;
identifiers in control instructions are labels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

#: Opcodes whose first register operand is the destination.
_WRITES_DST = frozenset(
    op
    for op in Opcode
    if op
    not in (
        Opcode.STORE,
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.BEQZ,
        Opcode.BNEZ,
        Opcode.JUMP,
        Opcode.CALL,
        Opcode.RET,
        Opcode.NOP,
        Opcode.HALT,
    )
)

_OP_BY_NAME = {op.value: op for op in Opcode}


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""


def _parse_operand(token: str) -> Tuple[str, object]:
    if token.startswith("r") and token[1:].isdigit():
        return "reg", int(token[1:])
    try:
        return "imm", int(token, 0)
    except ValueError:
        return "label", token


def assemble(text: str, name: str = "program") -> Program:
    """Assemble ``text`` into a validated :class:`Program`."""
    pending: List[Tuple[Opcode, List[Tuple[str, object]], int]] = []
    labels: Dict[str, int] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        while line.endswith(":") or ":" in line.split()[0]:
            head, _, rest = line.partition(":")
            labelname = head.strip()
            if not labelname.replace(".", "_").isidentifier():
                raise AssemblerError(f"line {lineno}: bad label {labelname!r}")
            if labelname in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {labelname!r}")
            labels[labelname] = len(pending)
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        tokens = line.split()
        opname = tokens[0].lower()
        if opname not in _OP_BY_NAME:
            raise AssemblerError(f"line {lineno}: unknown opcode {opname!r}")
        operands = [_parse_operand(tok) for tok in tokens[1:]]
        pending.append((_OP_BY_NAME[opname], operands, lineno))

    instructions: List[Instruction] = []
    fixups: List[Tuple[int, str, int]] = []
    for pc, (op, operands, lineno) in enumerate(pending):
        dst: Optional[int] = None
        srcs: List[int] = []
        imm: Optional[int] = None
        labelref: Optional[str] = None
        for kind, value in operands:
            if kind == "reg":
                if dst is None and op in _WRITES_DST:
                    dst = int(value)  # type: ignore[arg-type]
                else:
                    srcs.append(int(value))  # type: ignore[arg-type]
            elif kind == "imm":
                if imm is not None:
                    raise AssemblerError(f"line {lineno}: multiple immediates")
                imm = int(value)  # type: ignore[arg-type]
            else:
                if labelref is not None:
                    raise AssemblerError(f"line {lineno}: multiple labels")
                labelref = str(value)
        instructions.append(Instruction(op, dst=dst, srcs=tuple(srcs), imm=imm))
        if labelref is not None:
            fixups.append((pc, labelref, lineno))

    for pc, labelref, lineno in fixups:
        if labelref not in labels:
            raise AssemblerError(f"line {lineno}: undefined label {labelref!r}")
        old = instructions[pc]
        instructions[pc] = Instruction(
            old.op, dst=old.dst, srcs=old.srcs, imm=old.imm, target=labels[labelref]
        )

    program = Program(instructions=instructions, labels=labels, name=name)
    program.validate()
    return program


def disassemble(program: Program) -> str:
    """Render ``program`` back to assembly text that re-assembles identically."""
    label_of: Dict[int, str] = {}
    for labelname, pc in program.labels.items():
        label_of.setdefault(pc, labelname)
    for pc, inst in enumerate(program.instructions):
        if inst.target is not None and inst.target not in label_of:
            label_of[inst.target] = f"L{inst.target}"

    lines: List[str] = []
    for pc, inst in enumerate(program.instructions):
        if pc in label_of:
            lines.append(f"{label_of[pc]}:")
        parts = [inst.op.value]
        if inst.dst is not None:
            parts.append(f"r{inst.dst}")
        parts.extend(f"r{s}" for s in inst.srcs)
        if inst.imm is not None:
            parts.append(str(inst.imm))
        if inst.target is not None:
            parts.append(label_of[inst.target])
        lines.append("    " + " ".join(parts))
    return "\n".join(lines) + "\n"
