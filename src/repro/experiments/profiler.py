"""Profiling harness for the simulator hot path (``repro profile``).

Times the four phases of one experiment point — trace build, columnar
build, pair selection, simulation — plus a commit-invariant check, and
(optionally) runs the simulation under :mod:`cProfile` to report the
top functions by cumulative time.  The JSON view (``--json``) is what
the sim-core benchmark consumes to attribute a regression to a phase.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cmt import ProcessorConfig
from repro.cmt.stats import SimulationStats
from repro.workloads import load_trace

#: Phase keys, in execution order (render order too).
PHASES = ("trace_build", "column_build", "pair_selection", "simulate",
          "commit_check")

#: Version of the ``repro profile --json`` report shape.  Bump on any
#: breaking change to :meth:`ProfileReport.to_dict`; consumers (the
#: sim-core benchmark, external tooling reading CI artifacts) key their
#: parsing on it.  Version 2 added the ``wakeup_heap`` section and the
#: ``stall_reasons`` histogram (event core only; ``None``/empty for the
#: ticking cores).
PROFILE_SCHEMA_VERSION = 2


@dataclass
class ProfileReport:
    """Timings and hotspots of one profiled experiment point."""

    workload: str
    scale: float
    policy: str
    value_predictor: str
    sim_core: str
    #: phase name -> wall-clock seconds.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Simulated instructions per wall-clock second of the simulate phase.
    insts_per_sec: float = 0.0
    #: Commit-invariant check results (all must be True).
    commit_check: Dict[str, bool] = field(default_factory=dict)
    #: Key counters of the simulated run.
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Top functions by cumulative time (empty without ``with_profile``).
    hotspots: List[Dict[str, Any]] = field(default_factory=list)
    #: Event-core clock/wakeup accounting (``cycles_skipped``, clock
    #: jumps, heap wakeup breakdown, sleeping-poller counters); ``None``
    #: for the ticking cores, which have no wakeup heap.
    wakeup_heap: Optional[Dict[str, Any]] = None
    #: Per-stall-reason histogram of the simulated run (event core
    #: only; empty for the ticking cores).
    stall_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every commit invariant held."""
        return all(self.commit_check.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON view of the report.

        Returns:
            A JSON-serialisable dict (consumed by the sim-core benchmark
            and the ``--json`` flag of ``repro profile``).
        """
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "workload": self.workload,
            "scale": self.scale,
            "policy": self.policy,
            "value_predictor": self.value_predictor,
            "sim_core": self.sim_core,
            "phases": self.phases,
            "insts_per_sec": self.insts_per_sec,
            "commit_check": self.commit_check,
            "stats": self.stats,
            "hotspots": self.hotspots,
            "wakeup_heap": self.wakeup_heap,
            "stall_reasons": self.stall_reasons,
            "ok": self.ok,
        }

    def render(self) -> str:
        """Format the report for a terminal.

        Returns:
            The multi-line human-readable report (the default
            ``repro profile`` output).
        """
        lines = [
            f"{self.workload} (scale {self.scale}, {self.policy} pairs, "
            f"vp={self.value_predictor}, core={self.sim_core})"
        ]
        total = sum(self.phases.values())
        for phase in PHASES:
            if phase not in self.phases:
                continue
            seconds = self.phases[phase]
            share = seconds / total if total else 0.0
            lines.append(f"  {phase:15s} {seconds:8.4f}s  {share:6.1%}")
        lines.append(f"  {'total':15s} {total:8.4f}s")
        lines.append(
            f"simulated {self.stats.get('instructions', 0)} instructions "
            f"in {self.stats.get('cycles', 0)} cycles "
            f"({self.insts_per_sec:,.0f} insts/sec)"
        )
        checks = ", ".join(
            f"{name}={'ok' if passed else 'FAILED'}"
            for name, passed in self.commit_check.items()
        )
        lines.append(f"commit check: {checks}")
        heap = self.wakeup_heap
        if heap is not None:
            lines.append(
                f"wakeup heap: {heap['events_processed']} events "
                f"(+{heap['inline_advances']} inline), "
                f"{heap['cycles_skipped']} cycles skipped over "
                f"{heap['clock_jumps']} jumps (max {heap['max_jump']})"
            )
            wakeups = ", ".join(
                f"{name}={count}"
                for name, count in sorted(heap["wakeups"].items())
            )
            lines.append(
                f"  wakeups: {wakeups}; {heap['poller_sleeps']} poller "
                f"sleeps replayed {heap['replayed_polls']} polls"
            )
        if self.stall_reasons:
            stalls = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.stall_reasons.items())
            )
            lines.append(f"stall reasons: {stalls}")
        if self.hotspots:
            lines.append("top functions by cumulative time:")
            lines.append(
                f"  {'ncalls':>10s} {'tottime':>9s} {'cumtime':>9s}  function"
            )
            for entry in self.hotspots:
                lines.append(
                    f"  {entry['ncalls']:>10s} {entry['tottime']:9.4f} "
                    f"{entry['cumtime']:9.4f}  {entry['function']}"
                )
        return "\n".join(lines)


def _commit_check(trace, stats: SimulationStats) -> Dict[str, bool]:
    """Structural invariants every committed simulation must satisfy."""
    return {
        "all_instructions_committed": stats.instructions == len(trace),
        "thread_sizes_sum": sum(stats.thread_sizes) == stats.instructions,
        "threads_counted": stats.threads_committed == len(stats.thread_sizes),
    }


def _top_functions(profile: cProfile.Profile, top: int) -> List[Dict[str, Any]]:
    """Extract the ``top`` entries by cumulative time from a profile."""
    stats = pstats.Stats(profile)
    stats.sort_stats("cumulative")
    entries: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _ = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        if filename.startswith("~"):
            where = name
        else:
            short = filename.rsplit("/", 1)[-1]
            where = f"{short}:{lineno}({name})"
        ncalls = str(nc) if nc == cc else f"{nc}/{cc}"
        entries.append(
            {
                "function": where,
                "ncalls": ncalls,
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
            }
        )
    return entries


def profile_run(
    workload: str,
    scale: float = 0.3,
    policy: str = "profile",
    value_predictor: str = "stride",
    sim_core: str = "columnar",
    top: int = 15,
    with_profile: bool = True,
    config: Optional[ProcessorConfig] = None,
) -> ProfileReport:
    """Profile one experiment point phase by phase.

    Args:
        workload: Workload name.
        scale: Workload size multiplier.
        policy: Spawning policy (see
            :func:`repro.experiments.framework.policy_names`).
        value_predictor: Live-in value predictor of the simulated run.
        sim_core: ``columnar``, ``legacy``, or ``event``.
        top: How many functions to keep in the hotspot list.
        with_profile: Run the simulate phase under :mod:`cProfile`
            (skipping it removes the profiler's overhead, which the
            benchmark harness wants for honest phase timings).
        config: Base processor configuration (None = defaults).

    Returns:
        The point's :class:`ProfileReport`.
    """
    from repro.experiments import framework

    report = ProfileReport(
        workload=workload,
        scale=scale,
        policy=policy,
        value_predictor=value_predictor,
        sim_core=sim_core,
    )

    start = time.perf_counter()
    trace = load_trace(workload, scale)
    report.phases["trace_build"] = round(time.perf_counter() - start, 4)

    start = time.perf_counter()
    columns = trace.columns
    report.phases["column_build"] = round(time.perf_counter() - start, 4)
    del columns

    builder = framework._POLICIES[policy]
    start = time.perf_counter()
    pairs = builder(trace)
    report.phases["pair_selection"] = round(time.perf_counter() - start, 4)

    run_config = (config or framework.EXPERIMENT_CONFIG).with_(
        value_predictor=value_predictor, sim_core=sim_core
    )
    from repro.cmt.processor import ClusteredProcessor

    profiler = cProfile.Profile() if with_profile else None
    start = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    proc = ClusteredProcessor(trace, pairs, run_config)
    stats = proc.run()
    if profiler is not None:
        profiler.disable()
    seconds = time.perf_counter() - start
    report.phases["simulate"] = round(seconds, 4)
    report.insts_per_sec = round(stats.instructions / seconds) if seconds else 0.0

    start = time.perf_counter()
    report.commit_check = _commit_check(trace, stats)
    report.phases["commit_check"] = round(time.perf_counter() - start, 4)

    report.stats = stats.summary()
    metrics = proc.event_metrics
    if metrics is not None:
        report.wakeup_heap = {
            key: metrics[key]
            for key in (
                "events_processed",
                "inline_advances",
                "cycles_skipped",
                "clock_jumps",
                "max_jump",
                "wakeups",
                "poller_sleeps",
                "replayed_polls",
            )
        }
        report.stall_reasons = dict(metrics["stalls"])
    if profiler is not None:
        report.hotspots = _top_functions(profiler, top)
    return report
