"""Shape checks: the paper's headline qualitative claims as executable
predicates over the regenerated figures.

``run_shape_checks`` consumes the dict of :class:`FigureResult` produced by
the figure drivers and evaluates each claim, returning structured results
that the EXPERIMENTS.md generator renders as a live checklist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.framework import FigureResult


@dataclass
class ShapeCheck:
    """One verified qualitative claim."""

    claim: str
    passed: bool
    observed: str


def _bench_value(result: FigureResult, series: str, bench: str) -> float:
    return result.series[series][result.benchmarks.index(bench)]


def run_shape_checks(figures: Dict[str, FigureResult]) -> List[ShapeCheck]:
    """Return every headline claim evaluated against the figures."""
    checks: List[ShapeCheck] = []

    def add(claim: str, fn: Callable[[], tuple]) -> None:
        try:
            passed, observed = fn()
        except Exception as exc:  # a missing figure is a failed check
            passed, observed = False, f"error: {exc}"
        checks.append(ShapeCheck(claim=claim, passed=passed, observed=observed))

    def compress_fewest_pairs():
        fig2 = figures["figure2"]
        selected = dict(zip(fig2.benchmarks, fig2.series["selected_pairs"]))
        passed = selected["compress"] <= min(
            selected[b] for b in ("go", "perl", "vortex")
        )
        return passed, f"compress={selected['compress']:.0f} pairs"

    add(
        "compress yields the fewest selected pairs (paper: ~30 vs ~500 avg)",
        compress_fewest_pairs,
    )

    def ijpeg_on_top():
        fig3 = figures["figure3"]
        speedups = dict(zip(fig3.benchmarks, fig3.series["speedup"]))
        passed = speedups["ijpeg"] >= 0.95 * max(speedups.values())
        return passed, f"ijpeg={speedups['ijpeg']:.2f}x of max {max(speedups.values()):.2f}x"

    add("ijpeg (most regular) tops the suite (paper: 11.9x)", ijpeg_on_top)

    def meaningful_speedup():
        hmean = figures["figure3"].summary["hmean"]
        return hmean > 2.0, f"hmean {hmean:.2f}x (paper 7.2x)"

    add(
        "large average speed-up from profile-based spawning at 16 TUs",
        meaningful_speedup,
    )

    def profile_wins_somewhere_big():
        fig8 = figures["figure8"]
        ratios = dict(
            zip(fig8.benchmarks, fig8.series["profile_over_heuristics"])
        )
        winners = [b for b, r in ratios.items() if r > 1.02]
        return (
            len(winners) >= 3,
            f"profile wins on {', '.join(winners) or 'none'}",
        )

    add(
        "profile-based beats the combined heuristics on several benchmarks "
        "(paper: ~20% average win)",
        profile_wins_somewhere_big,
    )

    def hit_ratio_near_70():
        fig9a = figures["figure9a"]
        value = fig9a.summary["stride_profile"]
        return 0.5 <= value <= 0.9, f"stride hit ratio {value:.2f} (paper 0.70)"

    add("live-in value-prediction hit ratio near 70%", hit_ratio_near_70)

    def realistic_vp_costs():
        fig9b = figures["figure9b"]
        perfect = fig9b.summary["perfect_profile"]
        stride = fig9b.summary["stride_profile"]
        return stride < perfect, (
            f"stride {stride:.2f}x vs perfect {perfect:.2f}x "
            f"({1 - stride / perfect:.0%} loss; paper ~34%)"
        )

    add(
        "realistic value prediction costs substantial performance",
        realistic_vp_costs,
    )

    def alt_orderings_do_not_win():
        fig10b = figures["figure10b"]
        dist = fig10b.summary["distance"]
        alt = max(fig10b.summary["independent"], fig10b.summary["predictable"])
        return alt <= dist * 1.1, (
            f"best alternative {alt:.2f}x vs distance {dist:.2f}x "
            f"(paper: ~35% below)"
        )

    add(
        "independence/predictability CQIP ordering does not beat distance",
        alt_orderings_do_not_win,
    )

    def overhead_mild():
        fig11 = figures["figure11"]
        value = fig11.summary["profile"]
        return 0.75 <= value <= 1.0, f"slow-down {value:.2f} (paper 0.88)"

    add("8-cycle initialisation overhead costs ~10-15%", overhead_mild)

    def four_tu_scales():
        fig12 = figures["figure12"]
        perfect4 = fig12.summary["perfect_profile"]
        perfect16 = figures["figure3"].summary["hmean"]
        return 1.0 < perfect4 <= 4.0 and perfect4 < perfect16, (
            f"4 TUs {perfect4:.2f}x vs 16 TUs {perfect16:.2f}x "
            f"(paper 2.75x vs 7.2x)"
        )

    add("4 thread units retain a proportional share of the gain", four_tu_scales)

    def profile_transfers():
        ext = figures["profile_input_sensitivity"]
        value = ext.summary["transfer"]
        return value > 0.7, f"transfer ratio {value:.2f}"

    add(
        "profiled pairs transfer to an unseen input (extension)",
        profile_transfers,
    )

    return checks


def render_checklist(checks: List[ShapeCheck]) -> str:
    """Return the Markdown table of the live shape checks."""
    lines = [
        "| Shape claim | Status | Observed |",
        "|---|---|---|",
    ]
    for check in checks:
        status = "PASS" if check.passed else "**DIVERGES**"
        lines.append(f"| {check.claim} | {status} | {check.observed} |")
    return "\n".join(lines)
