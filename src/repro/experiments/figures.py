"""Reproduction drivers for every figure in the paper's evaluation.

Each ``figureN`` function sweeps the same parameters as the paper's plot
and returns a :class:`FigureResult` whose series correspond to the bar
groups of the original figure.  Paper-quoted aggregates are attached as
``paper_reference`` so EXPERIMENTS.md can show paper-vs-measured side by
side.

All functions take ``scale`` (workload size multiplier) so the benchmark
harness can run reduced sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cmt import ProcessorConfig
from repro.cmt.stats import SimulationStats
from repro.experiments.framework import (
    EXPERIMENT_CONFIG,
    FigureResult,
    baseline_cycles,
    pair_set_for,
    run_policy,
    seed_baseline,
    suite,
)
from repro.metrics import (
    arithmetic_mean,
    harmonic_mean,
    weighted_harmonic_mean,
)


@dataclass(frozen=True)
class SeededStats:
    """The slice of :class:`SimulationStats` the figure drivers consume.

    The parallel engine computes points in worker processes and ships
    their results back as plain numbers; seeding the run memo with this
    lightweight view lets the unchanged figure drivers assemble their
    tables without re-simulating.
    """

    cycles: int
    avg_active_threads: float
    avg_thread_size: float
    value_hit_rate: float


_run_memo: Dict[Tuple[str, str, ProcessorConfig, float], Any] = {}


def cached_run(
    name: str,
    policy: str,
    config: ProcessorConfig,
    scale: float = 1.0,
) -> SimulationStats:
    """Memoised simulation (figures share many configurations).

    Args:
        name: Workload name.
        policy: Spawning policy name.
        config: Full processor configuration of the run.
        scale: Workload size multiplier.

    Returns:
        The run's statistics — a full :class:`SimulationStats`, or a
        :class:`SeededStats` view when the parallel engine pre-seeded
        this point (attribute-compatible for every figure driver).
    """
    key = (name, policy, config, scale)
    if key not in _run_memo:
        _run_memo[key] = run_policy(name, policy, config, scale)
    return _run_memo[key]


def seed_run(
    name: str,
    policy: str,
    config: ProcessorConfig,
    scale: float,
    payload: Dict[str, Any],
) -> None:
    """Pre-populate the run memo from a parallel-engine point payload.

    ``payload`` is the dict a ``simulate`` point runner returns (cycles,
    baseline, averages, hit rate); the baseline memo is seeded too.
    """
    _run_memo[(name, policy, config, scale)] = SeededStats(
        cycles=int(payload["cycles"]),
        avg_active_threads=float(payload["avg_active_threads"]),
        avg_thread_size=float(payload["avg_thread_size"]),
        value_hit_rate=float(payload["value_hit_rate"]),
    )
    seed_baseline(name, config, scale, int(payload["baseline"]))


def clear_run_memo() -> None:
    """Drop every memoised (and seeded) simulation result."""
    _run_memo.clear()


def _speedups(
    policy: str, config: ProcessorConfig, scale: float
) -> List[float]:
    result = []
    for name in suite():
        stats = cached_run(name, policy, config, scale)
        result.append(baseline_cycles(name, config, scale) / stats.cycles)
    return result


def _removal(name: str, cycles: int = 50) -> int:
    """Per-benchmark alone-threshold: the paper uses 200 for compress
    (its ~30 selected pairs disappear under the aggressive setting)."""
    return 200 if name == "compress" else cycles


# ----------------------------------------------------------------------
# Figure 2 — candidate and selected spawning pairs.
# ----------------------------------------------------------------------

def figure2(scale: float = 1.0) -> FigureResult:
    """Figure 2: candidate spawning pairs vs selected spawning points.

    Args:
        scale: Workload size multiplier.

    Returns:
        The figure's series (total and selected pair counts per
        benchmark) as a :class:`FigureResult`.
    """
    totals, selected = [], []
    for name in suite():
        pairs = pair_set_for(name, "profile", scale)
        totals.append(float(pairs.candidates_evaluated))
        selected.append(float(len(pairs)))
    return FigureResult(
        figure="Figure 2",
        title="Spawning pairs passing thresholds vs distinct spawning points",
        benchmarks=list(suite()),
        series={"total_pairs": totals, "selected_pairs": selected},
        summary={
            "amean_total": arithmetic_mean(totals),
            "amean_selected": arithmetic_mean(selected),
        },
        paper_reference={"amean_total": 6218, "amean_selected": 499},
        notes=(
            "absolute counts scale with static program size; the synthetic "
            "workloads are ~100x smaller than SpecInt95 binaries, so shapes "
            "(which benchmarks have many/few pairs) are the comparison point"
        ),
    )


# ----------------------------------------------------------------------
# Figure 3 / Figure 4 — potential of the profile-based policy.
# ----------------------------------------------------------------------

def figure3(scale: float = 1.0) -> FigureResult:
    """Figure 3: speed-up at 16 TUs, profile policy, perfect VP.

    Args:
        scale: Workload size multiplier.

    Returns:
        Per-benchmark speed-ups over single-threaded execution.
    """
    config = EXPERIMENT_CONFIG
    values = _speedups("profile", config, scale)
    # whmean weights each speed-up by its baseline cycle count: the
    # speed-up of the suite run back to back, robust to small
    # benchmarks dominating the unweighted Hmean.
    weights = [
        float(baseline_cycles(name, config, scale)) for name in suite()
    ]
    return FigureResult(
        figure="Figure 3",
        title="Speed-up over single-thread: 16 TUs, profile policy, perfect VP",
        benchmarks=list(suite()),
        series={"speedup": values},
        summary={
            "hmean": harmonic_mean(values),
            "whmean": weighted_harmonic_mean(values, weights),
        },
        paper_reference={"hmean": 7.2},
    )


def figure4(scale: float = 1.0) -> FigureResult:
    """Figure 4: time-weighted average number of active threads.

    Args:
        scale: Workload size multiplier.

    Returns:
        Per-benchmark average active-thread counts.
    """
    config = EXPERIMENT_CONFIG
    values = [
        cached_run(name, "profile", config, scale).avg_active_threads
        for name in suite()
    ]
    return FigureResult(
        figure="Figure 4",
        title="Average number of active threads (16 TUs, perfect VP)",
        benchmarks=list(suite()),
        series={"active_threads": values},
        summary={"amean": arithmetic_mean(values)},
        paper_reference={"amean": 7.5},
    )


# ----------------------------------------------------------------------
# Figure 5 — spawning-pair removal policies.
# ----------------------------------------------------------------------

def figure5a(scale: float = 1.0) -> FigureResult:
    """Figure 5a: pair removal after N cycles executing alone.

    Args:
        scale: Workload size multiplier.

    Returns:
        Speed-ups under no removal and the 50/200-cycle schemes.
    """
    series: Dict[str, List[float]] = {}
    for label, cycles in (("no_removal", None), ("removal_50", 50), ("removal_200", 200)):
        values = []
        for name in suite():
            config = EXPERIMENT_CONFIG.with_(removal_cycles=cycles)
            stats = cached_run(name, "profile", config, scale)
            values.append(baseline_cycles(name, config, scale) / stats.cycles)
        series[label] = values
    return FigureResult(
        figure="Figure 5a",
        title="Pair removal after N cycles executing alone (perfect VP)",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        paper_reference={"removal_200": 8.0},
        notes="paper: compress collapses under the aggressive 50-cycle removal",
    )


def figure5b(scale: float = 1.0) -> FigureResult:
    """Figure 5b: delayed removal — occurrences before cancelling.

    Args:
        scale: Workload size multiplier.

    Returns:
        Speed-ups with 1/8/16 alone-occurrences before removal.
    """
    series: Dict[str, List[float]] = {}
    for occurrences in (1, 8, 16):
        values = []
        for name in suite():
            config = EXPERIMENT_CONFIG.with_(
                removal_cycles=50, removal_occurrences=occurrences
            )
            stats = cached_run(name, "profile", config, scale)
            values.append(baseline_cycles(name, config, scale) / stats.cycles)
        series[f"occurrences_{occurrences}"] = values
    return FigureResult(
        figure="Figure 5b",
        title="Delayed removal: occurrences before cancelling (50-cycle scheme)",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        notes="paper: delaying helps compress, slightly hurts the rest",
    )


# ----------------------------------------------------------------------
# Figure 6 — reassign policy.
# ----------------------------------------------------------------------

def figure6(scale: float = 1.0) -> FigureResult:
    """Figure 6: reassigning an SP to its next CQIP vs plain removal.

    Args:
        scale: Workload size multiplier.

    Returns:
        Speed-ups with and without the reassign policy.
    """
    series: Dict[str, List[float]] = {"removal_50": [], "reassign": []}
    for name in suite():
        for label, reassign in (("removal_50", False), ("reassign", True)):
            config = EXPERIMENT_CONFIG.with_(
                removal_cycles=_removal(name), reassign=reassign
            )
            stats = cached_run(name, "profile", config, scale)
            series[label].append(
                baseline_cycles(name, config, scale) / stats.cycles
            )
    return FigureResult(
        figure="Figure 6",
        title="Reassigning an SP to its next CQIP vs plain 50-cycle removal",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        notes="paper: reassign is slightly worse (next CQIPs are too close)",
    )


# ----------------------------------------------------------------------
# Figure 7 — thread sizes and the minimum-size constraint.
# ----------------------------------------------------------------------

def figure7a(scale: float = 1.0) -> FigureResult:
    """Figure 7a: average dynamic thread size under removal.

    Args:
        scale: Workload size multiplier.

    Returns:
        Per-benchmark average committed-thread sizes.
    """
    values = []
    for name in suite():
        config = EXPERIMENT_CONFIG.with_(removal_cycles=_removal(name))
        values.append(cached_run(name, "profile", config, scale).avg_thread_size)
    return FigureResult(
        figure="Figure 7a",
        title="Average dynamic thread size (removal policy active)",
        benchmarks=list(suite()),
        series={"thread_size": values},
        summary={"amean": arithmetic_mean(values)},
        notes="paper: mostly below the 32-instruction selection minimum "
        "because overlapping spawns shrink threads",
    )


def figure7b(scale: float = 1.0) -> FigureResult:
    """Figure 7b: enforcing a minimum dynamic thread size of 32.

    Args:
        scale: Workload size multiplier.

    Returns:
        Speed-ups with and without the minimum-size constraint.
    """
    series: Dict[str, List[float]] = {"no_min_size": [], "min_size_32": []}
    for name in suite():
        for label, min_size in (("no_min_size", None), ("min_size_32", 32)):
            config = EXPERIMENT_CONFIG.with_(
                removal_cycles=_removal(name), min_thread_size=min_size
            )
            stats = cached_run(name, "profile", config, scale)
            series[label].append(
                baseline_cycles(name, config, scale) / stats.cycles
            )
    return FigureResult(
        figure="Figure 7b",
        title="Enforcing a minimum dynamic thread size of 32",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        notes="paper: ~10% over the plain removal policy",
    )


# ----------------------------------------------------------------------
# Figure 8 — profile-based vs traditional heuristics.
# ----------------------------------------------------------------------

def figure8(scale: float = 1.0) -> FigureResult:
    """Figure 8: profile policy vs the combined traditional heuristics.

    Args:
        scale: Workload size multiplier.

    Returns:
        Per-benchmark ratio of heuristic to profile cycle counts.
    """
    config = EXPERIMENT_CONFIG
    ratios = []
    weights = []
    for name in suite():
        profile = cached_run(name, "profile", config, scale)
        heur = cached_run(name, "heuristics", config, scale)
        ratios.append(heur.cycles / profile.cycles)
        # Weight each ratio by the profile run's cycle count: whmean is
        # then the whole-suite ratio of heuristic to profile time.
        weights.append(float(profile.cycles))
    return FigureResult(
        figure="Figure 8",
        title="Speed-up of the profile policy over combined heuristics",
        benchmarks=list(suite()),
        series={"profile_over_heuristics": ratios},
        summary={
            "hmean": harmonic_mean(ratios),
            "whmean": weighted_harmonic_mean(ratios, weights),
        },
        paper_reference={"hmean": 1.20},
        notes="paper: ~20% average win; perl shows a slight (8%) slow-down",
    )


# ----------------------------------------------------------------------
# Figure 9 — realistic value predictors.
# ----------------------------------------------------------------------

def figure9a(scale: float = 1.0) -> FigureResult:
    """Figure 9a: live-in value-prediction hit ratios (16KB tables).

    Args:
        scale: Workload size multiplier.

    Returns:
        Hit ratios per predictor (stride/fcm) and policy.
    """
    series: Dict[str, List[float]] = {}
    for vp in ("stride", "fcm"):
        for policy in ("profile", "heuristics"):
            label = f"{vp}_{policy}"
            values = []
            for name in suite():
                config = EXPERIMENT_CONFIG.with_(value_predictor=vp)
                values.append(
                    cached_run(name, policy, config, scale).value_hit_rate
                )
            series[label] = values
    return FigureResult(
        figure="Figure 9a",
        title="Live-in value-prediction hit ratio (16KB predictors)",
        benchmarks=list(suite()),
        series=series,
        summary={k: arithmetic_mean(v) for k, v in series.items()},
        paper_reference={"stride_profile": 0.70},
        notes="paper: ~70% across predictors and policies",
    )


def figure9b(scale: float = 1.0) -> FigureResult:
    """Figure 9b: speed-ups with the stride value predictor.

    Args:
        scale: Workload size multiplier.

    Returns:
        Speed-ups under perfect vs stride prediction per policy.
    """
    series: Dict[str, List[float]] = {}
    for label, policy, vp in (
        ("perfect_profile", "profile", "perfect"),
        ("stride_profile", "profile", "stride"),
        ("perfect_heur", "heuristics", "perfect"),
        ("stride_heur", "heuristics", "stride"),
    ):
        config = EXPERIMENT_CONFIG.with_(value_predictor=vp)
        series[label] = _speedups(policy, config, scale)
    return FigureResult(
        figure="Figure 9b",
        title="Speed-ups with the stride value predictor",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        paper_reference={"stride_profile": 6.0, "stride_heur": 5.5},
        notes="paper: realistic prediction costs both policies >25%; the "
        "profile advantage narrows to ~13%",
    )


# ----------------------------------------------------------------------
# Figure 10 — alternative CQIP-ordering criteria.
# ----------------------------------------------------------------------

def figure10a(scale: float = 1.0) -> FigureResult:
    """Figure 10a: hit ratio under independent/predictable ordering.

    Args:
        scale: Workload size multiplier.

    Returns:
        Hit ratios per predictor and CQIP-ordering criterion.
    """
    series: Dict[str, List[float]] = {}
    for vp in ("stride", "fcm"):
        for policy in ("profile-independent", "profile-predictable"):
            label = f"{vp}_{policy.split('-')[1]}"
            values = []
            for name in suite():
                config = EXPERIMENT_CONFIG.with_(value_predictor=vp)
                values.append(
                    cached_run(name, policy, config, scale).value_hit_rate
                )
            series[label] = values
    return FigureResult(
        figure="Figure 10a",
        title="Hit ratio under independent/predictable CQIP ordering",
        benchmarks=list(suite()),
        series=series,
        summary={k: arithmetic_mean(v) for k, v in series.items()},
        paper_reference={"stride_predictable": 0.75},
    )


def figure10b(scale: float = 1.0) -> FigureResult:
    """Figure 10b: speed-up of the alternative CQIP orderings.

    Args:
        scale: Workload size multiplier.

    Returns:
        Speed-ups of the independent/predictable/distance criteria.
    """
    config = EXPERIMENT_CONFIG.with_(value_predictor="stride")
    series = {
        "independent": _speedups("profile-independent", config, scale),
        "predictable": _speedups("profile-predictable", config, scale),
        "distance": _speedups("profile", config, scale),
    }
    return FigureResult(
        figure="Figure 10b",
        title="Speed-up of the independent/predictable ordering (stride VP)",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        notes="paper: both ~35% below the distance criterion — better hit "
        "ratios do not pay for the smaller threads",
    )


# ----------------------------------------------------------------------
# Figure 11 — thread-initialisation overhead.
# ----------------------------------------------------------------------

def figure11(scale: float = 1.0) -> FigureResult:
    """Figure 11: slow-down from an 8-cycle initialisation overhead.

    Args:
        scale: Workload size multiplier.

    Returns:
        Per-benchmark ratio of zero-overhead to 8-cycle cycles.
    """
    series: Dict[str, List[float]] = {"profile": [], "heuristics": []}
    for policy in ("profile", "heuristics"):
        for name in suite():
            fast = cached_run(
                name,
                policy,
                EXPERIMENT_CONFIG.with_(value_predictor="stride"),
                scale,
            )
            slow = cached_run(
                name,
                policy,
                EXPERIMENT_CONFIG.with_(value_predictor="stride", init_overhead=8),
                scale,
            )
            series[policy].append(fast.cycles / slow.cycles)
    return FigureResult(
        figure="Figure 11",
        title="Slow-down from an 8-cycle thread-initialisation overhead",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        paper_reference={"profile": 0.88, "heuristics": 0.88},
        notes="paper: ~12% average slow-down for both policies",
    )


# ----------------------------------------------------------------------
# Figure 12 — scalability: 4 thread units.
# ----------------------------------------------------------------------

def figure12(scale: float = 1.0) -> FigureResult:
    """Figure 12: speed-ups with only 4 thread units.

    Args:
        scale: Workload size multiplier.

    Returns:
        Speed-ups per (predictor, overhead, policy) combination.
    """
    series: Dict[str, List[float]] = {}
    for label, vp, overhead in (
        ("perfect", "perfect", 0),
        ("stride", "stride", 0),
        ("stride_overhead", "stride", 8),
    ):
        for policy in ("profile", "heuristics"):
            config = EXPERIMENT_CONFIG.with_(
                num_thread_units=4, value_predictor=vp, init_overhead=overhead
            )
            series[f"{label}_{policy}"] = _speedups(policy, config, scale)
    return FigureResult(
        figure="Figure 12",
        title="Average speed-ups with 4 thread units",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        paper_reference={
            "perfect_profile": 2.75,
            "stride_profile": 2.1,
            "stride_overhead_profile": 1.9,
        },
    )


# ----------------------------------------------------------------------
# Extension: individual-heuristic breakdown (the comparison of [15] that
# Section 4.2.1 builds on — not a numbered figure of this paper).
# ----------------------------------------------------------------------

def heuristic_breakdown(scale: float = 1.0) -> FigureResult:
    """Speed-up of each traditional scheme alone vs their combination.

    The paper cites its earlier study [15] for the observation that loop
    iterations are the strongest individual scheme on this architecture
    and that the best policy combines all three; this driver reproduces
    that supporting comparison.

    Returns:
        The comparison as a :class:`FigureResult`.
    """
    from repro.cmt import simulate
    from repro.spawning import HeuristicConfig, heuristic_pairs
    from repro.workloads import load_trace

    variants = {
        "loop_iter": HeuristicConfig(
            include_loop_continuations=False,
            include_subroutine_continuations=False,
        ),
        "loop_cont": HeuristicConfig(
            include_loop_iterations=False,
            include_subroutine_continuations=False,
        ),
        "sub_cont": HeuristicConfig(
            include_loop_iterations=False,
            include_loop_continuations=False,
        ),
        "combined": HeuristicConfig(),
    }
    config = EXPERIMENT_CONFIG
    series: Dict[str, List[float]] = {name: [] for name in variants}
    for bench in suite():
        trace = load_trace(bench, scale)
        base = baseline_cycles(bench, config, scale)
        for name, hconfig in variants.items():
            stats = simulate(trace, heuristic_pairs(trace, hconfig), config)
            series[name].append(base / stats.cycles)
    return FigureResult(
        figure="Extension",
        title="Individual heuristic schemes vs their combination ([15])",
        benchmarks=list(suite()),
        series=series,
        summary={k: harmonic_mean(v) for k, v in series.items()},
        notes="[15]: loop iterations are the strongest single scheme on "
        "the CSMT; the combination is the baseline of Figure 8",
    )


# ----------------------------------------------------------------------
# Extension: profile-input sensitivity.  The paper profiles and evaluates
# on the training input; this driver checks that pairs selected on one
# input transfer to a different one (program text identical, data fresh).
# ----------------------------------------------------------------------

def profile_input_sensitivity(scale: float = 1.0) -> FigureResult:
    """Speed-up on a *ref* input using pairs profiled on *train*.

    ``self_profiled`` selects pairs on the evaluation input itself (the
    paper's setup); ``cross_profiled`` selects them on the training input.
    A transfer ratio near 1 means the profile generalises across inputs.

    Returns:
        The sensitivity comparison as a :class:`FigureResult`.
    """
    from repro.cmt import simulate, single_thread_cycles
    from repro.spawning import select_profile_pairs
    from repro.workloads import load_trace

    config = EXPERIMENT_CONFIG
    series: Dict[str, List[float]] = {"self_profiled": [], "cross_profiled": []}
    for bench in suite():
        ref_trace = load_trace(bench, scale, "ref")
        train_trace = load_trace(bench, scale, "train")
        base = single_thread_cycles(ref_trace, config)
        from repro.experiments.framework import EXPERIMENT_PROFILE_CONFIG

        self_pairs = select_profile_pairs(ref_trace, EXPERIMENT_PROFILE_CONFIG)
        cross_pairs = select_profile_pairs(train_trace, EXPERIMENT_PROFILE_CONFIG)
        series["self_profiled"].append(
            base / simulate(ref_trace, self_pairs, config).cycles
        )
        series["cross_profiled"].append(
            base / simulate(ref_trace, cross_pairs, config).cycles
        )
    transfer = [
        c / s
        for s, c in zip(series["self_profiled"], series["cross_profiled"])
    ]
    return FigureResult(
        figure="Extension",
        title="Profile-input sensitivity: train-profiled pairs on a ref input",
        benchmarks=list(suite()),
        series=series,
        summary={
            "self_hmean": harmonic_mean(series["self_profiled"]),
            "cross_hmean": harmonic_mean(series["cross_profiled"]),
            "transfer": harmonic_mean(transfer),
        },
        notes="spawning points are pcs, so a profile transfers as long as "
        "the hot control structure is input-stable",
    )


#: All figure drivers by name, for the CLI/bench harness.
ALL_FIGURES = {
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5a": figure5a,
    "figure5b": figure5b,
    "figure6": figure6,
    "figure7a": figure7a,
    "figure7b": figure7b,
    "figure8": figure8,
    "figure9a": figure9a,
    "figure9b": figure9b,
    "figure10a": figure10a,
    "figure10b": figure10b,
    "figure11": figure11,
    "figure12": figure12,
    "heuristic_breakdown": heuristic_breakdown,
    "profile_input_sensitivity": profile_input_sensitivity,
}


def run_all(scale: float = 1.0) -> List[FigureResult]:
    """Regenerate and return every figure (for the EXPERIMENTS generator)."""
    return [fn(scale) for fn in ALL_FIGURES.values()]
