"""Shared experiment infrastructure: cached runs and result rendering.

Every figure driver builds on three cached primitives so that sweeps over
many configurations do not repeat work:

- ``trace_for(name, scale)`` — the workload's dynamic trace;
- ``pair_set_for(name, policy, scale)`` — spawning pairs under a policy;
- ``baseline_cycles(name, config, scale)`` — the single-threaded run.

Experiment-wide defaults live here too.  Two deliberate deviations from
the paper's raw parameters (documented in DESIGN.md/EXPERIMENTS.md):
the profile pass uses 99% CFG coverage and a 4096-instruction distance cap
because our synthetic traces lack SpecInt's cold-code tail, so the paper's
90%/unbounded settings would discard structurally important outer loops.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.cmt import ProcessorConfig, simulate
from repro.cmt.stats import SimulationStats
from repro.errors import SimulationTimeout
from repro.exec.trace import Trace
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    SpawnPairSet,
    heuristic_pairs,
    select_profile_pairs,
)
from repro.workloads import load_trace, workload_names

#: Baseline processor configuration for every experiment (Section 4.1).
EXPERIMENT_CONFIG = ProcessorConfig()

#: Profile-policy selection parameters used by the figures.
EXPERIMENT_PROFILE_CONFIG = ProfilePolicyConfig(
    coverage=0.99, max_distance=4096
)

#: Policy name -> pair-set builder.
_POLICIES: Dict[str, Callable[[Trace], SpawnPairSet]] = {
    "profile": lambda trace: select_profile_pairs(
        trace, EXPERIMENT_PROFILE_CONFIG
    ),
    "profile-independent": lambda trace: select_profile_pairs(
        trace,
        ProfilePolicyConfig(
            coverage=EXPERIMENT_PROFILE_CONFIG.coverage,
            max_distance=EXPERIMENT_PROFILE_CONFIG.max_distance,
            ordering="independent",
        ),
    ),
    "profile-predictable": lambda trace: select_profile_pairs(
        trace,
        ProfilePolicyConfig(
            coverage=EXPERIMENT_PROFILE_CONFIG.coverage,
            max_distance=EXPERIMENT_PROFILE_CONFIG.max_distance,
            ordering="predictable",
        ),
    ),
    "heuristics": lambda trace: heuristic_pairs(trace, HeuristicConfig()),
}


def policy_names() -> List[str]:
    """Return the names of the spawning policies the experiments sweep."""
    return list(_POLICIES)


# ----------------------------------------------------------------------
# Artifact cache plumbing.
#
# The primitives below memoize twice: an in-process dict (always on, the
# behaviour the figure drivers have relied on from the start) and an
# optional on-disk :class:`~repro.cache.ArtifactCache` shared across
# processes and runs.  ``use_cache``/``set_cache`` install the disk
# cache; when none is installed everything behaves exactly as before.
# ----------------------------------------------------------------------

_active_cache = None  # Optional[ArtifactCache]


def set_cache(cache):
    """Install ``cache`` (an ``ArtifactCache`` or None) as the active
    on-disk artifact store; returns the previously active one."""
    global _active_cache
    previous, _active_cache = _active_cache, cache
    return previous


def get_cache():
    """Return the currently installed on-disk artifact cache (or None)."""
    return _active_cache


@contextmanager
def use_cache(cache):
    """Context manager installing ``cache`` for the duration of a block.

    Yields:
        The installed cache, restoring the previous one on exit.
    """
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)


def _config_knobs(config: ProcessorConfig) -> Dict[str, Any]:
    """Cache-key fields of a processor configuration (all its knobs)."""
    from dataclasses import asdict

    return asdict(config)


def trace_for(name: str, scale: float = 1.0, dataset: str = "train") -> Trace:
    """The workload's dynamic trace, via the artifact cache when active.

    Args:
        name: Workload name (see :func:`repro.workloads.workload_names`).
        scale: Workload size multiplier.
        dataset: Input dataset variant (``train``/``ref``).

    Returns:
        The cached (or freshly executed) :class:`~repro.exec.trace.Trace`.
    """
    if _active_cache is None:
        return load_trace(name, scale, dataset)
    trace = _active_cache.get_or_create(
        "trace",
        lambda: load_trace(name, scale, dataset),
        workload=name,
        scale=scale,
        dataset=dataset,
    )
    if trace._columns is None:
        # Memoize the columnar view next to the trace: struct-of-arrays
        # columns are content-determined by the trace's key fields, and
        # rebuilding them is the dominant per-process warm-up cost of a
        # sweep, so they are cached as their own artifact kind.
        trace.attach_columns(
            _active_cache.get_or_create(
                "columns",
                lambda: trace.columns,
                workload=name,
                scale=scale,
                dataset=dataset,
            )
        )
    return trace


_pair_memo: Dict[Any, SpawnPairSet] = {}


def pair_set_for(name: str, policy: str = "profile", scale: float = 1.0) -> SpawnPairSet:
    """Cached spawning-pair selection for a workload under a policy.

    Args:
        name: Workload name.
        policy: One of :func:`policy_names`.
        scale: Workload size multiplier.

    Returns:
        The policy's :class:`~repro.spawning.SpawnPairSet` (memoized
        in-process and, when a cache is active, on disk).
    """
    try:
        builder = _POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; choose from {policy_names()}"
        ) from None
    memo_key = (name, policy, scale)
    if memo_key not in _pair_memo:
        if _active_cache is None:
            _pair_memo[memo_key] = builder(trace_for(name, scale))
        else:
            _pair_memo[memo_key] = _active_cache.get_or_create(
                "pairs",
                lambda: builder(trace_for(name, scale)),
                workload=name,
                policy=policy,
                scale=scale,
                coverage=EXPERIMENT_PROFILE_CONFIG.coverage,
                max_distance=EXPERIMENT_PROFILE_CONFIG.max_distance,
            )
    return _pair_memo[memo_key]


_baseline_memo: Dict[Any, int] = {}


def _baseline_key(name: str, config: Optional[ProcessorConfig], scale: float):
    return (name, (config or EXPERIMENT_CONFIG).single_threaded(), scale)


def baseline_cycles(
    name: str, config: Optional[ProcessorConfig] = None, scale: float = 1.0
) -> int:
    """Cached single-threaded cycles for a workload.

    Args:
        name: Workload name.
        config: Processor configuration; its ``single_threaded()``
            reduction keys the memo, so configurations differing only in
            multi-thread policy knobs share one baseline run.
        scale: Workload size multiplier.

    Returns:
        Cycle count of the one-thread-unit execution.
    """
    memo_key = _baseline_key(name, config, scale)
    if memo_key not in _baseline_memo:
        single = memo_key[1]

        def compute() -> int:
            return simulate(trace_for(name, scale), SpawnPairSet([]), single).cycles

        if _active_cache is None:
            _baseline_memo[memo_key] = compute()
        else:
            _baseline_memo[memo_key] = _active_cache.get_or_create(
                "baseline",
                compute,
                workload=name,
                scale=scale,
                config=_config_knobs(single),
            )
    return _baseline_memo[memo_key]


def seed_baseline(
    name: str, config: Optional[ProcessorConfig], scale: float, cycles: int
) -> None:
    """Pre-populate the baseline memo (parallel engine result seeding).

    Args:
        name: Workload name.
        config: Configuration whose ``single_threaded()`` reduction keys
            the memo entry (None means the experiment default).
        scale: Workload size multiplier.
        cycles: The baseline cycle count to record.
    """
    _baseline_memo[_baseline_key(name, config, scale)] = cycles


def clear_memos() -> None:
    """Drop every in-process memo (pairs, baselines, runs, traces).

    The on-disk artifact cache is untouched; this only resets process
    state so benchmarks can measure cold/warm disk-cache behaviour.
    """
    _pair_memo.clear()
    _baseline_memo.clear()
    load_trace.cache_clear()
    from repro.experiments import figures

    figures.clear_run_memo()


def run_policy(
    name: str,
    policy: str = "profile",
    config: Optional[ProcessorConfig] = None,
    scale: float = 1.0,
) -> SimulationStats:
    """Simulate one workload under a policy and configuration.

    Args:
        name: Workload name.
        policy: One of :func:`policy_names`.
        config: Processor configuration (None = experiment default).
        scale: Workload size multiplier.

    Returns:
        The run's :class:`~repro.cmt.stats.SimulationStats`.
    """
    config = config or EXPERIMENT_CONFIG
    return simulate(
        trace_for(name, scale), pair_set_for(name, policy, scale), config
    )


def speedup(
    name: str,
    policy: str = "profile",
    config: Optional[ProcessorConfig] = None,
    scale: float = 1.0,
) -> float:
    """Speed-up over the single-threaded execution.

    Args:
        name: Workload name.
        policy: One of :func:`policy_names`.
        config: Processor configuration (None = experiment default).
        scale: Workload size multiplier.

    Returns:
        ``baseline_cycles / policy_cycles`` for the run.
    """
    config = config or EXPERIMENT_CONFIG
    stats = run_policy(name, policy, config, scale)
    return baseline_cycles(name, config, scale) / stats.cycles


@dataclass
class FigureResult:
    """One reproduced figure: per-benchmark series plus summary rows.

    ``series`` maps a series label (bar group in the paper's plot) to a
    list of values aligned with ``benchmarks``; ``summary`` holds the
    aggregate the paper quotes (Hmean/Amean), and ``paper_reference`` the
    corresponding number from the paper when it states one.
    """

    figure: str
    title: str
    benchmarks: List[str]
    series: Dict[str, List[float]]
    summary: Dict[str, float] = field(default_factory=dict)
    paper_reference: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self, width: int = 9, precision: int = 2) -> str:
        """ASCII table matching the paper's bar-chart layout.

        Args:
            width: Minimum value-column width; columns whose series label
                (or any rendered value) is wider grow to fit, so long
                workload or series names never overflow their column.
            precision: Decimal places of every value cell.

        Returns:
            The table as a newline-joined string.
        """
        name_col = max(
            [len("benchmark")]
            + [len(b) for b in self.benchmarks]
            + [len(label) for label in self.summary]
        )
        col_widths = {
            label: max(
                [width, len(label)]
                + [
                    len(f"{v:.{precision}f}")
                    for v in self.series[label]
                ]
            )
            for label in self.series
        }
        lines = [f"{self.figure}: {self.title}"]
        header = f"{'benchmark':>{name_col}} " + " ".join(
            f"{label:>{col_widths[label]}}" for label in self.series
        )
        lines.append(header)
        for i, bench in enumerate(self.benchmarks):
            row = f"{bench:>{name_col}} " + " ".join(
                f"{values[i]:>{col_widths[label]}.{precision}f}"
                for label, values in self.series.items()
            )
            lines.append(row)
        value_col = next(iter(col_widths.values()), width)
        for label, value in self.summary.items():
            ref = self.paper_reference.get(label)
            suffix = f"   (paper: {ref})" if ref is not None else ""
            lines.append(
                f"{label:>{name_col}} {value:>{value_col}.{precision}f}{suffix}"
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def suite(scale: float = 1.0) -> Sequence[str]:
    """Return the benchmark names in presentation (paper) order."""
    del scale
    return workload_names()


# ----------------------------------------------------------------------
# Hardened execution: wall-clock limits, retries, checkpointed sweeps.
# ----------------------------------------------------------------------


@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Raise :class:`SimulationTimeout` if the block runs past ``seconds``.

    Implemented with ``SIGALRM``, so it only arms in the main thread on
    platforms that have it; elsewhere the block runs unbounded (the
    in-simulator cycle budget is the portable backstop).
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise SimulationTimeout("wall-clock limit exceeded", seconds=seconds)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class ResilientOutcome:
    """Result of one hardened run: the payload or a structured failure."""

    ok: bool
    value: Any = None
    attempts: int = 0
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Wall-clock seconds spent across every attempt (telemetry; 0.0 in
    #: checkpoints written before the field existed).
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON view of the outcome (see :meth:`from_dict`)."""
        return {
            "ok": self.ok,
            "value": self.value,
            "attempts": self.attempts,
            "error": self.error,
            "error_type": self.error_type,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilientOutcome":
        """Return the outcome encoded by a :meth:`to_dict` dictionary."""
        return cls(
            ok=bool(data.get("ok")),
            value=data.get("value"),
            attempts=int(data.get("attempts", 0)),
            error=data.get("error"),
            error_type=data.get("error_type"),
            seconds=float(data.get("seconds", 0.0)),
        )


def backoff_delay(
    backoff: float,
    attempt: int,
    jitter: float = 0.0,
    jitter_key: str = "",
) -> float:
    """Exponential retry delay with deterministic, seeded jitter.

    Args:
        backoff: Base delay in seconds of the first retry.
        attempt: Zero-based index of the attempt that just failed.
        jitter: Jitter fraction in ``[0, 1]``: the delay is spread
            uniformly over ``base * [1 - jitter, 1 + jitter]``.  The
            default 0 reproduces the historical pure-exponential delay
            bit-identically.
        jitter_key: Stable identity of the retrying task (e.g. a job or
            point key); together with ``attempt`` it seeds the jitter,
            so concurrent retries of *different* tasks desynchronise
            while re-runs of the *same* task stay deterministic.

    Returns:
        The delay in seconds (0.0 when ``backoff`` is 0).
    """
    base = backoff * (2**attempt)
    if base <= 0 or jitter <= 0:
        return max(base, 0.0)
    digest = hashlib.blake2b(
        f"{jitter_key}:{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    fraction = int.from_bytes(digest, "big") / float(1 << 64)
    return base * (1.0 + jitter * (2.0 * fraction - 1.0))


def run_resilient(
    task: Callable[[], Any],
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.05,
    jitter: float = 0.0,
    jitter_key: str = "",
) -> ResilientOutcome:
    """Run ``task`` with a per-attempt wall-clock limit and bounded retry.

    A failing attempt (any :class:`Exception`, including the structured
    ``SimulationError`` family) is retried up to ``retries`` times with
    exponential backoff; ``KeyboardInterrupt``/``SystemExit`` propagate.
    ``jitter``/``jitter_key`` spread the backoff deterministically (see
    :func:`backoff_delay`) so a herd of concurrent retries does not
    resynchronise; the default ``jitter=0`` keeps the historical delays
    bit-identical.  Never raises: a run that exhausts its retries is
    reported as a failed :class:`ResilientOutcome` so a sweep can carry
    on.

    Returns:
        A :class:`ResilientOutcome` with the task's value or the last
        failure's type and message.
    """
    last: Optional[BaseException] = None
    started = time.perf_counter()
    for attempt in range(retries + 1):
        try:
            with _wall_clock_limit(timeout):
                value = task()
            return ResilientOutcome(
                ok=True,
                value=value,
                attempts=attempt + 1,
                seconds=time.perf_counter() - started,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            last = exc
            if attempt < retries and backoff > 0:
                time.sleep(
                    backoff_delay(backoff, attempt, jitter, jitter_key)
                )
    return ResilientOutcome(
        ok=False,
        attempts=retries + 1,
        error=str(last),
        error_type=type(last).__name__,
        seconds=time.perf_counter() - started,
    )


class SweepCheckpoint:
    """JSON store of completed sweep runs, written atomically per record.

    A killed campaign restarts from the checkpoint: completed keys are
    skipped, half-finished runs simply re-run.  The file maps run key to
    a :class:`ResilientOutcome` dict.

    A corrupt or truncated checkpoint file (e.g. the machine died while
    an older non-atomic writer held it, or the disk lied) is never
    fatal: the bad file is quarantined to ``<path>.corrupt`` and the
    sweep restarts from an empty store, re-running everything instead
    of crashing.  ``quarantined`` holds the quarantine path when that
    happened.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._outcomes: Dict[str, Dict[str, Any]] = {}
        self.quarantined: Optional[Path] = None
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text())
                if not isinstance(data, dict):
                    raise ValueError(
                        f"checkpoint root is {type(data).__name__}, "
                        "expected an object"
                    )
                self._outcomes = data
            except (json.JSONDecodeError, ValueError, UnicodeDecodeError):
                self.quarantined = self.path.with_suffix(
                    self.path.suffix + ".corrupt"
                )
                os.replace(self.path, self.quarantined)
                self._outcomes = {}

    def __contains__(self, key: str) -> bool:
        return key in self._outcomes

    def __len__(self) -> int:
        return len(self._outcomes)

    def get(self, key: str) -> Optional[ResilientOutcome]:
        """Return the recorded outcome for ``key`` (None if absent)."""
        data = self._outcomes.get(key)
        return None if data is None else ResilientOutcome.from_dict(data)

    def record(self, key: str, outcome: ResilientOutcome) -> None:
        """Record the outcome under ``key`` and flush the store atomically."""
        self._outcomes[key] = outcome.to_dict()
        self._flush()

    def discard(self, key: str) -> None:
        """Forget a recorded run (it will re-run on the next sweep)."""
        if self._outcomes.pop(key, None) is not None:
            self._flush()

    def _flush(self) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(self._outcomes, indent=1, sort_keys=True))
        os.replace(tmp, self.path)


def resilient_sweep(
    tasks: Dict[str, Callable[[], Any]],
    checkpoint: Optional[SweepCheckpoint] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.05,
    progress: Optional[Callable[[str, ResilientOutcome, bool], None]] = None,
    jitter: float = 0.0,
) -> Dict[str, ResilientOutcome]:
    """Run every task resiliently, checkpointing each completed run.

    ``tasks`` maps a stable run key to a zero-argument callable returning
    a JSON-serialisable payload.  Keys already present in ``checkpoint``
    are resumed (not re-run).  ``progress(key, outcome, resumed)`` is
    called after every run when given.  ``jitter`` spreads retry
    backoffs deterministically per run key (see :func:`backoff_delay`).
    """
    results: Dict[str, ResilientOutcome] = {}
    for key, task in tasks.items():
        resumed = checkpoint is not None and key in checkpoint
        if resumed:
            outcome = checkpoint.get(key)
        else:
            outcome = run_resilient(
                task, timeout=timeout, retries=retries, backoff=backoff,
                jitter=jitter, jitter_key=key,
            )
            if checkpoint is not None:
                checkpoint.record(key, outcome)
        results[key] = outcome
        if progress is not None:
            progress(key, outcome, resumed)
    return results
