"""Shared experiment infrastructure: cached runs and result rendering.

Every figure driver builds on three cached primitives so that sweeps over
many configurations do not repeat work:

- ``trace_for(name, scale)`` — the workload's dynamic trace;
- ``pair_set_for(name, policy, scale)`` — spawning pairs under a policy;
- ``baseline_cycles(name, config, scale)`` — the single-threaded run.

Experiment-wide defaults live here too.  Two deliberate deviations from
the paper's raw parameters (documented in DESIGN.md/EXPERIMENTS.md):
the profile pass uses 99% CFG coverage and a 4096-instruction distance cap
because our synthetic traces lack SpecInt's cold-code tail, so the paper's
90%/unbounded settings would discard structurally important outer loops.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cmt import ProcessorConfig, simulate
from repro.cmt.stats import SimulationStats
from repro.exec.trace import Trace
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    SpawnPairSet,
    heuristic_pairs,
    select_profile_pairs,
)
from repro.workloads import load_trace, workload_names

#: Baseline processor configuration for every experiment (Section 4.1).
EXPERIMENT_CONFIG = ProcessorConfig()

#: Profile-policy selection parameters used by the figures.
EXPERIMENT_PROFILE_CONFIG = ProfilePolicyConfig(
    coverage=0.99, max_distance=4096
)

#: Policy name -> pair-set builder.
_POLICIES: Dict[str, Callable[[Trace], SpawnPairSet]] = {
    "profile": lambda trace: select_profile_pairs(
        trace, EXPERIMENT_PROFILE_CONFIG
    ),
    "profile-independent": lambda trace: select_profile_pairs(
        trace,
        ProfilePolicyConfig(
            coverage=EXPERIMENT_PROFILE_CONFIG.coverage,
            max_distance=EXPERIMENT_PROFILE_CONFIG.max_distance,
            ordering="independent",
        ),
    ),
    "profile-predictable": lambda trace: select_profile_pairs(
        trace,
        ProfilePolicyConfig(
            coverage=EXPERIMENT_PROFILE_CONFIG.coverage,
            max_distance=EXPERIMENT_PROFILE_CONFIG.max_distance,
            ordering="predictable",
        ),
    ),
    "heuristics": lambda trace: heuristic_pairs(trace, HeuristicConfig()),
}


def policy_names() -> List[str]:
    return list(_POLICIES)


@functools.lru_cache(maxsize=128)
def pair_set_for(name: str, policy: str = "profile", scale: float = 1.0) -> SpawnPairSet:
    """Cached spawning-pair selection for a workload under a policy."""
    try:
        builder = _POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; choose from {policy_names()}"
        ) from None
    return builder(load_trace(name, scale))


@functools.lru_cache(maxsize=256)
def baseline_cycles(
    name: str, config: Optional[ProcessorConfig] = None, scale: float = 1.0
) -> int:
    """Cached single-threaded cycles for a workload."""
    config = (config or EXPERIMENT_CONFIG).single_threaded()
    return simulate(load_trace(name, scale), SpawnPairSet([]), config).cycles


def run_policy(
    name: str,
    policy: str = "profile",
    config: Optional[ProcessorConfig] = None,
    scale: float = 1.0,
) -> SimulationStats:
    """Simulate one workload under a policy and configuration."""
    config = config or EXPERIMENT_CONFIG
    return simulate(load_trace(name, scale), pair_set_for(name, policy, scale), config)


def speedup(
    name: str,
    policy: str = "profile",
    config: Optional[ProcessorConfig] = None,
    scale: float = 1.0,
) -> float:
    """Speed-up over the single-threaded execution."""
    config = config or EXPERIMENT_CONFIG
    stats = run_policy(name, policy, config, scale)
    return baseline_cycles(name, config, scale) / stats.cycles


@dataclass
class FigureResult:
    """One reproduced figure: per-benchmark series plus summary rows.

    ``series`` maps a series label (bar group in the paper's plot) to a
    list of values aligned with ``benchmarks``; ``summary`` holds the
    aggregate the paper quotes (Hmean/Amean), and ``paper_reference`` the
    corresponding number from the paper when it states one.
    """

    figure: str
    title: str
    benchmarks: List[str]
    series: Dict[str, List[float]]
    summary: Dict[str, float] = field(default_factory=dict)
    paper_reference: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self, width: int = 9, precision: int = 2) -> str:
        """ASCII table matching the paper's bar-chart layout."""
        lines = [f"{self.figure}: {self.title}"]
        header = f"{'benchmark':>12} " + " ".join(
            f"{label:>{width}}" for label in self.series
        )
        lines.append(header)
        for i, bench in enumerate(self.benchmarks):
            row = f"{bench:>12} " + " ".join(
                f"{values[i]:>{width}.{precision}f}"
                for values in self.series.values()
            )
            lines.append(row)
        for label, value in self.summary.items():
            ref = self.paper_reference.get(label)
            suffix = f"   (paper: {ref})" if ref is not None else ""
            lines.append(f"{label:>12} {value:>{width}.{precision}f}{suffix}")
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def suite(scale: float = 1.0) -> Sequence[str]:
    """Benchmarks in presentation order (the paper's order)."""
    del scale
    return workload_names()
