"""Experiment drivers: one function per figure of the paper's evaluation.

:mod:`repro.experiments.framework` provides the cached building blocks
(traces, pair sets, baseline cycles) and :mod:`repro.experiments.figures`
the per-figure sweeps.  Each figure function returns a
:class:`~repro.experiments.framework.FigureResult` that renders to the same
rows/series the paper plots.  :mod:`repro.experiments.engine` fans a
figure's sweep grid across worker processes (sharing the on-disk
:class:`~repro.cache.ArtifactCache`), and :mod:`repro.experiments.bench`
measures the whole machinery for ``BENCH_parallel.json`` and the
simulator core for ``BENCH_simcore.json``.
:mod:`repro.experiments.profiler` breaks one experiment point into
phase timings and cProfile hotspots (``repro profile``).
"""

from repro.experiments.framework import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_PROFILE_CONFIG,
    FigureResult,
    ResilientOutcome,
    SweepCheckpoint,
    backoff_delay,
    baseline_cycles,
    pair_set_for,
    resilient_sweep,
    run_policy,
    run_resilient,
)
from repro.experiments.engine import ParallelEngine, figure_points, run_figure
from repro.experiments.profiler import ProfileReport, profile_run
from repro.experiments import figures

__all__ = [
    "EXPERIMENT_CONFIG",
    "EXPERIMENT_PROFILE_CONFIG",
    "FigureResult",
    "ParallelEngine",
    "ProfileReport",
    "profile_run",
    "ResilientOutcome",
    "SweepCheckpoint",
    "backoff_delay",
    "baseline_cycles",
    "figure_points",
    "pair_set_for",
    "resilient_sweep",
    "run_figure",
    "run_policy",
    "run_resilient",
    "figures",
]
