"""Performance benchmarks: parallel engine/cache and the simulator core.

``repro bench`` runs one figure sweep (Figure 8 by default: the full
suite under both spawning policies) through four phases — jobs=1 and
jobs=N, each cold-cache then warm-cache — measuring wall-clock seconds
and cache hit rates, and verifying that every phase produced identical
figure series.  The report seeds the repository's performance
trajectory as ``BENCH_parallel.json``.

:func:`run_simcore_bench` benchmarks the simulator cores themselves: it
measures cold/warm columnar-trace builds through the artifact cache,
checks the columnar and event cores against the legacy dict-based core
for bit-identical stats across the whole workload × policy × predictor
grid (plus a deterministic fault-injected leg), and times the full
paper grid — every workload under both spawning policies and all of
:data:`SIMCORE_PREDICTORS`, with single-threaded baselines — under
each core (jobs=1, warm traces and pairs).  The report is
``BENCH_simcore.json``; its gates are ``equal_results`` (the cores
agree everywhere) and ``columns_cache.warm_hit_rate == 1.0`` (a warm
build never recomputes columns), with the event core's cold-sweep
speed-up over legacy checked against :data:`SIMCORE_SPEEDUP_TARGET`
on full-scale runs.

In-process memos are cleared between phases so the numbers measure the
on-disk artifact cache, not Python dict lookups.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.cache import ArtifactCache, generator_version
from repro.experiments import framework
from repro.experiments.engine import ParallelEngine, run_figure

__all__ = [
    "run_bench",
    "write_bench_report",
    "run_simcore_bench",
    "write_simcore_report",
    "SIMCORE_SPEEDUP_TARGET",
]


def _phase(
    label: str,
    figure: str,
    scale: float,
    jobs: int,
    cache_dir: str,
    progress: Optional[Callable[[str], None]] = None,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one bench phase and measure it; returns the phase record."""
    framework.clear_memos()
    engine = ParallelEngine(jobs=jobs, cache_dir=cache_dir, backend=backend)
    start = time.perf_counter()
    result = run_figure(figure, scale, engine)
    seconds = time.perf_counter() - start
    record = {
        "label": label,
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "cache": dict(engine.cache_events),
        "cache_hit_rate": round(engine.cache_hit_rate(), 4),
        "series": result.series,
    }
    if progress is not None:
        progress(
            f"{label}: {seconds:.2f}s, hit rate "
            f"{record['cache_hit_rate']:.0%}"
        )
    return record


def run_bench(
    figure: str = "figure8",
    scale: float = 0.3,
    jobs: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Benchmark a figure sweep: jobs=1 vs jobs=N, cold vs warm cache.

    Args:
        figure: Figure driver to sweep (default ``figure8``).
        scale: Workload size multiplier.
        jobs: Parallel worker count for the jobs=N phases (default:
            ``os.cpu_count()`` via the engine).
        cache_dir: Artifact-cache directory (required; the caller owns
            its lifetime — ``repro bench`` uses a temporary directory).
        progress: Optional per-phase status callback.
        backend: Executor backend of the jobs=N phases (None keeps the
            historical ``process`` fan-out).

    Returns:
        The benchmark report: per-phase wall-clock and cache counters,
        derived speedups, and an ``equal_results`` flag confirming all
        phases produced identical figure series.
    """
    if cache_dir is None:
        raise ValueError("run_bench needs an explicit cache_dir")
    cache_dir = str(cache_dir)
    cache = ArtifactCache(cache_dir)
    parallel_jobs = ParallelEngine(jobs=jobs).jobs

    phases: List[Dict[str, Any]] = []
    cache.clear()
    phases.append(_phase("jobs1_cold", figure, scale, 1, cache_dir, progress))
    phases.append(_phase("jobs1_warm", figure, scale, 1, cache_dir, progress))
    cache.clear()
    phases.append(
        _phase("jobsN_cold", figure, scale, parallel_jobs, cache_dir,
               progress, backend)
    )
    phases.append(
        _phase("jobsN_warm", figure, scale, parallel_jobs, cache_dir,
               progress, backend)
    )
    framework.clear_memos()

    by_label = {p["label"]: p for p in phases}
    first_series = phases[0]["series"]
    equal = all(p["series"] == first_series for p in phases)

    def ratio(cold: str, warm: str) -> float:
        denom = by_label[warm]["seconds"]
        return round(by_label[cold]["seconds"] / denom, 2) if denom else float("inf")

    report = {
        "figure": figure,
        "scale": scale,
        "parallel_jobs": parallel_jobs,
        "backend": backend or "process",
        "generator_version": generator_version(),
        "python": platform.python_version(),
        "phases": {
            p["label"]: {k: v for k, v in p.items() if k != "series"}
            for p in phases
        },
        "warm_speedup_jobs1": ratio("jobs1_cold", "jobs1_warm"),
        "warm_speedup_jobsN": ratio("jobsN_cold", "jobsN_warm"),
        "equal_results": equal,
    }
    return report


def write_bench_report(
    report: Dict[str, Any], path: Union[str, Path] = "BENCH_parallel.json"
) -> Path:
    """Write a bench report as pretty JSON; returns the written path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Simulator-core benchmark (BENCH_simcore.json).
# ----------------------------------------------------------------------

#: Minimum cold-sweep speed-up (legacy seconds / event seconds) the
#: full-scale benchmark must demonstrate.
SIMCORE_SPEEDUP_TARGET = 4.0

#: Simulator cores under test, reference core first.
SIMCORE_CORES = ("legacy", "columnar", "event")

#: Spawning policies of the equal-stats grid (the two pair schemes the
#: paper compares).
SIMCORE_POLICIES = ("profile", "heuristics")

#: Live-in value predictors of the equal-stats grid.
SIMCORE_PREDICTORS = ("perfect", "stride", "fcm")


def _columns_cache_phase(
    cache_dir: str,
    scale: float,
    names: List[str],
    progress: Optional[Callable[[str], None]],
) -> Dict[str, Any]:
    """Cold/warm columnar-trace builds through the artifact cache."""

    def build_all(cache: ArtifactCache) -> float:
        framework.clear_memos()
        start = time.perf_counter()
        with framework.use_cache(cache):
            for name in names:
                framework.trace_for(name, scale)
        return time.perf_counter() - start

    cold_cache = ArtifactCache(cache_dir)
    cold_cache.clear()
    cold_seconds = build_all(cold_cache)
    # A fresh ArtifactCache instance over the same directory: the memory
    # LRU starts empty, so every warm lookup must be served from disk.
    warm_cache = ArtifactCache(cache_dir)
    warm_seconds = build_all(warm_cache)
    framework.clear_memos()
    record = {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "cold": cold_cache.stats.to_dict(),
        "warm": warm_cache.stats.to_dict(),
        "warm_hit_rate": round(warm_cache.stats.hit_rate, 4),
    }
    if progress is not None:
        progress(
            f"columns cache: cold {cold_seconds:.2f}s, warm "
            f"{warm_seconds:.2f}s (hit rate "
            f"{record['warm_hit_rate']:.0%})"
        )
    return record


def _equal_stats_phase(
    scale: float,
    names: List[str],
    progress: Optional[Callable[[str], None]],
) -> Dict[str, Any]:
    """Every core vs legacy: bit-identical stats across the whole grid.

    Besides the healthy workload × policy × predictor grid, one
    deterministic fault-injected point (TU blackouts) pins the cores'
    agreement on the injector leg, where the event core degrades to
    poll parking and all columnar-family runs book through the issue
    rings.
    """
    from repro.cmt import simulate
    from repro.faults import FaultInjector, FaultPlan, TUBlackoutFault

    base = framework.EXPERIMENT_CONFIG
    points = 0
    mismatches: List[str] = []

    def compare(label, trace, pairs, config, plan=None):
        nonlocal points
        reference = None
        for core in SIMCORE_CORES:
            injector = FaultInjector(plan) if plan is not None else None
            stats = simulate(
                trace, pairs, config.with_(sim_core=core), injector
            ).to_dict()
            if reference is None:
                reference = stats
            elif stats != reference:
                mismatches.append(f"{label}/{core}")
        points += 1

    for name in names:
        trace = framework.trace_for(name, scale)
        for policy in SIMCORE_POLICIES:
            pairs = framework.pair_set_for(name, policy, scale)
            for predictor in SIMCORE_PREDICTORS:
                compare(
                    f"{name}/{policy}/{predictor}",
                    trace,
                    pairs,
                    base.with_(value_predictor=predictor),
                )
    fault_name = names[0]
    plan = FaultPlan(
        seed=7,
        tu_blackout=TUBlackoutFault(rate=0.5, duration=120, slot_cycles=200),
    )
    compare(
        f"{fault_name}/profile/stride/faults",
        framework.trace_for(fault_name, scale),
        framework.pair_set_for(fault_name, "profile", scale),
        base.with_(value_predictor="stride"),
        plan=plan,
    )
    record = {
        "points": points,
        "cores": list(SIMCORE_CORES),
        "fault_injected_points": 1,
        "mismatches": mismatches,
        "equal_results": not mismatches,
    }
    if progress is not None:
        progress(
            f"equal-stats grid: {points} points x {len(SIMCORE_CORES)} "
            f"cores, {len(mismatches)} mismatch(es)"
        )
    return record


def _sweep_phase(
    scale: float,
    names: List[str],
    progress: Optional[Callable[[str], None]],
    repeats: int = 2,
) -> Dict[str, Any]:
    """Cold paper-grid sweep (jobs=1) under each core, warm trace/pairs.

    The grid is every workload under both spawning policies and every
    predictor in :data:`SIMCORE_PREDICTORS`, plus one single-threaded
    baseline per workload.  Each core's sweep runs ``repeats`` times
    and reports the fastest pass (the standard defence against one-off
    scheduler/allocator noise on shared machines); every pass must
    produce the same series.
    """
    from repro.cmt import simulate
    from repro.spawning import SpawnPairSet

    traces = {name: framework.trace_for(name, scale) for name in names}
    for trace in traces.values():
        trace.columns  # build once: the sweep times simulation only
    pair_sets = {
        (name, policy): framework.pair_set_for(name, policy, scale)
        for name in names
        for policy in SIMCORE_POLICIES
    }
    base = framework.EXPERIMENT_CONFIG
    cores: Dict[str, Dict[str, Any]] = {}
    for core in SIMCORE_CORES:
        config = base.with_(sim_core=core)
        single = config.single_threaded()
        runs: List[float] = []
        instructions = 0
        series: Dict[str, Dict[str, Any]] = {}
        for _ in range(max(repeats, 1)):
            instructions = 0
            series = {}
            start = time.perf_counter()
            for name in names:
                baseline = simulate(traces[name], SpawnPairSet([]), single)
                instructions += baseline.instructions
                row: Dict[str, Any] = {"baseline": baseline.cycles}
                for policy in SIMCORE_POLICIES:
                    cells = {}
                    for predictor in SIMCORE_PREDICTORS:
                        stats = simulate(
                            traces[name],
                            pair_sets[(name, policy)],
                            config.with_(value_predictor=predictor),
                        )
                        instructions += stats.instructions
                        cells[predictor] = stats.cycles
                    row[policy] = cells
                series[name] = row
            runs.append(time.perf_counter() - start)
        seconds = min(runs)
        cores[core] = {
            "sim_core": core,
            "seconds": round(seconds, 4),
            "runs": [round(s, 4) for s in runs],
            "instructions": instructions,
            "insts_per_sec": round(instructions / seconds) if seconds else 0,
            "series": series,
        }
        if progress is not None:
            progress(
                f"sweep [{core}]: {seconds:.2f}s best of {len(runs)} "
                f"({cores[core]['insts_per_sec']:,} insts/sec)"
            )
    legacy_seconds = cores["legacy"]["seconds"]
    speedups = {
        core: (
            round(legacy_seconds / cores[core]["seconds"], 3)
            if cores[core]["seconds"]
            else float("inf")
        )
        for core in SIMCORE_CORES
        if core != "legacy"
    }
    legacy_series = cores["legacy"]["series"]
    equal_series = all(
        cores[core]["series"] == legacy_series for core in SIMCORE_CORES
    )
    record: Dict[str, Any] = {
        core: {k: v for k, v in cores[core].items() if k != "series"}
        for core in SIMCORE_CORES
    }
    record["speedups"] = speedups
    record["speedup"] = speedups["event"]
    record["equal_series"] = equal_series
    if progress is not None:
        progress(
            f"sweep speedup: event {speedups['event']}x, columnar "
            f"{speedups['columnar']}x (series equal: {equal_series})"
        )
    return record


def run_simcore_bench(
    scale: float = 0.3,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[Callable[[str], None]] = None,
    enforce_speedup: bool = True,
    speedup_target: float = SIMCORE_SPEEDUP_TARGET,
) -> Dict[str, Any]:
    """Benchmark the columnar and event cores against the legacy core.

    Args:
        scale: Workload size multiplier (1.0 for the committed report;
            smoke runs use a smaller scale).
        cache_dir: Artifact-cache directory for the cold/warm
            columnar-build phase (required; the caller owns it).
        progress: Optional per-phase status callback.
        enforce_speedup: Include the cold-sweep speed-up in the
            report's overall ``ok`` flag.  Smoke runs disable this —
            at tiny scales fixed costs dominate, so only the
            correctness and cache gates are load-bearing there.
        speedup_target: Required cold-sweep speed-up when enforced.

    Returns:
        The benchmark report (the ``BENCH_simcore.json`` payload):
        per-phase records, the gate results, the top-level
        ``equal_results`` flag, and ``ok``.
    """
    if cache_dir is None:
        raise ValueError("run_simcore_bench needs an explicit cache_dir")
    from repro.workloads import workload_names

    names = list(workload_names())
    columns_cache = _columns_cache_phase(
        str(cache_dir), scale, names, progress
    )
    equal_stats = _equal_stats_phase(scale, names, progress)
    sweep = _sweep_phase(scale, names, progress)
    framework.clear_memos()

    equal_results = equal_stats["equal_results"] and sweep["equal_series"]
    gates = {
        "equal_results": equal_results,
        "columns_cache_warm": columns_cache["warm_hit_rate"] == 1.0,
        "speedup": sweep["speedup"] >= speedup_target,
    }
    ok = gates["equal_results"] and gates["columns_cache_warm"]
    if enforce_speedup:
        ok = ok and gates["speedup"]
    return {
        "kind": "simcore",
        "scale": scale,
        "workloads": names,
        "cores": list(SIMCORE_CORES),
        "policies": list(SIMCORE_POLICIES),
        "predictors": list(SIMCORE_PREDICTORS),
        "generator_version": generator_version(),
        "python": platform.python_version(),
        "columns_cache": columns_cache,
        "equal_stats": equal_stats,
        "sweep": sweep,
        "speedup_target": speedup_target,
        "speedup_enforced": enforce_speedup,
        "gates": gates,
        "equal_results": equal_results,
        "ok": ok,
    }


def write_simcore_report(
    report: Dict[str, Any], path: Union[str, Path] = "BENCH_simcore.json"
) -> Path:
    """Write a sim-core bench report as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path
