"""Performance benchmark of the parallel engine and artifact cache.

``repro bench`` runs one figure sweep (Figure 8 by default: the full
suite under both spawning policies) through four phases — jobs=1 and
jobs=N, each cold-cache then warm-cache — measuring wall-clock seconds
and cache hit rates, and verifying that every phase produced identical
figure series.  The report seeds the repository's performance
trajectory as ``BENCH_parallel.json``.

In-process memos are cleared between phases so the numbers measure the
on-disk artifact cache, not Python dict lookups.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.cache import ArtifactCache, generator_version
from repro.experiments import framework
from repro.experiments.engine import ParallelEngine, run_figure

__all__ = ["run_bench", "write_bench_report"]


def _phase(
    label: str,
    figure: str,
    scale: float,
    jobs: int,
    cache_dir: str,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run one bench phase and measure it; returns the phase record."""
    framework.clear_memos()
    engine = ParallelEngine(jobs=jobs, cache_dir=cache_dir)
    start = time.perf_counter()
    result = run_figure(figure, scale, engine)
    seconds = time.perf_counter() - start
    record = {
        "label": label,
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "cache": dict(engine.cache_events),
        "cache_hit_rate": round(engine.cache_hit_rate(), 4),
        "series": result.series,
    }
    if progress is not None:
        progress(
            f"{label}: {seconds:.2f}s, hit rate "
            f"{record['cache_hit_rate']:.0%}"
        )
    return record


def run_bench(
    figure: str = "figure8",
    scale: float = 0.3,
    jobs: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark a figure sweep: jobs=1 vs jobs=N, cold vs warm cache.

    Args:
        figure: Figure driver to sweep (default ``figure8``).
        scale: Workload size multiplier.
        jobs: Parallel worker count for the jobs=N phases (default:
            ``os.cpu_count()`` via the engine).
        cache_dir: Artifact-cache directory (required; the caller owns
            its lifetime — ``repro bench`` uses a temporary directory).
        progress: Optional per-phase status callback.

    Returns:
        The benchmark report: per-phase wall-clock and cache counters,
        derived speedups, and an ``equal_results`` flag confirming all
        phases produced identical figure series.
    """
    if cache_dir is None:
        raise ValueError("run_bench needs an explicit cache_dir")
    cache_dir = str(cache_dir)
    cache = ArtifactCache(cache_dir)
    parallel_jobs = ParallelEngine(jobs=jobs).jobs

    phases: List[Dict[str, Any]] = []
    cache.clear()
    phases.append(_phase("jobs1_cold", figure, scale, 1, cache_dir, progress))
    phases.append(_phase("jobs1_warm", figure, scale, 1, cache_dir, progress))
    cache.clear()
    phases.append(
        _phase("jobsN_cold", figure, scale, parallel_jobs, cache_dir, progress)
    )
    phases.append(
        _phase("jobsN_warm", figure, scale, parallel_jobs, cache_dir, progress)
    )
    framework.clear_memos()

    by_label = {p["label"]: p for p in phases}
    first_series = phases[0]["series"]
    equal = all(p["series"] == first_series for p in phases)

    def ratio(cold: str, warm: str) -> float:
        denom = by_label[warm]["seconds"]
        return round(by_label[cold]["seconds"] / denom, 2) if denom else float("inf")

    report = {
        "figure": figure,
        "scale": scale,
        "parallel_jobs": parallel_jobs,
        "generator_version": generator_version(),
        "python": platform.python_version(),
        "phases": {
            p["label"]: {k: v for k, v in p.items() if k != "series"}
            for p in phases
        },
        "warm_speedup_jobs1": ratio("jobs1_cold", "jobs1_warm"),
        "warm_speedup_jobsN": ratio("jobsN_cold", "jobsN_warm"),
        "equal_results": equal,
    }
    return report


def write_bench_report(
    report: Dict[str, Any], path: Union[str, Path] = "BENCH_parallel.json"
) -> Path:
    """Write a bench report as pretty JSON; returns the written path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path
