"""Parallel experiment engine: fan sweep points across worker processes.

Every figure in the paper's evaluation is an embarrassingly parallel
sweep over (workload x policy x thread-unit count).  This module turns
such a sweep into a list of pickle-safe :class:`Point` specs, runs each
point through the hardened :func:`~repro.experiments.framework.run_resilient`
wrapper — serially for ``jobs=1`` (bit-identical to the historical
path), or through a pluggable executor :class:`~repro.dist.backend.Backend`
(``process``, ``async-local``, ``remote``) otherwise — and reassembles
results in deterministic input order regardless of completion order.

Workers share the on-disk :class:`~repro.cache.ArtifactCache` when one
is configured, so traces/pairs/baselines are derived once per sweep and
whole point results are memoized across runs.  A
:class:`~repro.experiments.framework.SweepCheckpoint` integrates for
resume: completed point keys are skipped on restart.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cache import ArtifactCache
from repro.experiments import figures as figures_mod
from repro.experiments import framework
from repro.experiments.framework import (
    EXPERIMENT_CONFIG,
    FigureResult,
    ResilientOutcome,
    SweepCheckpoint,
    resilient_sweep,
)

__all__ = [
    "Point",
    "ParallelEngine",
    "figure_points",
    "run_figure",
    "execute_point",
    "POINT_RUNNERS",
]


@dataclass(frozen=True)
class Point:
    """One pickle-safe unit of sweep work.

    Args:
        key: Stable identifier (checkpoint key and result-ordering key).
        runner: Name of a registered runner in :data:`POINT_RUNNERS`.
        params: Keyword arguments of the runner — JSON-able primitives
            only, so a point can cross a process boundary and key the
            artifact cache.
    """

    key: str
    runner: str
    params: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Point runners.  Top-level functions (pickle-safe); each returns a
# JSON-serialisable payload so outcomes survive checkpoints and caches.
# ----------------------------------------------------------------------


def _runner_simulate(
    name: str, policy: str, scale: float, overrides: Dict[str, Any]
) -> Dict[str, Any]:
    """Simulate one (workload, policy, configuration) figure point."""
    config = EXPERIMENT_CONFIG.with_(**overrides)
    stats = framework.run_policy(name, policy, config, scale)
    baseline = framework.baseline_cycles(name, config, scale)
    return {
        "cycles": stats.cycles,
        "baseline": baseline,
        "speedup": baseline / stats.cycles if stats.cycles else 0.0,
        "avg_active_threads": stats.avg_active_threads,
        "avg_thread_size": stats.avg_thread_size,
        "value_hit_rate": stats.value_hit_rate,
    }


#: Worker-local budget of injected crashes (resilience testing); the
#: retry of a crashed attempt runs in the same process and proceeds.
_CRASH_BUDGET: Dict[str, int] = {}


def _runner_campaign(
    spec_fields: Dict[str, Any],
    workload: str,
    rate: float,
    sequential: int,
    faultless: int,
    crash_key: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one fault-injection campaign point (see ``faults.campaign``)."""
    from repro.faults.campaign import CampaignSpec, _run_payload

    if crash_key is not None:
        budget = _CRASH_BUDGET.setdefault(crash_key, 1)
        if budget > 0:
            _CRASH_BUDGET[crash_key] = budget - 1
            raise RuntimeError(f"injected worker crash in {crash_key}")
    spec = CampaignSpec(
        workloads=(workload,),
        rates=(rate,),
        seed=int(spec_fields["seed"]),
        scale=float(spec_fields["scale"]),
        policy=str(spec_fields["policy"]),
        thread_units=int(spec_fields["thread_units"]),
        cycle_budget_factor=int(spec_fields["cycle_budget_factor"]),
    )
    return _run_payload(spec, workload, rate, sequential, faultless)


def _runner_sleep(
    duration: float = 0.05,
    fail: Optional[str] = None,
    tag: Optional[str] = None,
) -> Dict[str, Any]:
    """Deterministic low-cost workload for backend/scheduler testing.

    Args:
        duration: Seconds to sleep.
        fail: ``"transient"`` raises ``RuntimeError`` after sleeping.
        tag: Free-form marker echoed in the payload.

    Returns:
        ``{"slept": duration, "tag": tag}`` on success.
    """
    time.sleep(max(float(duration), 0.0))
    if fail == "transient":
        raise RuntimeError("injected transient failure")
    return {"slept": float(duration), "tag": tag}


#: runner name -> callable; points refer to runners by name so the spec
#: stays picklable (no closures cross the process boundary).  ``sleep``
#: is the uncached, deterministic workload the distributed tests and
#: benchmarks use (the serve daemon overrides it with a cancel-aware
#: variant in its own registry).
POINT_RUNNERS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "simulate": _runner_simulate,
    "campaign": _runner_campaign,
    "sleep": _runner_sleep,
}


def execute_point(point: Point, cache: Optional[ArtifactCache] = None) -> Any:
    """Run one point, memoizing its payload in the artifact cache.

    Args:
        point: The point spec to execute.
        cache: Active artifact cache (None disables point memoization).

    Returns:
        The runner's JSON-serialisable payload.
    """
    runner = POINT_RUNNERS[point.runner]
    if cache is None or point.runner not in ("simulate", "campaign"):
        return runner(**point.params)
    return cache.get_or_create(
        "point", lambda: runner(**point.params), runner=point.runner, **point.params
    )


class ParallelEngine:
    """Fan experiment points across an executor backend, with resume.

    Args:
        jobs: Worker count; ``None`` means ``os.cpu_count()``.  ``jobs=1``
            executes through :func:`resilient_sweep` in the calling
            process — bit-identical to the historical serial path.
        cache_dir: Directory of the shared on-disk artifact cache (None
            disables disk caching; in-process memos still apply).
        timeout: Per-point wall-clock limit in seconds (None = unbounded).
        retries: Retry budget per point.
        backoff: Base of the exponential retry backoff in seconds.
        telemetry_dir: When set, :meth:`run` writes one
            :class:`~repro.obs.manifest.RunManifest` per point (config
            digest, seed, per-point cache delta, attempts, wall time,
            executing worker) plus a sweep-level rollup into this
            directory; an existing directory also seeds the
            work-stealing scheduler's cost priors.
        backend: Executor backend — a registry name (``serial``,
            ``process``, ``async-local``, ``remote``) or a ready
            :class:`~repro.dist.backend.Backend` instance.  ``None``
            selects ``serial`` for ``jobs=1`` and ``process``
            otherwise, matching the historical behaviour exactly.
        workers: Parallelism the backend should use (default ``jobs``).

    After :meth:`run`, ``cache_events`` holds aggregated cache counters
    (parent plus every worker) for the executed points, and ``fleet``
    holds the backend's fleet summary (scheduler/cache counters; empty
    for backends without one).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        telemetry_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        backend: Optional[Any] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.jobs = max(1, int(jobs) if jobs else (os.cpu_count() or 1))
        self.cache_dir = os.fspath(cache_dir) if cache_dir else None
        self.cache: Optional[ArtifactCache] = (
            ArtifactCache(self.cache_dir) if self.cache_dir else None
        )
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.telemetry_dir = (
            os.fspath(telemetry_dir) if telemetry_dir else None
        )
        self.backend = backend
        self.workers = max(1, int(workers)) if workers else self.jobs
        self.backend_name = self._resolve_backend_name()
        self.cache_events: Dict[str, int] = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "puts": 0,
        }
        #: fleet summary of the last run (work-stealing/cache counters).
        self.fleet: Dict[str, Any] = {}
        #: point key -> cache-counter delta of that point's execution
        #: (only points actually run this sweep; resumed points absent).
        self._point_deltas: Dict[str, Dict[str, int]] = {}
        #: point key -> id of the worker that executed it.
        self._worker_ids: Dict[str, str] = {}

    def _resolve_backend_name(self) -> str:
        """Return the effective backend name of this engine."""
        if self.backend is None:
            return "serial" if self.jobs == 1 else "process"
        if isinstance(self.backend, str):
            return self.backend
        return getattr(self.backend, "name", "custom")

    # ------------------------------------------------------------------

    def _note_cache_delta(self, delta: Dict[str, int]) -> None:
        for key, value in delta.items():
            self.cache_events[key] = self.cache_events.get(key, 0) + value

    def cache_hit_rate(self) -> float:
        """Return the aggregated hit rate of executed points (0.0 idle)."""
        hits = self.cache_events["memory_hits"] + self.cache_events["disk_hits"]
        total = hits + self.cache_events["misses"]
        return hits / total if total else 0.0

    def run(
        self,
        points: Sequence[Point],
        checkpoint: Optional[SweepCheckpoint] = None,
        progress: Optional[Callable[[str, ResilientOutcome, bool], None]] = None,
    ) -> Dict[str, ResilientOutcome]:
        """Execute every point; results keyed and ordered as submitted.

        Args:
            points: Point specs; keys must be unique.
            checkpoint: Optional resume store — completed keys are
                loaded, not re-run, and fresh completions are recorded.
            progress: ``progress(key, outcome, resumed)`` per point.

        Returns:
            Mapping of point key to outcome, in the order of ``points``
            regardless of completion order.
        """
        keys = [p.key for p in points]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate point keys in sweep")
        started = time.perf_counter()
        if self.backend_name == "serial" and not self._backend_instance():
            results = self._run_serial(points, checkpoint, progress)
        else:
            results = self._run_dispatch(points, checkpoint, progress)
        if self.telemetry_dir is not None:
            self._write_telemetry(
                points, results, time.perf_counter() - started
            )
        return results

    def _execute_tracked(self, point: Point) -> Any:
        """Serial-path task body: run the point, recording its cache delta."""
        cache = self.cache
        if cache is None:
            return execute_point(point, None)
        before = cache.stats.to_dict()
        try:
            return execute_point(point, cache)
        finally:
            after = cache.stats.to_dict()
            self._point_deltas[point.key] = {
                k: after[k] - before[k]
                for k in ("memory_hits", "disk_hits", "misses", "puts")
            }

    def _run_serial(self, points, checkpoint, progress):
        tasks = {
            p.key: (lambda p=p: self._execute_tracked(p)) for p in points
        }
        before = self.cache.stats.to_dict() if self.cache else None
        previous = framework.set_cache(self.cache)
        try:
            results = resilient_sweep(
                tasks,
                checkpoint=checkpoint,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
                progress=progress,
            )
        finally:
            framework.set_cache(previous)
        if self.cache is not None and before is not None:
            after = self.cache.stats.to_dict()
            self._note_cache_delta(
                {
                    k: after[k] - before[k]
                    for k in ("memory_hits", "disk_hits", "misses", "puts")
                }
            )
        return results

    def _backend_instance(self):
        """Return the backend when one was passed as an instance, else None."""
        if self.backend is not None and not isinstance(self.backend, str):
            return self.backend
        return None

    def _run_dispatch(self, points, checkpoint, progress):
        """Execute the sweep through an executor backend.

        Resumed checkpoint keys are emitted first (as the historical
        parallel path did); the remaining to-do points go to the
        backend, whose serialized ``emit`` calls land results,
        checkpoint records, cache deltas and worker attribution.
        """
        from repro.dist.backend import ExecutionPlan, create_backend

        backend = self._backend_instance() or create_backend(
            self.backend_name
        )
        results: Dict[str, ResilientOutcome] = {}
        todo: List[Point] = []
        for point in points:
            if checkpoint is not None and point.key in checkpoint:
                outcome = checkpoint.get(point.key)
                results[point.key] = outcome
                if progress is not None:
                    progress(point.key, outcome, True)
            else:
                todo.append(point)
        if todo:
            plan = ExecutionPlan(
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
                workers=min(self.workers, len(todo)),
                cache_dir=self.cache_dir,
                cache=self.cache,
                telemetry_dir=self.telemetry_dir,
            )

            def emit(
                key: str,
                outcome_dict: Dict[str, Any],
                delta: Dict[str, int],
                worker_id: str,
            ) -> None:
                outcome = ResilientOutcome.from_dict(outcome_dict)
                results[key] = outcome
                self._note_cache_delta(delta)
                if delta:
                    self._point_deltas[key] = delta
                self._worker_ids[key] = worker_id
                if checkpoint is not None:
                    checkpoint.record(key, outcome)
                if progress is not None:
                    progress(key, outcome, False)

            backend.execute(todo, plan, emit)
            self.fleet = backend.fleet_summary()
        missing = [p.key for p in todo if p.key not in results]
        if missing:
            raise RuntimeError(
                f"backend {self.backend_name!r} never emitted "
                f"{len(missing)} points (first: {missing[0]!r})"
            )
        return {point.key: results[point.key] for point in points}

    # ------------------------------------------------------------------
    # Telemetry manifests.
    # ------------------------------------------------------------------

    def _write_telemetry(
        self,
        points: Sequence[Point],
        results: Dict[str, ResilientOutcome],
        seconds: float,
    ) -> None:
        """Write one per-point manifest plus the sweep rollup."""
        from repro.obs.manifest import RunManifest, write_sweep_manifest

        for point in points:
            outcome = results.get(point.key)
            if outcome is None:
                continue
            seed, fault_plan = _point_provenance(point)
            worker_id = self._worker_ids.get(point.key)
            RunManifest(
                name=point.key,
                config={"runner": point.runner, **point.params},
                seed=seed,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
                ok=outcome.ok,
                cache=self._point_deltas.get(point.key, {}),
                fault_plan=fault_plan,
                extra={"worker_id": worker_id} if worker_id else {},
            ).write(self.telemetry_dir)
        extra: Dict[str, Any] = {
            "ok": sum(1 for o in results.values() if o.ok),
            "failed": sum(1 for o in results.values() if not o.ok),
        }
        if self.fleet:
            extra["fleet"] = dict(self.fleet)
        write_sweep_manifest(
            self.telemetry_dir,
            name="sweep",
            points=len(points),
            config={
                "jobs": self.jobs,
                "timeout": self.timeout,
                "retries": self.retries,
                "cache_dir": self.cache_dir,
                "backend": self.backend_name,
                "workers": self.workers,
            },
            seconds=seconds,
            cache=dict(self.cache_events),
            extra=extra,
        )


def _point_provenance(point: Point):
    """Return the (seed, fault_plan) a point's manifest should record.

    Campaign points carry their spec fields; the per-workload fault seed
    is re-derived exactly as the campaign runner derives it, so the
    manifest pins the randomness that actually fired.
    """
    params = point.params
    seed = params.get("seed")
    fault_plan = None
    spec_fields = params.get("spec_fields")
    if isinstance(spec_fields, dict):
        from repro.faults.campaign import workload_seed

        campaign_seed = int(spec_fields.get("seed", 0))
        seed = campaign_seed
        if "workload" in params and "rate" in params:
            fault_plan = {
                "rate": params["rate"],
                "seed": workload_seed(campaign_seed, str(params["workload"])),
            }
    return seed, fault_plan


# ----------------------------------------------------------------------
# Figure sweeps: enumerate the (workload, policy, overrides) grid of a
# figure, run it through an engine, seed the figure memos with the
# results, and let the unchanged figure driver assemble its table.  A
# point the grid misses is simply computed serially by the driver — the
# result is identical either way.
# ----------------------------------------------------------------------


def _grid(figure: str, names: Sequence[str]) -> List[Tuple[str, str, Dict[str, Any]]]:
    """(workload, policy, config-overrides) combos one figure sweeps."""
    from repro.experiments.figures import _removal

    combos: List[Tuple[str, str, Dict[str, Any]]] = []

    def add(policy: str, names=names, **overrides: Any) -> None:
        for name in names:
            combos.append((name, policy, dict(overrides)))

    if figure in ("figure3", "figure4"):
        add("profile")
    elif figure == "figure5a":
        for cycles in (None, 50, 200):
            add("profile", removal_cycles=cycles)
    elif figure == "figure5b":
        for occurrences in (1, 8, 16):
            add("profile", removal_cycles=50, removal_occurrences=occurrences)
    elif figure == "figure6":
        for name in names:
            for reassign in (False, True):
                combos.append(
                    (name, "profile",
                     {"removal_cycles": _removal(name), "reassign": reassign})
                )
    elif figure == "figure7a":
        for name in names:
            combos.append((name, "profile", {"removal_cycles": _removal(name)}))
    elif figure == "figure7b":
        for name in names:
            for min_size in (None, 32):
                combos.append(
                    (name, "profile",
                     {"removal_cycles": _removal(name),
                      "min_thread_size": min_size})
                )
    elif figure == "figure8":
        add("profile")
        add("heuristics")
    elif figure == "figure9a":
        for vp in ("stride", "fcm"):
            for policy in ("profile", "heuristics"):
                add(policy, value_predictor=vp)
    elif figure == "figure9b":
        for policy, vp in (
            ("profile", "perfect"),
            ("profile", "stride"),
            ("heuristics", "perfect"),
            ("heuristics", "stride"),
        ):
            add(policy, value_predictor=vp)
    elif figure == "figure10a":
        for vp in ("stride", "fcm"):
            for policy in ("profile-independent", "profile-predictable"):
                add(policy, value_predictor=vp)
    elif figure == "figure10b":
        for policy in ("profile-independent", "profile-predictable", "profile"):
            add(policy, value_predictor="stride")
    elif figure == "figure11":
        for policy in ("profile", "heuristics"):
            for overhead in (0, 8):
                add(policy, value_predictor="stride", init_overhead=overhead)
    elif figure == "figure12":
        for vp, overhead in (("perfect", 0), ("stride", 0), ("stride", 8)):
            for policy in ("profile", "heuristics"):
                add(
                    policy,
                    num_thread_units=4,
                    value_predictor=vp,
                    init_overhead=overhead,
                )
    # figure2 / heuristic_breakdown / profile_input_sensitivity bypass the
    # run memo (pairs-only or direct simulate calls) -> empty grid; the
    # driver runs them in-process.
    seen = set()
    unique: List[Tuple[str, str, Dict[str, Any]]] = []
    for name, policy, overrides in combos:
        fingerprint = (name, policy, tuple(sorted(overrides.items(), key=str)))
        if fingerprint not in seen:
            seen.add(fingerprint)
            unique.append((name, policy, overrides))
    return unique


def _overrides_tag(overrides: Dict[str, Any]) -> str:
    if not overrides:
        return "base"
    return ",".join(f"{k}={v}" for k, v in sorted(overrides.items()))


def figure_points(figure: str, scale: float = 1.0) -> List[Point]:
    """Pickle-safe point specs covering one figure's sweep grid.

    Args:
        figure: Figure driver name (``figure3`` ... ``figure12``).
        scale: Workload size multiplier.

    Returns:
        One :class:`Point` per (workload, policy, configuration) the
        figure consumes; empty for drivers that bypass the run memo.
    """
    if figure not in figures_mod.ALL_FIGURES:
        raise KeyError(
            f"unknown figure {figure!r}; pick from "
            f"{', '.join(figures_mod.ALL_FIGURES)}"
        )
    return [
        Point(
            key=f"{figure}|{name}|{policy}|{_overrides_tag(overrides)}",
            runner="simulate",
            params={
                "name": name,
                "policy": policy,
                "scale": scale,
                "overrides": overrides,
            },
        )
        for name, policy, overrides in _grid(figure, framework.suite(scale))
    ]


def run_figure(
    figure: str,
    scale: float = 1.0,
    engine: Optional[ParallelEngine] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    progress: Optional[Callable[[str, ResilientOutcome, bool], None]] = None,
) -> FigureResult:
    """Reproduce one figure through the parallel engine.

    The figure's grid points run via ``engine`` (parallel, cached,
    checkpointed); successful payloads seed the figure-driver memos, and
    the unchanged driver assembles the :class:`FigureResult`.  Any point
    that failed (or is missing from the grid) is recomputed serially by
    the driver, so the output matches the serial path exactly.

    Args:
        figure: Figure driver name.
        scale: Workload size multiplier.
        engine: Engine to run on (default: serial, uncached).
        checkpoint: Optional resume store for the point sweep.
        progress: Per-point progress callback.

    Returns:
        The figure's :class:`FigureResult`.
    """
    engine = engine or ParallelEngine(jobs=1)
    points = figure_points(figure, scale)
    outcomes = (
        engine.run(points, checkpoint=checkpoint, progress=progress)
        if points
        else {}
    )
    with framework.use_cache(engine.cache):
        for point in points:
            outcome = outcomes.get(point.key)
            if outcome is not None and outcome.ok and isinstance(outcome.value, dict):
                config = EXPERIMENT_CONFIG.with_(**point.params["overrides"])
                figures_mod.seed_run(
                    point.params["name"],
                    point.params["policy"],
                    config,
                    scale,
                    outcome.value,
                )
        return figures_mod.ALL_FIGURES[figure](scale)
