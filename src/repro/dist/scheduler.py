"""Work-stealing scheduler for heterogeneous sweep-point costs.

Sweep points are wildly uneven — a full-scale ``gcc`` simulation costs
an order of magnitude more than ``compress`` — so fixed round-robin
assignment leaves workers idle behind one long tail job.  The scheduler
here is pull-based: tasks are seeded **longest-job-first** (cost priors
come from the per-point ``seconds`` recorded in earlier sweeps'
telemetry manifests, see :class:`CostModel`), and an idle worker
*steals* the next task from the global deque (or, when per-worker
deques were pre-seeded, from the back of the busiest victim's deque).

Every grant is tracked as a **lease** until the worker reports the
result; a worker declared dead (heartbeat silence, socket EOF, or a
blown per-task deadline) has its leased tasks requeued at the *front*
of the global deque — they have waited longest.  Completion is recorded
at most once per key: a late duplicate from a worker that was wrongly
declared dead is counted in ``duplicate_finishes`` and dropped, which
is what makes requeue-on-death exactly-once.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Union

__all__ = ["CostModel", "WorkStealingScheduler"]


@dataclass
class CostModel:
    """Per-point cost priors (expected seconds) for scheduling order.

    Attributes:
        priors: Point key -> expected seconds (from earlier telemetry).
        default_cost: Estimate for a point never seen before; unseen
            points sort *after* known-expensive ones but keep their
            submission order among themselves.
    """

    priors: Dict[str, float] = field(default_factory=dict)
    default_cost: float = 0.0

    @classmethod
    def from_manifests(
        cls, telemetry_dir: Optional[Union[str, Path]]
    ) -> "CostModel":
        """Build cost priors from a telemetry directory's manifests.

        Reads every per-point :class:`~repro.obs.manifest.RunManifest`
        under ``telemetry_dir`` (the sweep rollup is skipped) and uses
        each point's recorded wall-clock ``seconds`` as its prior.

        Args:
            telemetry_dir: Directory ``repro exp --telemetry`` wrote
                (None or a missing directory yields an empty model).

        Returns:
            The populated cost model.
        """
        priors: Dict[str, float] = {}
        if telemetry_dir is not None:
            from repro.obs.manifest import read_manifests

            for stem, manifest in read_manifests(telemetry_dir).items():
                if stem == "sweep.manifest":
                    continue
                name = manifest.get("name")
                seconds = manifest.get("seconds")
                if isinstance(name, str) and isinstance(seconds, (int, float)):
                    priors[name] = float(seconds)
        return cls(priors=priors)

    def estimate(self, key: str) -> float:
        """Return the expected cost in seconds of the point ``key``."""
        return self.priors.get(key, self.default_cost)


class WorkStealingScheduler:
    """Leased, work-stealing task dispatch with exactly-once completion.

    Tasks are any objects with a unique ``key`` attribute (the engine's
    :class:`~repro.experiments.engine.Point`).  When ``workers`` are
    known up front the tasks are dealt into per-worker deques by
    longest-processing-time greedy assignment (each task goes to the
    currently least-loaded worker, in longest-job-first order); a worker
    that drains its own deque steals from the back of the busiest
    victim.  When the fleet joins late (the remote backend), everything
    sits in the global deque in longest-job-first order and every idle
    worker steals from its front.

    All methods are thread-safe: the remote coordinator calls them from
    one handler thread per connection.

    Args:
        tasks: The sweep's task objects; keys must be unique.
        workers: Worker ids known up front (may be empty).
        cost: Cost priors ordering the seeding (None = submission
            order, which a default :class:`CostModel` preserves).
    """

    def __init__(
        self,
        tasks: Sequence[Any],
        workers: Sequence[str] = (),
        cost: Optional[CostModel] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._cost = cost or CostModel()
        self._tasks: Dict[str, Any] = {}
        for task in tasks:
            if task.key in self._tasks:
                raise ValueError(f"duplicate task key {task.key!r}")
            self._tasks[task.key] = task
        order = {task.key: index for index, task in enumerate(tasks)}
        # Longest-job-first; submission order breaks ties so the seeding
        # stays deterministic for equal (or absent) priors.
        seeded = sorted(
            self._tasks,
            key=lambda key: (-self._cost.estimate(key), order[key]),
        )
        self._global: Deque[str] = deque()
        self._queues: Dict[str, Deque[str]] = {}
        self._leases: Dict[str, str] = {}  # key -> worker id
        self._completed: Set[str] = set()
        self.steals: Dict[str, int] = {}
        self.dispatched: Dict[str, int] = {}
        self.requeues = 0
        self.duplicate_finishes = 0
        if workers:
            for worker in workers:
                self._queues[worker] = deque()
                self.steals.setdefault(worker, 0)
                self.dispatched.setdefault(worker, 0)
            loads = {worker: 0.0 for worker in workers}
            for key in seeded:
                target = min(loads, key=lambda w: (loads[w], w))
                self._queues[target].append(key)
                loads[target] += max(self._cost.estimate(key), 1e-9)
        else:
            self._global.extend(seeded)

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def register(self, worker: str) -> None:
        """Register a (possibly late-joining) worker id."""
        with self._lock:
            self._queues.setdefault(worker, deque())
            self.steals.setdefault(worker, 0)
            self.dispatched.setdefault(worker, 0)

    def next_task(self, worker: str) -> Optional[Any]:
        """Grant ``worker`` its next task, stealing when it has none.

        Order of preference: the worker's own deque front, then the
        global deque front, then the *back* of the busiest victim's
        deque (a steal).  The granted task is leased to ``worker`` until
        :meth:`complete` or :meth:`requeue_worker` releases it.

        Args:
            worker: The requesting worker's id.

        Returns:
            The task object, or None when nothing is stealable right
            now (tasks may still be leased elsewhere — see
            :meth:`done`).
        """
        with self._lock:
            self.register(worker)
            own = self._queues[worker]
            key: Optional[str] = None
            if own:
                key = own.popleft()
            elif self._global:
                key = self._global.popleft()
                self.steals[worker] += 1
            else:
                victim = max(
                    (w for w in self._queues if w != worker),
                    key=lambda w: (len(self._queues[w]), w),
                    default=None,
                )
                if victim is not None and self._queues[victim]:
                    key = self._queues[victim].pop()
                    self.steals[worker] += 1
            if key is None:
                return None
            self._leases[key] = worker
            self.dispatched[worker] += 1
            return self._tasks[key]

    # ------------------------------------------------------------------
    # Completion and failure.
    # ------------------------------------------------------------------

    def complete(self, worker: str, key: str) -> bool:
        """Record a finished task; exactly-once.

        Args:
            worker: The reporting worker's id.
            key: The completed task's key.

        Returns:
            True the first time ``key`` completes (the caller should
            commit the result); False for a duplicate finish, which is
            counted in ``duplicate_finishes`` and must be dropped.
        """
        with self._lock:
            if key not in self._tasks:
                return False
            if self._leases.get(key) == worker:
                del self._leases[key]
            if key in self._completed:
                self.duplicate_finishes += 1
                return False
            self._completed.add(key)
            return True

    def requeue_worker(self, worker: str) -> List[str]:
        """Requeue a dead worker's leases at the global deque's front.

        The worker's still-queued (never granted) tasks are moved to the
        back of the global deque so other workers can steal them; only
        the in-flight leases count as requeues.

        Args:
            worker: The worker declared dead.

        Returns:
            The requeued task keys (empty when the worker was idle).
        """
        with self._lock:
            lost = sorted(
                key for key, owner in self._leases.items() if owner == worker
            )
            for key in reversed(lost):
                del self._leases[key]
                self._global.appendleft(key)
                self.requeues += 1
            queued = self._queues.pop(worker, None)
            if queued:
                self._global.extend(queued)
            return lost

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def leases_of(self, worker: str) -> List[str]:
        """Return the keys currently leased to ``worker``."""
        with self._lock:
            return sorted(
                key for key, owner in self._leases.items() if owner == worker
            )

    def pending(self) -> int:
        """Return how many tasks are queued and unleased."""
        with self._lock:
            return len(self._global) + sum(
                len(q) for q in self._queues.values()
            )

    def outstanding(self) -> int:
        """Return how many tasks have not completed yet."""
        with self._lock:
            return len(self._tasks) - len(self._completed)

    def done(self) -> bool:
        """Report sweep completion.

        Returns:
            True once every task has completed exactly once.
        """
        with self._lock:
            return len(self._completed) == len(self._tasks)

    def snapshot(self) -> Dict[str, Any]:
        """Return the scheduler's counters (for fleet telemetry).

        Returns:
            A JSON-able dict: totals, lost count (0 after a completed
            sweep), per-worker dispatch/steal counts, requeues and
            duplicate finishes.
        """
        with self._lock:
            return {
                "tasks": len(self._tasks),
                "completed": len(self._completed),
                "lost": len(self._tasks) - len(self._completed),
                "requeues": self.requeues,
                "duplicate_finishes": self.duplicate_finishes,
                "dispatched": dict(sorted(self.dispatched.items())),
                "steals": dict(sorted(self.steals.items())),
            }
