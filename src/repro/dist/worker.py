"""Remote sweep worker: ``repro worker --connect host:port``.

A worker is one process that dials the coordinator, announces itself
with a ``hello`` frame, and then loops: request a task (``steal``), run
it through the same :func:`~repro.experiments.framework.run_resilient`
discipline local backends use, and report the outcome with a ``result``
frame.  A daemon thread heartbeats on the same channel so the
coordinator can tell a slow worker from a dead one; artifact lookups go
through the :class:`~repro.dist.cache_net.NetworkCache`, so a cold
worker pulls warm blobs instead of rebuilding them.

The worker is deliberately dumb: it holds no queue, no retry state
beyond one point's attempts, and no result history.  Everything durable
lives on the coordinator, which is what makes ``kill -9`` on a worker a
non-event — its leases are requeued and the fleet carries on.
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
import time
from typing import Optional, Tuple

from repro.dist.backend import CACHE_COUNTERS
from repro.dist.cache_net import NetworkCache
from repro.dist.protocol import FrameChannel, ProtocolError
from repro.experiments import framework
from repro.experiments.engine import Point, execute_point
from repro.experiments.framework import run_resilient

__all__ = ["parse_endpoint", "run_worker"]


def parse_endpoint(value: str) -> Tuple[str, int]:
    """Split a ``host:port`` endpoint string.

    Args:
        value: The ``--connect`` argument (e.g. ``127.0.0.1:7341``).

    Returns:
        ``(host, port)``.

    Raises:
        ValueError: When the string is not ``host:port`` with an
            integer port.
    """
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint must be host:port, got {value!r}")
    return host, int(port)


def _heartbeat_loop(
    channel: FrameChannel,
    worker_id: str,
    interval: float,
    stop: threading.Event,
) -> None:
    """Send liveness beacons until stopped or the channel dies.

    Args:
        channel: The worker's frame channel.
        worker_id: This worker's id (echoed in each beacon).
        interval: Seconds between beacons.
        stop: Event ending the loop.
    """
    while not stop.wait(interval):
        try:
            channel.send({"kind": "heartbeat", "worker": worker_id})
        except OSError:
            return


def run_worker(
    connect: str,
    worker_id: Optional[str] = None,
    cache_dir: Optional[str] = None,
    heartbeat: float = 2.0,
    socket_timeout: float = 600.0,
) -> int:
    """Run the worker loop against a coordinator; returns an exit code.

    Args:
        connect: Coordinator endpoint as ``host:port``.
        worker_id: Stable id for telemetry (default ``w-<pid>``).
        cache_dir: Local artifact-cache directory (default: a
            throwaway temporary directory — the network cache pulls
            what it needs).
        heartbeat: Seconds between liveness beacons.
        socket_timeout: Per-recv socket timeout bounding a dead
            coordinator.

    Returns:
        0 after a clean ``shutdown``; 1 when the coordinator vanished
        or the stream desynchronised.
    """
    wid = worker_id or f"w-{os.getpid()}"
    host, port = parse_endpoint(connect)
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError as exc:
        print(f"worker {wid}: cannot connect to {connect}: {exc}")
        return 1
    sock.settimeout(socket_timeout)
    channel = FrameChannel(sock)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(channel, wid, heartbeat, stop),
        daemon=True,
    )
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-worker-cache-")
        cache_dir = tmp.name
    try:
        channel.send({"kind": "hello", "worker": wid, "pid": os.getpid()})
        beat.start()
        cache = NetworkCache(cache_dir, channel)
        framework.set_cache(cache)
        while True:
            reply, _ = channel.request({"kind": "steal", "worker": wid})
            kind = reply.get("kind")
            if kind == "shutdown":
                channel.send({"kind": "goodbye", "worker": wid})
                return 0
            if kind == "idle":
                time.sleep(float(reply.get("delay", 0.05)))
                continue
            if kind != "task":
                raise ProtocolError(f"unexpected reply kind {kind!r}")
            point = Point(
                key=str(reply["key"]),
                runner=str(reply["runner"]),
                params=dict(reply.get("params", {})),
            )
            before = cache.stats.to_dict()
            outcome = run_resilient(
                lambda: execute_point(point, cache),
                timeout=reply.get("timeout"),
                retries=int(reply.get("retries", 2)),
                backoff=float(reply.get("backoff", 0.05)),
            )
            after = cache.stats.to_dict()
            delta = {
                k: int(after[k]) - int(before[k]) for k in CACHE_COUNTERS
            }
            channel.send(
                {
                    "kind": "result",
                    "worker": wid,
                    "key": point.key,
                    "outcome": outcome.to_dict(),
                    "delta": delta,
                    "net": cache.net_stats.to_dict(),
                }
            )
    except (ProtocolError, OSError) as exc:
        print(f"worker {wid}: coordinator lost: {exc}")
        return 1
    finally:
        stop.set()
        framework.set_cache(None)
        channel.close()
        if tmp is not None:
            tmp.cleanup()
