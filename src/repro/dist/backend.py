"""Executor backends: the pluggable engine-execution protocol.

The parallel engine used to be welded to one ``ProcessPoolExecutor``;
this module turns "how do the points actually run" into a protocol.  A
:class:`Backend` receives the *to-do* points (the engine already
filtered checkpoint-resumed keys), an :class:`ExecutionPlan` (timeouts,
retry budget, cache location, worker count), and an *emit* callback; it
must call ``emit(key, outcome_dict, cache_delta, worker_id)`` exactly
once per point, in any order, and may not raise per-point failures —
those travel inside the outcome dict, exactly as
:func:`~repro.experiments.framework.run_resilient` reports them.

Built-in backends:

- ``serial`` — in-process, submission order; the reference behaviour
  every other backend is gated against.
- ``process`` — the historical ``ProcessPoolExecutor`` fan-out,
  bit-identical to the pre-refactor engine.
- ``async-local`` — an asyncio dispatcher over a local process pool,
  scheduling through the work-stealing
  :class:`~repro.dist.scheduler.WorkStealingScheduler`.
- ``remote`` — a socket-connected worker fleet (see
  :mod:`repro.dist.coordinator`; registered lazily to keep import cost
  off the serial path).
"""

from __future__ import annotations

import asyncio
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.cache import ArtifactCache
from repro.experiments import framework
from repro.experiments.engine import Point, execute_point
from repro.experiments.framework import run_resilient

__all__ = [
    "CACHE_COUNTERS",
    "EmitFn",
    "ExecutionPlan",
    "Backend",
    "SerialBackend",
    "ProcessBackend",
    "AsyncLocalBackend",
    "backend_names",
    "create_backend",
]

#: Cache-stats counters aggregated per point (the engine's delta keys).
CACHE_COUNTERS: Tuple[str, ...] = ("memory_hits", "disk_hits", "misses", "puts")

#: ``emit(key, outcome_dict, cache_delta, worker_id)`` — the single
#: result channel every backend reports through.
EmitFn = Callable[[str, Dict[str, Any], Dict[str, int], str], None]


@dataclass
class ExecutionPlan:
    """Everything a backend needs to execute a sweep's to-do points.

    Attributes:
        timeout: Per-point wall-clock limit in seconds (None unbounded).
        retries: Retry budget per point.
        backoff: Base of the exponential retry backoff in seconds.
        workers: Requested degree of parallelism.
        cache_dir: Shared on-disk artifact-cache directory (None
            disables disk caching).
        cache: The caller's live cache instance over ``cache_dir`` (the
            serial backend reuses it so in-process memo state matches
            the historical path; other backends open their own handles).
        telemetry_dir: Telemetry directory of *earlier* sweeps — the
            source of work-stealing cost priors (see
            :meth:`~repro.dist.scheduler.CostModel.from_manifests`).
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    workers: int = 2
    cache_dir: Optional[str] = None
    cache: Optional[ArtifactCache] = None
    telemetry_dir: Optional[str] = None


class Backend(ABC):
    """One way of executing sweep points; see the module docstring.

    Contract: :meth:`execute` calls ``emit`` exactly once per to-do
    point and returns only when every point was emitted; ``emit`` calls
    must be serialised (never concurrent), because the engine updates
    its checkpoint and progress state inside the callback.
    """

    #: Registry name of the backend (e.g. ``"remote"``).
    name: str = "abstract"

    @abstractmethod
    def execute(
        self,
        points: Sequence[Point],
        plan: ExecutionPlan,
        emit: EmitFn,
    ) -> None:
        """Execute every point, reporting each through ``emit``.

        Args:
            points: The to-do points (checkpoint-resumed keys already
                removed by the engine); keys are unique.
            plan: Execution parameters (timeouts, cache, workers).
            emit: Per-point result callback (see :data:`EmitFn`).
        """

    def fleet_summary(self) -> Dict[str, Any]:
        """Return fleet-level counters of the last run (empty if none)."""
        return {}


def _stats_delta(
    before: Optional[Dict[str, Any]], cache: Optional[ArtifactCache]
) -> Dict[str, int]:
    """Return the cache-counter delta since ``before`` (empty if uncached)."""
    if cache is None or before is None:
        return {}
    after = cache.stats.to_dict()
    return {k: int(after[k]) - int(before[k]) for k in CACHE_COUNTERS}


class SerialBackend(Backend):
    """In-process execution in submission order (the reference backend).

    Installs the plan's cache as the active framework cache (so derived
    trace/pair/baseline artifacts memoize exactly as the historical
    serial path did) and runs each point through
    :func:`~repro.experiments.framework.run_resilient`.
    """

    name = "serial"

    def execute(
        self,
        points: Sequence[Point],
        plan: ExecutionPlan,
        emit: EmitFn,
    ) -> None:
        """Run every point in order in the calling process via ``emit``."""
        cache = plan.cache
        if cache is None and plan.cache_dir:
            cache = ArtifactCache(plan.cache_dir)
        previous = framework.set_cache(cache)
        try:
            for point in points:
                before = cache.stats.to_dict() if cache else None
                outcome = run_resilient(
                    lambda point=point: execute_point(point, cache),
                    timeout=plan.timeout,
                    retries=plan.retries,
                    backoff=plan.backoff,
                    jitter_key=point.key,
                )
                emit(
                    point.key,
                    outcome.to_dict(),
                    _stats_delta(before, cache),
                    "serial-0",
                )
        finally:
            framework.set_cache(previous)


# ----------------------------------------------------------------------
# Worker-process plumbing shared by the process/async-local backends.
# Top-level functions: they cross the process boundary by reference.
# ----------------------------------------------------------------------

_worker_cache: Optional[ArtifactCache] = None


def _worker_init(cache_dir: Optional[str]) -> None:
    """Pool initializer: attach the shared artifact cache in the worker."""
    global _worker_cache
    _worker_cache = ArtifactCache(cache_dir) if cache_dir else None
    framework.set_cache(_worker_cache)


def _worker_run(
    point: Point,
    timeout: Optional[float],
    retries: int,
    backoff: float,
) -> Tuple[str, Dict[str, Any], Dict[str, int], str]:
    """Execute one point resiliently in a pool worker.

    Args:
        point: The point spec to run.
        timeout: Per-attempt wall-clock limit in seconds.
        retries: Retry budget.
        backoff: Exponential-backoff base in seconds.

    Returns:
        ``(key, outcome_dict, cache_delta, worker_id)`` so the parent
        can aggregate hit rates and attribute the point to a worker.
    """
    cache = _worker_cache
    before = cache.stats.to_dict() if cache else None
    outcome = run_resilient(
        lambda: execute_point(point, cache),
        timeout=timeout,
        retries=retries,
        backoff=backoff,
    )
    return (
        point.key,
        outcome.to_dict(),
        _stats_delta(before, cache),
        f"pid-{os.getpid()}",
    )


class ProcessBackend(Backend):
    """The historical ``ProcessPoolExecutor`` fan-out, bit-identical.

    Points are all submitted up front; results are emitted in
    completion order, exactly as the pre-refactor engine did.
    """

    name = "process"

    def execute(
        self,
        points: Sequence[Point],
        plan: ExecutionPlan,
        emit: EmitFn,
    ) -> None:
        """Fan the points across a local process pool via ``emit``."""
        if not points:
            return
        with ProcessPoolExecutor(
            max_workers=min(max(plan.workers, 1), len(points)),
            initializer=_worker_init,
            initargs=(plan.cache_dir,),
        ) as pool:
            futures = {
                pool.submit(
                    _worker_run, point, plan.timeout, plan.retries,
                    plan.backoff,
                ): point
                for point in points
            }
            for future in as_completed(futures):
                key, outcome_dict, delta, worker_id = future.result()
                emit(key, outcome_dict, delta, worker_id)


class AsyncLocalBackend(Backend):
    """Asyncio dispatcher over a local pool with work stealing.

    One coroutine per worker slot pulls tasks from the work-stealing
    scheduler (seeded longest-job-first from telemetry cost priors) and
    awaits each execution on a shared process pool — the same dispatch
    discipline the remote fleet uses, without sockets.  After a run,
    :meth:`fleet_summary` exposes the scheduler counters.
    """

    name = "async-local"

    def __init__(self) -> None:
        self._fleet: Dict[str, Any] = {}

    def fleet_summary(self) -> Dict[str, Any]:
        """Return the last run's scheduler counters (steals, dispatch)."""
        return dict(self._fleet)

    def execute(
        self,
        points: Sequence[Point],
        plan: ExecutionPlan,
        emit: EmitFn,
    ) -> None:
        """Drive the points through asyncio worker slots via ``emit``."""
        if not points:
            return
        from repro.dist.scheduler import CostModel, WorkStealingScheduler

        slots = min(max(plan.workers, 1), len(points))
        worker_ids = [f"async-{index}" for index in range(slots)]
        scheduler = WorkStealingScheduler(
            points,
            workers=worker_ids,
            cost=CostModel.from_manifests(plan.telemetry_dir),
        )
        asyncio.run(self._drive(scheduler, worker_ids, plan, emit))
        self._fleet = scheduler.snapshot()

    async def _drive(
        self,
        scheduler: Any,
        worker_ids: Sequence[str],
        plan: ExecutionPlan,
        emit: EmitFn,
    ) -> None:
        """Async body: one pulling coroutine per worker slot."""
        loop = asyncio.get_running_loop()
        with ProcessPoolExecutor(
            max_workers=len(worker_ids),
            initializer=_worker_init,
            initargs=(plan.cache_dir,),
        ) as pool:

            async def slot(worker_id: str) -> None:
                while True:
                    task = scheduler.next_task(worker_id)
                    if task is None:
                        if scheduler.done():
                            return
                        await asyncio.sleep(0.005)
                        continue
                    key, outcome_dict, delta, _pid = (
                        await loop.run_in_executor(
                            pool, _worker_run, task, plan.timeout,
                            plan.retries, plan.backoff,
                        )
                    )
                    if scheduler.complete(worker_id, key):
                        emit(key, outcome_dict, delta, worker_id)

            await asyncio.gather(*(slot(w) for w in worker_ids))


#: Backend registry: name -> zero-argument factory.  ``remote`` is
#: resolved lazily inside :func:`create_backend` so importing this
#: module never pays the socket machinery's import cost.
_FACTORIES: Dict[str, Callable[[], Backend]] = {
    "serial": SerialBackend,
    "process": ProcessBackend,
    "async-local": AsyncLocalBackend,
}


def backend_names() -> Tuple[str, ...]:
    """Return every registered backend name (including ``remote``)."""
    return tuple(_FACTORIES) + ("remote",)


def create_backend(name: str, **options: Any) -> Backend:
    """Instantiate a backend by registry name.

    Args:
        name: One of :func:`backend_names`.
        **options: Backend-specific constructor options (only
            ``remote`` takes any — e.g. ``workers``, ``heartbeat``).

    Returns:
        The backend instance.

    Raises:
        KeyError: For an unknown backend name.
    """
    if name == "remote":
        from repro.dist.coordinator import RemoteBackend

        return RemoteBackend(**options)
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(backend_names())}"
        ) from None
    if options:
        raise TypeError(f"backend {name!r} takes no options")
    return factory()
