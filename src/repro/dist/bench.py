"""Distributed-backend benchmark — the ``BENCH_dist.json`` source.

Measures one figure sweep through every executor backend the engine
offers: the bit-identical ``serial`` reference, the historical
``process`` pool, and ``remote`` worker fleets of each requested size —
the remote legs twice, against a cold and then a warm network-shared
artifact cache, so the report captures both scaling efficiency and how
much the blob-sharing layer buys a cold fleet.  A chaos leg ``kill
-9``-s one worker mid-sweep and requires the sweep to complete with
``lost == 0`` (requeue-on-death exactly-once).

The report's gates: every phase produced an identical figure series,
and the chaos leg lost nothing.  CLI equivalent (CI runs and archives
it)::

    python -m repro bench --dist --skip-parallel --skip-simcore --smoke
"""

from __future__ import annotations

import json
import os
import platform
import signal
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cache import generator_version
from repro.experiments import framework
from repro.experiments.engine import ParallelEngine, run_figure

__all__ = ["run_dist_bench", "write_dist_report"]


def _phase(
    label: str,
    figure: str,
    scale: float,
    engine: ParallelEngine,
    progress: Optional[Callable[[str], None]] = None,
    point_progress: Optional[Callable[..., None]] = None,
) -> Dict[str, Any]:
    """Run one bench phase through ``engine``; returns the phase record.

    Args:
        label: Phase name in the report.
        figure: Figure driver to sweep.
        scale: Workload size multiplier.
        engine: The configured engine (backend already chosen).
        progress: Optional one-line status callback.
        point_progress: Optional per-point callback forwarded to the
            sweep (the chaos leg uses it to time its kill).

    Returns:
        The phase record (seconds, cache counters, fleet summary,
        figure series).
    """
    framework.clear_memos()
    start = time.perf_counter()
    result = run_figure(figure, scale, engine, progress=point_progress)
    seconds = time.perf_counter() - start
    record = {
        "label": label,
        "backend": engine.backend_name,
        "workers": engine.workers,
        "seconds": round(seconds, 4),
        "cache": dict(engine.cache_events),
        "cache_hit_rate": round(engine.cache_hit_rate(), 4),
        "fleet": dict(engine.fleet),
        "series": result.series,
    }
    if progress is not None:
        progress(
            f"{label}: {seconds:.2f}s, hit rate "
            f"{record['cache_hit_rate']:.0%}"
        )
    return record


def _chaos_phase(
    figure: str,
    scale: float,
    cache_dir: str,
    progress: Optional[Callable[[str], None]],
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Kill -9 one worker mid-sweep; the sweep must still drain.

    Args:
        figure: Figure driver to sweep.
        scale: Workload size multiplier.
        cache_dir: Fresh shared-cache directory of the leg.
        progress: Optional one-line status callback.

    Returns:
        ``(phase_record, chaos_gates)`` where the gates dict carries
        ``lost``/``requeues``/``completed``/``killed``.
    """
    from repro.dist.coordinator import RemoteBackend

    backend = RemoteBackend(heartbeat=0.5, heartbeat_timeout=3.0)
    state = {"killed": False}

    def kill_one(key: str, outcome: Any, resumed: bool) -> None:
        if not state["killed"] and backend.processes:
            os.kill(backend.processes[0].pid, signal.SIGKILL)
            state["killed"] = True

    engine = ParallelEngine(
        jobs=2, backend=backend, workers=2, cache_dir=cache_dir
    )
    record = _phase(
        "remote_chaos", figure, scale, engine,
        progress=progress, point_progress=kill_one,
    )
    fleet = record["fleet"]
    gates = {
        "killed": state["killed"],
        "tasks": fleet.get("tasks", 0),
        "completed": fleet.get("completed", 0),
        "lost": fleet.get("lost", 1),
        "requeues": fleet.get("requeues", 0),
        "duplicate_finishes": fleet.get("duplicate_finishes", 0),
    }
    return record, gates


def run_dist_bench(
    figure: str = "figure3",
    scale: float = 0.25,
    fleet_sizes: Sequence[int] = (2, 4),
    skip_chaos: bool = False,
    workdir: Union[str, Path, None] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark the executor backends against one figure sweep.

    Args:
        figure: Figure driver to sweep (default ``figure3``).
        scale: Workload size multiplier.
        fleet_sizes: Remote worker-fleet sizes to measure (each gets a
            cold and a warm shared-cache leg).
        skip_chaos: Skip the kill -9 leg.
        workdir: Scratch directory for per-phase cache dirs (default:
            a temporary directory).
        progress: Optional per-phase status callback.

    Returns:
        The benchmark report: per-phase records, per-fleet scaling
        efficiency and warm speedups, ``equal_results``, chaos gates,
        and the overall ``ok`` flag.
    """
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-dist-bench-")
        workdir = tmp.name
    workdir = Path(workdir)
    try:
        phases: List[Dict[str, Any]] = []
        phases.append(
            _phase(
                "serial", figure, scale,
                ParallelEngine(jobs=1, cache_dir=workdir / "serial"),
                progress,
            )
        )
        phases.append(
            _phase(
                "process", figure, scale,
                ParallelEngine(
                    jobs=2, backend="process",
                    cache_dir=workdir / "process",
                ),
                progress,
            )
        )
        for size in fleet_sizes:
            shared = workdir / f"remote_w{size}"
            for leg in ("cold", "warm"):
                phases.append(
                    _phase(
                        f"remote_w{size}_{leg}", figure, scale,
                        ParallelEngine(
                            jobs=size, backend="remote", workers=size,
                            cache_dir=shared,
                        ),
                        progress,
                    )
                )
        chaos: Dict[str, Any] = {}
        if not skip_chaos:
            record, chaos = _chaos_phase(
                figure, scale, str(workdir / "chaos"), progress
            )
            phases.append(record)
        framework.clear_memos()
    finally:
        if tmp is not None:
            tmp.cleanup()

    serial_seconds = phases[0]["seconds"]
    first_series = phases[0]["series"]
    equal = all(p["series"] == first_series for p in phases)
    scaling: Dict[str, Any] = {}
    by_label = {p["label"]: p for p in phases}
    for size in fleet_sizes:
        cold = by_label[f"remote_w{size}_cold"]["seconds"]
        warm = by_label[f"remote_w{size}_warm"]["seconds"]
        scaling[f"w{size}"] = {
            "speedup_vs_serial": round(serial_seconds / cold, 2)
            if cold else float("inf"),
            "efficiency": round(serial_seconds / (size * cold), 2)
            if cold else float("inf"),
            "warm_speedup": round(cold / warm, 2) if warm else float("inf"),
        }
    ok = equal and (skip_chaos or (
        chaos.get("lost") == 0
        and chaos.get("completed") == chaos.get("tasks")
        and bool(chaos.get("killed"))
    ))
    return {
        "kind": "dist",
        "figure": figure,
        "scale": scale,
        "fleet_sizes": list(fleet_sizes),
        "generator_version": generator_version(),
        "python": platform.python_version(),
        "phases": {
            p["label"]: {k: v for k, v in p.items() if k != "series"}
            for p in phases
        },
        "scaling": scaling,
        "equal_results": equal,
        "chaos": chaos,
        "ok": ok,
    }


def write_dist_report(
    report: Dict[str, Any], path: Union[str, Path] = "BENCH_dist.json"
) -> Path:
    """Write the dist bench report as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path
