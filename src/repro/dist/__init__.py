"""Distributed execution: pluggable backends for the parallel engine.

The package splits "what to run" (the engine's sweep points) from "how
to run it" (a :class:`~repro.dist.backend.Backend`): ``serial`` and
``process`` reproduce the historical engine paths bit-for-bit,
``async-local`` adds work-stealing dispatch over a local pool, and
``remote`` drives a socket-connected worker fleet with a shared
artifact cache.  See ``docs/distributed.md`` for the protocol contract
and the operations runbook.
"""

from repro.dist.backend import (
    Backend,
    ExecutionPlan,
    backend_names,
    create_backend,
)
from repro.dist.cache_net import NetCacheStats, NetworkCache
from repro.dist.protocol import (
    ConnectionClosed,
    FrameChannel,
    ProtocolError,
    blob_digest,
    recv_frame,
    send_frame,
)
from repro.dist.scheduler import CostModel, WorkStealingScheduler
from repro.dist.worker import parse_endpoint, run_worker

__all__ = [
    "Backend",
    "ExecutionPlan",
    "backend_names",
    "create_backend",
    "CostModel",
    "WorkStealingScheduler",
    "NetworkCache",
    "NetCacheStats",
    "FrameChannel",
    "ProtocolError",
    "ConnectionClosed",
    "blob_digest",
    "send_frame",
    "recv_frame",
    "parse_endpoint",
    "run_worker",
]
