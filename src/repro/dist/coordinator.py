"""Sweep coordinator and the ``remote`` backend's worker fleet.

The coordinator is the durable side of the distributed protocol: it
owns the work-stealing scheduler, the shared artifact cache, and the
sweep's results.  Each connected worker gets one handler thread that
answers its frames (``steal`` → ``task``/``idle``/``shutdown``,
``cache_pull`` → ``cache_blob``, ``cache_push`` → ``cache_ok``) and
commits ``result`` frames exactly once through the scheduler's
completion ledger.  A monitor thread watches heartbeats and per-task
deadlines; a worker that goes silent — or whose socket drops, which is
what ``kill -9`` looks like from here — has its leased tasks requeued
at the front of the global deque, and any late duplicate result from a
wrongly-buried worker is counted and dropped.

:class:`RemoteBackend` packages the coordinator for the engine: it
spawns a local fleet of ``repro worker`` subprocesses against an
ephemeral port, waits for the sweep to drain, and reports fleet-level
telemetry (per-worker dispatch/steal counters, task-latency histogram,
cache-channel traffic) through a
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cache import ArtifactCache
from repro.dist.backend import Backend, EmitFn, ExecutionPlan
from repro.dist.protocol import (
    ConnectionClosed,
    FrameChannel,
    ProtocolError,
    blob_digest,
)
from repro.dist.scheduler import CostModel, WorkStealingScheduler
from repro.errors import ExecutionError
from repro.obs.registry import MetricsRegistry

__all__ = ["Coordinator", "RemoteBackend"]

#: Seconds a worker is told to sleep when nothing is stealable yet.
IDLE_DELAY = 0.05


class _WorkerState:
    """Book-keeping of one connected worker."""

    def __init__(self, channel: FrameChannel, pid: Optional[int]) -> None:
        self.channel = channel
        self.pid = pid
        self.last_seen = time.monotonic()
        self.dead = False


class Coordinator:
    """Socket server dispatching one sweep to a worker fleet.

    Args:
        scheduler: The sweep's work-stealing scheduler (tasks seeded).
        cache: Shared artifact cache answering pull/push frames.
        emit: The engine's result callback; called exactly once per
            task, serialised under an internal lock.
        host: Bind address (loopback by default).
        port: Bind port (0 picks an ephemeral one; see :attr:`port`).
        timeout: Per-attempt wall-clock limit forwarded to workers.
        retries: Retry budget forwarded to workers.
        backoff: Backoff base forwarded to workers.
        heartbeat_timeout: Seconds of beacon silence after which a
            *busy* worker is declared dead and its leases requeued.
        grace: Extra seconds on top of the worst-case attempt budget
            before a blown per-task deadline buries the worker.
        registry: Metrics registry for fleet telemetry (a private one
            is created when omitted).
    """

    def __init__(
        self,
        scheduler: WorkStealingScheduler,
        cache: ArtifactCache,
        emit: EmitFn,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        heartbeat_timeout: float = 10.0,
        grace: float = 30.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.scheduler = scheduler
        self.cache = cache
        self._emit = emit
        self._emit_lock = threading.Lock()
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.heartbeat_timeout = heartbeat_timeout
        self.deadline: Optional[float] = (
            timeout * (retries + 1) + grace if timeout else None
        )
        self.registry = registry or MetricsRegistry()
        self._lock = threading.Lock()
        self._workers: Dict[str, _WorkerState] = {}
        self._lease_started: Dict[str, float] = {}
        self._threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start the accept and monitor threads.

        Returns:
            The bound ``(host, port)`` workers should connect to.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.host, self.port

    def stop(self) -> None:
        """Close the listener and every worker socket; join the threads."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - double close
                pass
        with self._lock:
            states = list(self._workers.values())
        for state in states:
            state.channel.close()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def wait(
        self,
        abort: Optional[Any] = None,
        poll: float = 0.05,
        drain: float = 2.0,
    ) -> None:
        """Block until every task completed, then let workers drain.

        Args:
            abort: Optional zero-argument callable run every poll; it
                should raise to abort the wait (e.g. when the whole
                fleet died with work outstanding).
            poll: Seconds between completion checks.
            drain: Seconds to wait after completion for workers to pick
                up their ``shutdown`` reply and say ``goodbye``.
        """
        while not self.scheduler.done():
            if abort is not None:
                abort()
            time.sleep(poll)
        deadline = time.monotonic() + drain
        while self.live_workers() and time.monotonic() < deadline:
            time.sleep(poll)

    def live_workers(self) -> int:
        """Return how many registered workers are currently alive."""
        with self._lock:
            return sum(1 for s in self._workers.values() if not s.dead)

    # ------------------------------------------------------------------
    # Accept / monitor threads.
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        """Accept connections, one handler thread per worker."""
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(600.0)
            thread = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _monitor_loop(self) -> None:
        """Bury workers whose heartbeats stopped or deadlines blew."""
        while not self._stopping.wait(0.2):
            now = time.monotonic()
            with self._lock:
                suspects = [
                    (wid, state)
                    for wid, state in self._workers.items()
                    if not state.dead
                ]
            for wid, state in suspects:
                silent = now - state.last_seen > self.heartbeat_timeout
                blown = False
                if self.deadline is not None:
                    for key in self.scheduler.leases_of(wid):
                        started = self._lease_started.get(key, now)
                        if now - started > self.deadline:
                            blown = True
                            break
                if silent or blown:
                    self._bury(
                        wid, "heartbeat silence" if silent else "deadline"
                    )

    def _bury(self, wid: str, reason: str) -> None:
        """Declare ``wid`` dead once: requeue leases, drop the socket.

        Args:
            wid: The worker id.
            reason: Human-readable cause (for telemetry labels).
        """
        with self._lock:
            state = self._workers.get(wid)
            if state is None or state.dead:
                return
            state.dead = True
        lost = self.scheduler.requeue_worker(wid)
        for key in lost:
            self._lease_started.pop(key, None)
        if lost:
            self.registry.counter(
                "repro_dist_requeues_total",
                "Tasks requeued from dead workers",
            ).inc(len(lost), worker=wid, reason=reason)
        self.registry.gauge(
            "repro_dist_workers", "Live workers in the fleet"
        ).set(self.live_workers())
        state.channel.close()

    # ------------------------------------------------------------------
    # Per-connection handler.
    # ------------------------------------------------------------------

    def _handle(self, conn: socket.socket) -> None:
        """Serve one worker connection until EOF or shutdown."""
        channel = FrameChannel(conn)
        wid: Optional[str] = None
        try:
            while not self._stopping.is_set():
                header, blob = channel.recv()
                kind = header.get("kind")
                if kind == "hello":
                    wid = str(header.get("worker"))
                    self._on_hello(wid, channel, header)
                elif kind == "heartbeat":
                    self._touch(str(header.get("worker")))
                elif kind == "steal":
                    wid = str(header.get("worker"))
                    self._touch(wid)
                    self._on_steal(wid, channel, header)
                elif kind == "result":
                    wid = str(header.get("worker"))
                    self._touch(wid)
                    self._on_result(wid, header)
                elif kind == "cache_pull":
                    self._on_cache_pull(channel, header)
                elif kind == "cache_push":
                    self._on_cache_push(channel, header, blob)
                elif kind == "goodbye":
                    return
                else:
                    raise ProtocolError(f"unexpected frame kind {kind!r}")
        except (ConnectionClosed, ProtocolError, OSError):
            pass
        finally:
            channel.close()
            if wid is not None:
                self._bury(wid, "connection lost")

    def _touch(self, wid: str) -> None:
        """Record liveness for ``wid`` (any frame counts as a beacon)."""
        with self._lock:
            state = self._workers.get(wid)
            if state is not None:
                state.last_seen = time.monotonic()

    def _on_hello(
        self, wid: str, channel: FrameChannel, header: Dict[str, Any]
    ) -> None:
        """Register a newly connected worker."""
        with self._lock:
            self._workers[wid] = _WorkerState(channel, header.get("pid"))
        self.scheduler.register(wid)
        self.registry.gauge(
            "repro_dist_workers", "Live workers in the fleet"
        ).set(self.live_workers())

    def _on_steal(
        self, wid: str, channel: FrameChannel, header: Dict[str, Any]
    ) -> None:
        """Answer a steal request with task, idle, or shutdown."""
        seq = header.get("seq")
        if self.scheduler.done():
            channel.send({"kind": "shutdown", "seq": seq})
            return
        task = self.scheduler.next_task(wid)
        if task is None:
            channel.send({"kind": "idle", "delay": IDLE_DELAY, "seq": seq})
            return
        self._lease_started[task.key] = time.monotonic()
        channel.send(
            {
                "kind": "task",
                "key": task.key,
                "runner": task.runner,
                "params": task.params,
                "timeout": self.timeout,
                "retries": self.retries,
                "backoff": self.backoff,
                "seq": seq,
            }
        )

    def _on_result(self, wid: str, header: Dict[str, Any]) -> None:
        """Commit a result exactly once; count duplicates."""
        key = str(header.get("key"))
        outcome = dict(header.get("outcome") or {})
        if not self.scheduler.complete(wid, key):
            self.registry.counter(
                "repro_dist_duplicate_results_total",
                "Late results from workers already declared dead",
            ).inc(worker=wid)
            return
        self._lease_started.pop(key, None)
        self.registry.counter(
            "repro_dist_tasks_total", "Tasks completed per worker"
        ).inc(worker=wid)
        seconds = outcome.get("seconds")
        if isinstance(seconds, (int, float)):
            self.registry.histogram(
                "repro_dist_task_seconds", "Per-task wall-clock seconds"
            ).observe(float(seconds), worker=wid)
        with self._emit_lock:
            self._emit(key, outcome, dict(header.get("delta") or {}), wid)

    def _on_cache_pull(
        self, channel: FrameChannel, header: Dict[str, Any]
    ) -> None:
        """Serve one shared-cache blob (or a miss) to a worker."""
        kind = str(header.get("cache_kind"))
        key = str(header.get("cache_key"))
        seq = header.get("seq")
        try:
            blob = self.cache.read_blob(kind, key)
        except KeyError:
            blob = None
        if blob is None:
            self.registry.counter(
                "repro_dist_cache_probe_misses_total",
                "Shared-cache pulls that missed",
            ).inc()
            channel.send({"kind": "cache_blob", "hit": False, "seq": seq})
            return
        self.registry.counter(
            "repro_dist_cache_pulls_total", "Shared-cache blobs served"
        ).inc()
        self.registry.counter(
            "repro_dist_cache_bytes_pulled_total",
            "Shared-cache bytes served to workers",
        ).inc(len(blob))
        channel.send(
            {
                "kind": "cache_blob",
                "hit": True,
                "digest": blob_digest(blob),
                "seq": seq,
            },
            blob,
        )

    def _on_cache_push(
        self,
        channel: FrameChannel,
        header: Dict[str, Any],
        blob: Optional[bytes],
    ) -> None:
        """Accept one worker-built blob after verifying its digest."""
        kind = str(header.get("cache_kind"))
        key = str(header.get("cache_key"))
        seq = header.get("seq")
        ok = blob is not None and blob_digest(blob) == header.get("digest")
        if ok and blob is not None:
            try:
                self.cache.write_blob(kind, key, blob)
            except (KeyError, OSError):
                ok = False
        if ok and blob is not None:
            self.registry.counter(
                "repro_dist_cache_pushes_total",
                "Worker-built blobs accepted into the shared cache",
            ).inc()
            self.registry.counter(
                "repro_dist_cache_bytes_pushed_total",
                "Shared-cache bytes received from workers",
            ).inc(len(blob))
        else:
            self.registry.counter(
                "repro_dist_cache_rejects_total",
                "Pushed blobs rejected (digest mismatch or bad kind)",
            ).inc()
        channel.send({"kind": "cache_ok", "ok": ok, "seq": seq})

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Return the fleet summary: scheduler counters + cache traffic.

        Returns:
            A JSON-able dict combining :meth:`WorkStealingScheduler.snapshot`
            with the coordinator-side cache/requeue counters.
        """
        snap = self.scheduler.snapshot()
        counters: Dict[str, float] = {}
        for short, name in (
            ("pulls", "repro_dist_cache_pulls_total"),
            ("pushes", "repro_dist_cache_pushes_total"),
            ("probe_misses", "repro_dist_cache_probe_misses_total"),
            ("rejects", "repro_dist_cache_rejects_total"),
            ("duplicate_results", "repro_dist_duplicate_results_total"),
        ):
            total = 0.0
            if name in self.registry:
                for _labels, value in self.registry.counter(name).samples():
                    total += value
            counters[short] = total
        snap["cache"] = counters
        snap["workers"] = sorted(self._workers)
        return snap


class RemoteBackend(Backend):
    """The ``remote`` backend: coordinator + spawned local worker fleet.

    Args:
        workers: Fleet size override (None uses the plan's ``workers``).
        heartbeat: Worker beacon interval in seconds.
        heartbeat_timeout: Silence after which a busy worker is buried.
        grace: Extra seconds on the per-task deadline.
        spawn: Spawn ``repro worker`` subprocesses (True) or only
            listen for externally started workers (False).
    """

    name = "remote"

    def __init__(
        self,
        workers: Optional[int] = None,
        heartbeat: float = 2.0,
        heartbeat_timeout: float = 10.0,
        grace: float = 30.0,
        spawn: bool = True,
    ) -> None:
        self.workers = workers
        self.heartbeat = heartbeat
        self.heartbeat_timeout = heartbeat_timeout
        self.grace = grace
        self.spawn = spawn
        self.registry = MetricsRegistry()
        #: Worker subprocesses of the active run (chaos tests kill one).
        self.processes: List[subprocess.Popen] = []
        self._fleet: Dict[str, Any] = {}

    def fleet_summary(self) -> Dict[str, Any]:
        """Return the last run's fleet counters (see Coordinator.summary)."""
        return dict(self._fleet)

    def execute(
        self,
        points: Sequence[Any],
        plan: ExecutionPlan,
        emit: EmitFn,
    ) -> None:
        """Run the points on a socket worker fleet via ``emit``.

        Raises:
            ExecutionError: When every spawned worker died with tasks
                still outstanding (the sweep cannot finish).
        """
        if not points:
            return
        fleet_size = max(int(self.workers or plan.workers), 1)
        self.registry = MetricsRegistry()
        scheduler = WorkStealingScheduler(
            points, cost=CostModel.from_manifests(plan.telemetry_dir)
        )
        tmp: Optional[tempfile.TemporaryDirectory] = None
        if plan.cache is not None:
            shared = plan.cache
        elif plan.cache_dir:
            shared = ArtifactCache(plan.cache_dir)
        else:
            tmp = tempfile.TemporaryDirectory(prefix="repro-dist-cache-")
            shared = ArtifactCache(tmp.name)
        coordinator = Coordinator(
            scheduler,
            shared,
            emit,
            timeout=plan.timeout,
            retries=plan.retries,
            backoff=plan.backoff,
            heartbeat_timeout=self.heartbeat_timeout,
            grace=self.grace,
            registry=self.registry,
        )
        host, port = coordinator.start()
        self.processes = []
        try:
            if self.spawn:
                self.processes = [
                    self._spawn_worker(host, port, f"w{index}")
                    for index in range(fleet_size)
                ]
            coordinator.wait(
                abort=lambda: self._check_fleet(coordinator)
            )
        finally:
            coordinator.stop()
            self._reap()
            self._fleet = coordinator.summary()
            if tmp is not None:
                tmp.cleanup()

    def _spawn_worker(
        self, host: str, port: int, wid: str
    ) -> subprocess.Popen:
        """Start one ``repro worker`` subprocess against ``host:port``.

        Args:
            host: Coordinator bind address.
            port: Coordinator bind port.
            wid: The worker's stable id.

        Returns:
            The started process handle.
        """
        import repro

        src = str(os.path.dirname(os.path.dirname(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src + os.pathsep + existing if existing else src
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                f"{host}:{port}",
                "--id",
                wid,
                "--heartbeat",
                str(self.heartbeat),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _check_fleet(self, coordinator: Coordinator) -> None:
        """Abort the wait when the whole spawned fleet is gone.

        Args:
            coordinator: The active coordinator.

        Raises:
            ExecutionError: Every spawned worker exited, none is
                connected, and tasks are still outstanding.
        """
        if not self.spawn or not self.processes:
            return
        all_exited = all(p.poll() is not None for p in self.processes)
        if (
            all_exited
            and coordinator.live_workers() == 0
            and not coordinator.scheduler.done()
        ):
            raise ExecutionError(
                "worker fleet died with "
                f"{coordinator.scheduler.outstanding()} tasks outstanding"
            )

    def _reap(self) -> None:
        """Terminate and collect any still-running worker subprocesses."""
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5.0)
