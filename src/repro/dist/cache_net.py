"""Network-shared artifact cache: probe/pull/push blobs over a channel.

A remote worker starts with a cold (often throwaway) local cache
directory, but the coordinator sits on the sweep's warm shared cache.
:class:`NetworkCache` keeps the local :class:`~repro.cache.ArtifactCache`
as a read/write front and, on a local miss, *pulls* the blob from the
coordinator over the worker's frame channel — verifying the announced
blake2b digest before trusting a byte — and on a local build *pushes*
the fresh blob back so sibling workers (and the next sweep) hit.

This is safe precisely because the cache is content-addressed and its
serialisations canonical: a blob either matches its digest and is
byte-identical to what a local build would have produced, or it is
rejected and rebuilt locally.  Any protocol failure degrades the cache
to local-only — the sweep slows down but never fails because of the
cache channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Union

from repro.cache import ArtifactCache
from repro.cache.store import _MISSING
from repro.dist.protocol import FrameChannel, ProtocolError, blob_digest

__all__ = ["NetCacheStats", "NetworkCache"]


@dataclass
class NetCacheStats:
    """Counters of one worker's cache-channel traffic.

    Attributes:
        pulls: Blobs fetched from the coordinator's shared cache.
        pushes: Freshly built blobs uploaded to the shared cache.
        probe_misses: Pulls the coordinator answered with "not cached".
        rejected: Pulled blobs discarded for a digest mismatch.
        bytes_pulled: Total payload bytes received.
        bytes_pushed: Total payload bytes sent.
    """

    pulls: int = 0
    pushes: int = 0
    probe_misses: int = 0
    rejected: int = 0
    bytes_pulled: int = 0
    bytes_pushed: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Return the flat JSON-friendly counters."""
        return {
            "pulls": self.pulls,
            "pushes": self.pushes,
            "probe_misses": self.probe_misses,
            "rejected": self.rejected,
            "bytes_pulled": self.bytes_pulled,
            "bytes_pushed": self.bytes_pushed,
        }


class NetworkCache(ArtifactCache):
    """An artifact cache whose misses fall through to the coordinator.

    Drop-in for :class:`~repro.cache.ArtifactCache` (the framework's
    ``set_cache`` and the engine's ``execute_point`` both accept it):
    lookups hit the local memory/disk front first; a local miss probes
    the coordinator with a ``cache_pull`` frame and, on a verified hit,
    lands the blob in the local store (the subsequent decode counts as
    a normal ``disk_hit``).  A full miss builds locally, stores, and
    pushes the canonical bytes back with a ``cache_push`` frame.

    Args:
        root: Local cache directory (the fast front).
        channel: The worker's frame channel to the coordinator.
        memory_entries: LRU-front capacity (as the base class).
    """

    def __init__(
        self,
        root: Union[str, Path],
        channel: FrameChannel,
        memory_entries: int = 256,
    ) -> None:
        super().__init__(root, memory_entries=memory_entries)
        self._channel = channel
        self._net_ok = True
        self.net_stats = NetCacheStats()

    def get_or_create(
        self, kind: str, build: Callable[[], Any], **fields: Any
    ) -> Any:
        """Return the artifact, trying local → network → build.

        Args:
            kind: Artifact kind (a codec name).
            build: Zero-argument callable producing the artifact.
            **fields: Every knob that influences the artifact's content.

        Returns:
            The cached, pulled, or freshly built artifact.
        """
        key = self.key(kind, **fields)
        value = self.lookup(kind, key)
        if value is not _MISSING:
            return value
        if self._pull(kind, key):
            value = self.lookup(kind, key)
            if value is not _MISSING:
                return value
        self.stats.misses += 1
        value = build()
        path = self.store(kind, key, value)
        self._push(kind, key, path)
        return value

    # ------------------------------------------------------------------
    # Channel traffic (both degrade to local-only on protocol failure).
    # ------------------------------------------------------------------

    def _pull(self, kind: str, key: str) -> bool:
        """Fetch ``(kind, key)`` from the coordinator into the local store.

        Args:
            kind: Artifact kind.
            key: Content digest.

        Returns:
            True when a digest-verified blob landed locally.
        """
        if not self._net_ok:
            return False
        try:
            reply, blob = self._channel.request(
                {"kind": "cache_pull", "cache_kind": kind, "cache_key": key}
            )
        except (ProtocolError, OSError):
            self._net_ok = False
            return False
        if not reply.get("hit") or blob is None:
            self.net_stats.probe_misses += 1
            return False
        if blob_digest(blob) != reply.get("digest"):
            self.net_stats.rejected += 1
            return False
        self.net_stats.pulls += 1
        self.net_stats.bytes_pulled += len(blob)
        self.write_blob(kind, key, blob)
        return True

    def _push(self, kind: str, key: str, path: Path) -> None:
        """Upload the just-stored blob at ``path`` to the coordinator.

        Args:
            kind: Artifact kind.
            key: Content digest.
            path: The local on-disk artifact written by ``store``.
        """
        if not self._net_ok:
            return
        try:
            blob = path.read_bytes()
            self._channel.request(
                {
                    "kind": "cache_push",
                    "cache_kind": kind,
                    "cache_key": key,
                    "digest": blob_digest(blob),
                },
                blob,
            )
            self.net_stats.pushes += 1
            self.net_stats.bytes_pushed += len(blob)
        except (ProtocolError, OSError):
            self._net_ok = False
