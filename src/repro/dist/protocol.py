"""Length-prefixed frame protocol of the distributed backend.

Every message between a worker and the coordinator is one **frame**: a
4-byte big-endian length, a UTF-8 JSON *header* of that length, and —
when the header carries a ``blob_len`` field — exactly that many raw
bytes of binary *blob* payload.  Headers stay JSON so every frame is
printable and schema-checkable; blobs carry artifact-cache bytes
verbatim (canonical JSON or pickle, exactly as they sit on disk), each
accompanied by its blake2b digest so the receiver can verify integrity
before trusting the bytes.

Frame kinds (the full contract is documented in
``docs/distributed.md``):

==============  =======================================================
kind            meaning
==============  =======================================================
``hello``       worker registration (``worker``, ``pid``)
``steal``       worker requests a task from the global deque
``task``        coordinator grants a task (``key``, ``runner``,
                ``params``, retry policy)
``idle``        nothing stealable right now; retry after ``delay``
``shutdown``    sweep finished — the worker exits its loop
``heartbeat``   worker liveness beacon (no reply)
``result``      completed point (``key``, ``outcome``, ``delta``)
``cache_pull``  probe/pull one blob by ``(cache_kind, cache_key)``
``cache_blob``  pull reply (``hit``, ``digest``, blob)
``cache_push``  upload one freshly built blob (``digest``, blob)
``cache_ok``    push acknowledgement (``ok``)
``goodbye``     clean worker departure
==============  =======================================================

Request/reply pairing uses a monotonically increasing ``seq`` echoed by
the responder, so a worker whose wall-clock alarm interrupted an earlier
exchange can discard the stale reply instead of desynchronising the
stream.
"""

from __future__ import annotations

import hashlib
import json
import signal
import socket
import struct
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "ConnectionClosed",
    "blob_digest",
    "send_frame",
    "recv_frame",
    "FrameChannel",
]

#: Upper bound on a frame's header or blob size — a corrupted length
#: prefix fails fast instead of attempting a multi-gigabyte allocation.
MAX_FRAME = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized, or unreadable frame."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF mid-stream or between frames)."""


def blob_digest(blob: bytes) -> str:
    """Return the blake2b digest (32 hex chars) of a blob's bytes.

    Args:
        blob: The raw artifact bytes.

    Returns:
        The digest hex string the receiving side verifies on receipt.
    """
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes from ``sock`` or raise.

    Args:
        sock: The connected socket.
        count: Number of bytes to read.

    Returns:
        The bytes read.

    Raises:
        ConnectionClosed: On EOF before ``count`` bytes arrived.
        ProtocolError: On a socket timeout mid-frame.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise ProtocolError("socket timed out mid-frame") from exc
        if not chunk:
            raise ConnectionClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(
    sock: socket.socket,
    header: Dict[str, Any],
    blob: Optional[bytes] = None,
) -> None:
    """Serialise and send one frame (header JSON plus optional blob).

    The frame is assembled into a single buffer and sent with one
    ``sendall`` so a concurrent sender (guarded by the channel lock)
    never interleaves bytes.

    Args:
        sock: The connected socket.
        header: JSON-able frame header; ``blob_len`` is filled in
            automatically when ``blob`` is given.
        blob: Optional binary payload following the header.
    """
    payload = dict(header)
    if blob is not None:
        payload["blob_len"] = len(blob)
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(encoded) > MAX_FRAME:
        raise ProtocolError(f"frame header too large ({len(encoded)} bytes)")
    parts = [_LENGTH.pack(len(encoded)), encoded]
    if blob is not None:
        parts.append(blob)
    sock.sendall(b"".join(parts))


def recv_frame(
    sock: socket.socket,
) -> Tuple[Dict[str, Any], Optional[bytes]]:
    """Receive one frame from ``sock``.

    Returns:
        ``(header, blob)`` — ``blob`` is None unless the header carried
        a ``blob_len`` field.

    Raises:
        ConnectionClosed: The peer went away.
        ProtocolError: The frame is malformed or oversized.
    """
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME:
        raise ProtocolError(f"frame header too large ({length} bytes)")
    try:
        header = json.loads(_recv_exact(sock, length).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header is not a JSON object")
    blob: Optional[bytes] = None
    blob_len = header.get("blob_len")
    if blob_len is not None:
        blob_len = int(blob_len)
        if blob_len < 0 or blob_len > MAX_FRAME:
            raise ProtocolError(f"bad blob length {blob_len}")
        blob = _recv_exact(sock, blob_len)
    return header, blob


@contextmanager
def _alarm_masked() -> Iterator[None]:
    """Block ``SIGALRM`` for the duration of the block (main thread).

    A worker's per-attempt wall-clock limit is a ``SIGALRM``; letting it
    fire mid-``sendall``/``recv`` would tear a frame in half and
    desynchronise the stream.  Masking defers the alarm until the
    exchange finished — the socket's own timeout bounds a hung peer.
    """
    can_mask = (
        hasattr(signal, "pthread_sigmask")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_mask:
        yield
        return
    signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    try:
        yield
    finally:
        signal.pthread_sigmask(signal.SIG_UNBLOCK, {signal.SIGALRM})


class FrameChannel:
    """One socket wrapped with a send lock and request/reply pairing.

    The channel is safe for one *reader* thread plus any number of
    *sender* threads (the worker's heartbeat thread sends concurrently
    with the main loop); :meth:`request` tags outgoing frames with a
    ``seq`` the responder echoes, discarding stale replies left over
    from an interrupted earlier exchange.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        self._seq = 0

    def send(
        self, header: Dict[str, Any], blob: Optional[bytes] = None
    ) -> None:
        """Send one frame under the channel's send lock.

        Args:
            header: JSON-able frame header.
            blob: Optional binary payload.
        """
        with self._send_lock:
            send_frame(self.sock, header, blob)

    def recv(self) -> Tuple[Dict[str, Any], Optional[bytes]]:
        """Receive one frame (single-reader only).

        Returns:
            ``(header, blob)`` as :func:`recv_frame`.
        """
        return recv_frame(self.sock)

    def request(
        self, header: Dict[str, Any], blob: Optional[bytes] = None
    ) -> Tuple[Dict[str, Any], Optional[bytes]]:
        """Send a frame and wait for the reply bearing the same ``seq``.

        Replies whose ``seq`` does not match are stale leftovers from an
        exchange a wall-clock alarm interrupted; they are discarded.
        ``SIGALRM`` is masked for the duration so the exchange itself is
        never torn (the socket timeout still bounds a dead peer).

        Args:
            header: JSON-able frame header (``seq`` is filled in).
            blob: Optional binary payload.

        Returns:
            The matching reply as ``(header, blob)``.
        """
        self._seq += 1
        seq = self._seq
        with _alarm_masked():
            self.send({**header, "seq": seq}, blob)
            while True:
                reply, reply_blob = self.recv()
                if reply.get("seq") == seq:
                    return reply, reply_blob

    def close(self) -> None:
        """Close the underlying socket (idempotent, never raises)."""
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass
