"""Functional interpreter producing dynamic traces.

The machine executes a :class:`~repro.isa.program.Program` architecturally
(no timing) and records every retired instruction with operand values,
memory addresses and branch outcomes — the information the profile analysis,
value predictors and the trace-driven SpMT simulator need.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ExecutionError, WorkloadError
from repro.exec.trace import DynInst, Trace
from repro.isa.instructions import Opcode
from repro.isa.program import Program

_MASK = (1 << 32) - 1
_SIGN = 1 << 31

#: Step budget used when the caller does not supply one.
DEFAULT_MAX_STEPS = 2_000_000


def _wrap32(value: int) -> int:
    """Wrap integer results to 32-bit two's complement."""
    value &= _MASK
    return value - (1 << 32) if value & _SIGN else value


class Machine:
    """Architectural state: 64 registers, word-addressed memory, call stack."""

    def __init__(self, program: Program):
        program.validate()
        self.program = program
        self.regs: List = [0] * 64
        self.memory: Dict[int, object] = dict(program.initial_memory)
        self.call_stack: List[int] = []
        self.pc = 0
        self.halted = False

    def _read(self, reg: int):
        return 0 if reg == 0 else self.regs[reg]

    def _write(self, reg: Optional[int], value) -> None:
        if reg is not None and reg != 0:
            if isinstance(value, int):
                value = _wrap32(value)
            self.regs[reg] = value

    def step(self) -> DynInst:
        """Execute one instruction and return its dynamic record."""
        if self.halted:
            raise ExecutionError("machine is halted")
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(f"pc {self.pc} outside program")
        pc = self.pc
        inst = self.program[pc]
        op = inst.op
        # Register 0 is hard-wired to zero (``_write`` never touches it),
        # so the reads need no special case — this is the interpreter's
        # hottest expression at paper-scale trace lengths.
        regs = self.regs
        src_values = tuple([regs[reg] for reg in inst.srcs])
        dst_value = None
        addr = None
        taken: Optional[bool] = None
        next_pc = pc + 1

        if op is Opcode.LI:
            dst_value = inst.imm
        elif op is Opcode.MOV:
            dst_value = src_values[0]
        elif op is Opcode.ADD:
            dst_value = src_values[0] + src_values[1]
        elif op is Opcode.SUB:
            dst_value = src_values[0] - src_values[1]
        elif op is Opcode.AND:
            dst_value = src_values[0] & src_values[1]
        elif op is Opcode.OR:
            dst_value = src_values[0] | src_values[1]
        elif op is Opcode.XOR:
            dst_value = src_values[0] ^ src_values[1]
        elif op is Opcode.SHL:
            dst_value = src_values[0] << (src_values[1] & 31)
        elif op is Opcode.SHR:
            dst_value = (src_values[0] & _MASK) >> (src_values[1] & 31)
        elif op is Opcode.SLT:
            dst_value = int(src_values[0] < src_values[1])
        elif op is Opcode.ADDI:
            dst_value = src_values[0] + inst.imm
        elif op is Opcode.ANDI:
            dst_value = src_values[0] & inst.imm
        elif op is Opcode.ORI:
            dst_value = src_values[0] | inst.imm
        elif op is Opcode.XORI:
            dst_value = src_values[0] ^ inst.imm
        elif op is Opcode.SHLI:
            dst_value = src_values[0] << (inst.imm & 31)
        elif op is Opcode.SHRI:
            dst_value = (src_values[0] & _MASK) >> (inst.imm & 31)
        elif op is Opcode.SLTI:
            dst_value = int(src_values[0] < inst.imm)
        elif op is Opcode.MUL:
            dst_value = src_values[0] * src_values[1]
        elif op is Opcode.DIV:
            dst_value = 0 if src_values[1] == 0 else int(src_values[0] / src_values[1])
        elif op is Opcode.REM:
            dst_value = (
                0
                if src_values[1] == 0
                else src_values[0] - int(src_values[0] / src_values[1]) * src_values[1]
            )
        elif op is Opcode.FADD:
            dst_value = float(src_values[0]) + float(src_values[1])
        elif op is Opcode.FSUB:
            dst_value = float(src_values[0]) - float(src_values[1])
        elif op is Opcode.FMUL:
            dst_value = float(src_values[0]) * float(src_values[1])
        elif op is Opcode.FDIV:
            denom = float(src_values[1])
            dst_value = 0.0 if denom == 0.0 else float(src_values[0]) / denom
        elif op is Opcode.FCVT:
            dst_value = float(src_values[0])
        elif op is Opcode.LOAD:
            addr = int(src_values[0]) + (inst.imm or 0)
            dst_value = self.memory.get(addr, 0)
        elif op is Opcode.STORE:
            addr = int(src_values[1]) + (inst.imm or 0)
            self.memory[addr] = src_values[0]
        elif op is Opcode.BEQ:
            taken = src_values[0] == src_values[1]
        elif op is Opcode.BNE:
            taken = src_values[0] != src_values[1]
        elif op is Opcode.BLT:
            taken = src_values[0] < src_values[1]
        elif op is Opcode.BGE:
            taken = src_values[0] >= src_values[1]
        elif op is Opcode.BEQZ:
            taken = src_values[0] == 0
        elif op is Opcode.BNEZ:
            taken = src_values[0] != 0
        elif op is Opcode.JUMP:
            next_pc = inst.target
        elif op is Opcode.CALL:
            self.call_stack.append(pc + 1)
            next_pc = inst.target
        elif op is Opcode.RET:
            if not self.call_stack:
                raise ExecutionError(f"pc {pc}: return with empty call stack")
            next_pc = self.call_stack.pop()
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        else:  # pragma: no cover - exhaustive over Opcode
            raise ExecutionError(f"unimplemented opcode {op}")

        if taken is not None and taken:
            next_pc = inst.target
        if dst_value is not None:
            self._write(inst.dst, dst_value)
            if inst.dst is not None and inst.dst != 0 and isinstance(dst_value, int):
                dst_value = self.regs[inst.dst]

        self.pc = next_pc
        return DynInst(
            pc=pc,
            op=op,
            dst=inst.dst if dst_value is not None else None,
            dst_value=dst_value,
            srcs=inst.srcs,
            src_values=src_values,
            addr=addr,
            taken=taken,
            next_pc=next_pc,
        )

    def run(self, max_steps: Optional[int] = None) -> Trace:
        """Execute to HALT, returning the dynamic trace.

        Raises :class:`~repro.errors.WorkloadError` if the program does not
        halt within ``max_steps`` (default :data:`DEFAULT_MAX_STEPS`) —
        runaway loops in a workload are a bug, not data.
        """
        if max_steps is None:
            max_steps = DEFAULT_MAX_STEPS
        insts: List[DynInst] = []
        append = insts.append
        step = self.step
        for _ in range(max_steps):
            append(step())
            if self.halted:
                return Trace(self.program, insts)
        raise WorkloadError(
            f"program {self.program.name!r} did not halt",
            workload=self.program.name,
            max_steps=max_steps,
            pc=self.pc,
        )


def run_program(program: Program, max_steps: Optional[int] = None) -> Trace:
    """Convenience wrapper: execute ``program`` from a fresh machine."""
    return Machine(program).run(max_steps=max_steps)
