"""Functional execution of programs into dynamic instruction traces."""

from repro.exec.machine import ExecutionError, Machine, run_program
from repro.exec.trace import DynInst, Trace

__all__ = ["Machine", "run_program", "ExecutionError", "DynInst", "Trace"]
