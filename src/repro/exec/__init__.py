"""Functional execution of programs into dynamic instruction traces."""

from repro.errors import ExecutionError, WorkloadError
from repro.exec.machine import DEFAULT_MAX_STEPS, Machine, run_program
from repro.exec.trace import DynInst, Trace

__all__ = [
    "Machine",
    "run_program",
    "DEFAULT_MAX_STEPS",
    "ExecutionError",
    "WorkloadError",
    "DynInst",
    "Trace",
]
