"""Dynamic instruction traces.

A :class:`Trace` is the interface between the functional front-end and
everything downstream: the profiler, the spawning-policy analyses and the
clustered SpMT timing simulator are all trace-driven, mirroring the paper's
ATOM-based methodology.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import Opcode
from repro.isa.program import Program


class DynInst:
    """One executed instruction.

    ``srcs``/``src_values`` include every register read; ``dst``/``dst_value``
    the register written (if any).  ``addr`` is the word address touched by a
    load or store.  ``taken``/``next_pc`` record the control outcome.
    """

    __slots__ = (
        "pc",
        "op",
        "dst",
        "dst_value",
        "srcs",
        "src_values",
        "addr",
        "taken",
        "next_pc",
    )

    def __init__(
        self,
        pc: int,
        op: Opcode,
        dst: Optional[int],
        dst_value,
        srcs: Tuple[int, ...],
        src_values: Tuple,
        addr: Optional[int],
        taken: Optional[bool],
        next_pc: int,
    ):
        self.pc = pc
        self.op = op
        self.dst = dst
        self.dst_value = dst_value
        self.srcs = srcs
        self.src_values = src_values
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc

    @property
    def is_branch(self) -> bool:
        return self.taken is not None

    @property
    def is_load(self) -> bool:
        return self.op is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is Opcode.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynInst(pc={self.pc}, op={self.op.value})"


class Trace:
    """A complete dynamic execution of a program.

    Provides the two derived views the rest of the system relies on:

    - ``positions_of(pc)``: sorted trace positions where ``pc`` executed,
      used by the SpMT simulator to locate the next occurrence of a CQIP.
    - ``register_deps``/``memory_deps``: for each position, the producing
      position of each register source (and of the loaded value), used for
      dataflow timing and the independence/predictability profiles.
    """

    _columns = None  # lazily built / attached TraceColumns

    def __init__(self, program: Program, insts: List[DynInst]):
        self.program = program
        self.insts = insts
        self._pc_index: Optional[Dict[int, List[int]]] = None
        self._register_deps: Optional[List[Tuple[int, ...]]] = None
        self._memory_deps: Optional[List[int]] = None
        self._register_writes: Optional[Dict[int, Tuple[List[int], List]]] = None

    def __len__(self) -> int:
        return len(self.insts)

    def __getitem__(self, pos: int) -> DynInst:
        return self.insts[pos]

    def __iter__(self):
        return iter(self.insts)

    # ------------------------------------------------------------------
    # pc index.
    # ------------------------------------------------------------------

    @property
    def pc_index(self) -> Dict[int, List[int]]:
        if self._pc_index is None:
            index: Dict[int, List[int]] = {}
            for pos, inst in enumerate(self.insts):
                index.setdefault(inst.pc, []).append(pos)
            self._pc_index = index
        return self._pc_index

    def positions_of(self, pc: int) -> Sequence[int]:
        """All trace positions at which ``pc`` executed (sorted)."""
        return self.pc_index.get(pc, ())

    def next_occurrence(self, pc: int, after: int, before: int) -> Optional[int]:
        """First position of ``pc`` in the open interval (after, before).

        Called once per spawn attempt per candidate pair, so it bisects
        the precomputed per-pc position lists rather than scanning the
        trace linearly.
        """
        positions = self.pc_index.get(pc)
        if not positions:
            return None
        i = bisect.bisect_right(positions, after)
        if i < len(positions) and positions[i] < before:
            return positions[i]
        return None

    # ------------------------------------------------------------------
    # Dataflow dependences.
    # ------------------------------------------------------------------

    def _compute_deps(self) -> None:
        last_reg_write: Dict[int, int] = {}
        last_store: Dict[int, int] = {}
        register_deps: List[Tuple[int, ...]] = []
        memory_deps: List[int] = []
        for pos, inst in enumerate(self.insts):
            register_deps.append(
                tuple(last_reg_write.get(reg, -1) for reg in inst.srcs)
            )
            if inst.op is Opcode.LOAD:
                memory_deps.append(last_store.get(inst.addr, -1))
            else:
                memory_deps.append(-1)
            if inst.dst is not None and inst.dst != 0:
                last_reg_write[inst.dst] = pos
            if inst.op is Opcode.STORE:
                last_store[inst.addr] = pos
        self._register_deps = register_deps
        self._memory_deps = memory_deps

    @property
    def register_deps(self) -> List[Tuple[int, ...]]:
        """Per position: producing position of each register source (-1 if live-in)."""
        if self._register_deps is None:
            self._compute_deps()
        assert self._register_deps is not None
        return self._register_deps

    @property
    def memory_deps(self) -> List[int]:
        """Per position: position of the store feeding this load (-1 if none)."""
        if self._memory_deps is None:
            self._compute_deps()
        assert self._memory_deps is not None
        return self._memory_deps

    # ------------------------------------------------------------------
    # Register state reconstruction (for live-in values).
    # ------------------------------------------------------------------

    def value_of_register_at(self, reg: int, pos: int):
        """Architectural value of ``reg`` just before position ``pos``.

        Backed by the per-register write index, so it is cheap enough for
        the value predictors' spawn-time base values.
        """
        if reg == 0:
            return 0
        positions, values = self.register_writes.get(reg, ((), ()))
        i = bisect.bisect_left(positions, pos)
        if i == 0:
            return 0
        return values[i - 1]

    @property
    def register_writes(self) -> Dict[int, Tuple[List[int], List]]:
        """Per register: (sorted write positions, written values)."""
        if getattr(self, "_register_writes", None) is None:
            writes: Dict[int, Tuple[List[int], List]] = {}
            for pos, inst in enumerate(self.insts):
                if inst.dst is not None and inst.dst != 0:
                    entry = writes.setdefault(inst.dst, ([], []))
                    entry[0].append(pos)
                    entry[1].append(inst.dst_value)
            self._register_writes = writes
        return self._register_writes

    # ------------------------------------------------------------------
    # Columnar view (timing-simulator hot path).
    # ------------------------------------------------------------------

    @property
    def columns(self):
        """Struct-of-arrays view of the trace (see
        :class:`repro.exec.columns.TraceColumns`).

        Built lazily on first access and memoised on the trace; a
        cache-restored copy can be installed with :meth:`attach_columns`
        to skip the build entirely.
        """
        if self._columns is None:
            from repro.exec.columns import TraceColumns

            self._columns = TraceColumns.build(self)
        return self._columns

    def attach_columns(self, columns) -> None:
        """Install a prebuilt (e.g. cache-restored) columnar view.

        The columns must describe this exact trace; a length mismatch is
        rejected outright, deeper mismatches are the caller's contract.
        """
        if len(columns) != len(self.insts):
            raise ValueError(
                f"columns length {len(columns)} != trace length "
                f"{len(self.insts)}"
            )
        self._columns = columns
