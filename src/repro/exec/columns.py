"""Columnar (struct-of-arrays) trace representation.

The timing simulator's hot loop touches a handful of per-instruction
facts — opcode class, latency, control/memory flags, dependence edges —
that the object-per-instruction :class:`~repro.exec.trace.DynInst` view
makes it re-derive on every simulated fetch of every thread.
:class:`TraceColumns` precomputes them once per trace into flat columns
indexed by trace position, so the inner loop of
``ClusteredProcessor._advance`` is all O(1) integer reads with no
attribute lookups, enum hashing or per-instruction allocation.

Columns are deterministic pure functions of the trace, which makes them
safe to persist content-addressed in the artifact cache (kind
``"columns"``) and re-attach to a freshly loaded trace.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, List, Tuple

from repro.isa.instructions import FU_INDEX, Opcode, fu_class, latency_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.exec.trace import Trace

#: Flag bits of the ``flags`` column.
F_BRANCH = 1  #: conditional branch (``DynInst.taken is not None``)
F_TAKEN = 2  #: conditional branch whose recorded outcome is taken
F_UNCOND = 4  #: unconditional transfer (JUMP/CALL/RET) — ends a fetch group
F_LOAD = 8
F_STORE = 16

#: FU ordinal used for both loads and stores.
LDST_INDEX = FU_INDEX[fu_class(Opcode.LOAD)]

_UNCOND_OPS = (Opcode.JUMP, Opcode.CALL, Opcode.RET)

_FIELDS = (
    "pc",
    "flags",
    "fu",
    "lat",
    "addr",
    "mem_dep",
    "dep_pairs",
    "scan_reads",
    "dst_nz",
    "dst_value",
)


class TraceColumns:
    """Struct-of-arrays view of one :class:`~repro.exec.trace.Trace`.

    All columns are indexed by trace position:

    - ``pc``: instruction address (tuple of int).
    - ``flags``: bitmask of ``F_BRANCH``/``F_TAKEN``/``F_UNCOND``/
      ``F_LOAD``/``F_STORE``.
    - ``fu``: functional-unit class ordinal (see
      :data:`repro.isa.instructions.FU_CLASSES`).
    - ``lat``: execution latency (loads still add the cache access on top,
      exactly as ``latency_of``).
    - ``addr``: word address touched by a load/store, -1 otherwise
      (``array('q')``).
    - ``mem_dep``: position of the store feeding this load, -1 if none or
      not a load (``array('q')``; mirrors ``Trace.memory_deps``).
    - ``dep_pairs``: tuple of ``(producer, reg)`` register dependences in
      source order, restricted to recorded producers (``producer >= 0``) —
      the only entries the timing loop acts on.
    - ``scan_reads``: tuple of ``(reg, producer)`` source reads in source
      order with ``reg != 0``, producer possibly -1 — the live-in scan's
      view (it must also see unproduced reads).
    - ``dst_nz``: destination register if written and non-zero, else -1.
    - ``dst_value``: value written by the instruction (None when no
      destination) — read only at producer positions.
    """

    __slots__ = _FIELDS + (
        "length",
        "_livein_index",
        "_livein_windows",
        "_prime_cache",
    )

    def __init__(
        self,
        pc: Tuple[int, ...],
        flags: Tuple[int, ...],
        fu: Tuple[int, ...],
        lat: Tuple[int, ...],
        addr: "array",
        mem_dep: "array",
        dep_pairs: Tuple[Tuple[Tuple[int, int], ...], ...],
        scan_reads: Tuple[Tuple[Tuple[int, int], ...], ...],
        dst_nz: Tuple[int, ...],
        dst_value: List,
    ):
        self.pc = pc
        self.flags = flags
        self.fu = fu
        self.lat = lat
        self.addr = addr
        self.mem_dep = mem_dep
        self.dep_pairs = dep_pairs
        self.scan_reads = scan_reads
        self.dst_nz = dst_nz
        self.dst_value = dst_value
        self.length = len(pc)
        self._livein_index = None
        self._livein_windows: dict = {}
        #: (pair signature, prime params) -> value-predictor training
        #: sequence (see ``ClusteredProcessor._prime_predictor_cols``).
        self._prime_cache: dict = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, trace: "Trace") -> "TraceColumns":
        """Derive the columns from ``trace`` (one linear pass)."""
        insts = trace.insts
        reg_deps = trace.register_deps
        mem_deps = trace.memory_deps
        n = len(insts)
        pc: List[int] = [0] * n
        flags: List[int] = [0] * n
        fu: List[int] = [0] * n
        lat: List[int] = [0] * n
        addr = array("q", bytes(8 * n)) if n else array("q")
        dep_pairs: List[Tuple[Tuple[int, int], ...]] = [()] * n
        scan_reads: List[Tuple[Tuple[int, int], ...]] = [()] * n
        dst_nz: List[int] = [-1] * n
        dst_value: List = [None] * n
        for pos, inst in enumerate(insts):
            op = inst.op
            pc[pos] = inst.pc
            bits = 0
            if inst.taken is not None:
                bits = F_BRANCH | (F_TAKEN if inst.taken else 0)
            elif op in _UNCOND_OPS:
                bits = F_UNCOND
            if op is Opcode.LOAD:
                bits |= F_LOAD
            elif op is Opcode.STORE:
                bits |= F_STORE
            flags[pos] = bits
            fu[pos] = FU_INDEX[fu_class(op)]
            lat[pos] = latency_of(op)
            addr[pos] = inst.addr if inst.addr is not None else -1
            deps = reg_deps[pos]
            if deps:
                srcs = inst.srcs
                dep_pairs[pos] = tuple(
                    (producer, srcs[i])
                    for i, producer in enumerate(deps)
                    if producer >= 0
                )
                scan_reads[pos] = tuple(
                    (reg, deps[i])
                    for i, reg in enumerate(srcs)
                    if reg != 0
                )
            if inst.dst is not None and inst.dst != 0:
                dst_nz[pos] = inst.dst
            dst_value[pos] = inst.dst_value
        return cls(
            pc=tuple(pc),
            flags=tuple(flags),
            fu=tuple(fu),
            lat=tuple(lat),
            addr=addr,
            mem_dep=array("q", mem_deps),
            dep_pairs=tuple(dep_pairs),
            scan_reads=tuple(scan_reads),
            dst_nz=tuple(dst_nz),
            dst_value=dst_value,
        )

    # -- derived indexes ------------------------------------------------

    def livein_index(self):
        """Per-register position index for the oracle live-in scans.

        Returns ``(reads_of, writes_of, used_regs)``: for each register,
        the ascending trace positions where it is read (per
        ``scan_reads``) and written (per ``dst_nz``), plus the ascending
        list of registers with at least one recorded read.  With it, the
        live-in set of a window ``[start, end)`` reduces to two bisects
        per register — whether the first in-window read of ``r`` precedes
        its first in-window write — instead of a scan over the window.
        Built lazily on first use and memoized; derived data, so it is
        not persisted with the columns (``__getstate__`` skips it).
        """
        index = self._livein_index
        if index is None:
            reads_of: List["array"] = [array("q") for _ in range(64)]
            writes_of: List["array"] = [array("q") for _ in range(64)]
            for pos, reads in enumerate(self.scan_reads):
                for reg, _producer in reads:
                    reads_of[reg].append(pos)
            for pos, dst in enumerate(self.dst_nz):
                if dst >= 0:
                    writes_of[dst].append(pos)
            used_regs = tuple(
                reg for reg in range(64) if len(reads_of[reg])
            )
            index = self._livein_index = (reads_of, writes_of, used_regs)
        return index

    def livein_window(self, start: int, end: int):
        """Live-in ``(reg, producer)`` pairs of ``[start, end)``.

        A register is live-in when its first in-window read precedes its
        first in-window write (a read at the writing instruction still
        reads the old value); its producer is the last write strictly
        before ``start`` (-1 if never written).  Pairs come in
        first-read source order, ties broken by operand rank within the
        instruction — the discovery order of a linear window scan, which
        live-in prediction replays into order-sensitive predictor state.
        A pure function of the window, so results are memoized: spawn
        windows repeat heavily across repeated simulations of one trace.
        """
        memo = self._livein_windows
        window = memo.get((start, end))
        if window is not None:
            return window
        reads_of, writes_of, used_regs = self.livein_index()
        scan_reads = self.scan_reads
        last = end - 1
        found = []
        for reg in used_regs:
            positions = reads_of[reg]
            index = bisect_left(positions, start)
            if index == len(positions):
                continue
            first_read = positions[index]
            if first_read > last:
                continue
            writes = writes_of[reg]
            windex = bisect_left(writes, start)
            if windex < len(writes) and first_read > writes[windex]:
                continue
            producer = writes[windex - 1] if windex else -1
            rank = 0
            for i, read in enumerate(scan_reads[first_read]):
                if read[0] == reg:
                    rank = i
                    break
            found.append((first_read, rank, reg, producer))
        found.sort()
        window = tuple((item[2], item[3]) for item in found)
        memo[(start, end)] = window
        return window

    # -- protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in _FIELDS
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    # arrays/lists are unhashable anyway; be explicit.
    __hash__ = None  # type: ignore[assignment]

    def __getstate__(self):
        return tuple(getattr(self, name) for name in _FIELDS)

    def __setstate__(self, state) -> None:
        for name, value in zip(_FIELDS, state):
            setattr(self, name, value)
        self.length = len(self.pc)
        self._livein_index = None
        self._livein_windows = {}
        self._prime_cache = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceColumns(length={self.length})"
