"""Columnar (struct-of-arrays) trace representation.

The timing simulator's hot loop touches a handful of per-instruction
facts — opcode class, latency, control/memory flags, dependence edges —
that the object-per-instruction :class:`~repro.exec.trace.DynInst` view
makes it re-derive on every simulated fetch of every thread.
:class:`TraceColumns` precomputes them once per trace into flat columns
indexed by trace position, so the inner loop of
``ClusteredProcessor._advance`` is all O(1) integer reads with no
attribute lookups, enum hashing or per-instruction allocation.

Columns are deterministic pure functions of the trace, which makes them
safe to persist content-addressed in the artifact cache (kind
``"columns"``) and re-attach to a freshly loaded trace.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, List, Tuple

from repro.isa.instructions import FU_INDEX, Opcode, fu_class, latency_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.exec.trace import Trace

#: Flag bits of the ``flags`` column.
F_BRANCH = 1  #: conditional branch (``DynInst.taken is not None``)
F_TAKEN = 2  #: conditional branch whose recorded outcome is taken
F_UNCOND = 4  #: unconditional transfer (JUMP/CALL/RET) — ends a fetch group
F_LOAD = 8
F_STORE = 16

#: FU ordinal used for both loads and stores.
LDST_INDEX = FU_INDEX[fu_class(Opcode.LOAD)]

_UNCOND_OPS = (Opcode.JUMP, Opcode.CALL, Opcode.RET)

_FIELDS = (
    "pc",
    "flags",
    "fu",
    "lat",
    "addr",
    "mem_dep",
    "dep_pairs",
    "scan_reads",
    "dst_nz",
    "dst_value",
)


class TraceColumns:
    """Struct-of-arrays view of one :class:`~repro.exec.trace.Trace`.

    All columns are indexed by trace position:

    - ``pc``: instruction address (tuple of int).
    - ``flags``: bitmask of ``F_BRANCH``/``F_TAKEN``/``F_UNCOND``/
      ``F_LOAD``/``F_STORE``.
    - ``fu``: functional-unit class ordinal (see
      :data:`repro.isa.instructions.FU_CLASSES`).
    - ``lat``: execution latency (loads still add the cache access on top,
      exactly as ``latency_of``).
    - ``addr``: word address touched by a load/store, -1 otherwise
      (``array('q')``).
    - ``mem_dep``: position of the store feeding this load, -1 if none or
      not a load (``array('q')``; mirrors ``Trace.memory_deps``).
    - ``dep_pairs``: tuple of ``(producer, reg)`` register dependences in
      source order, restricted to recorded producers (``producer >= 0``) —
      the only entries the timing loop acts on.
    - ``scan_reads``: tuple of ``(reg, producer)`` source reads in source
      order with ``reg != 0``, producer possibly -1 — the live-in scan's
      view (it must also see unproduced reads).
    - ``dst_nz``: destination register if written and non-zero, else -1.
    - ``dst_value``: value written by the instruction (None when no
      destination) — read only at producer positions.
    """

    __slots__ = _FIELDS + ("length",)

    def __init__(
        self,
        pc: Tuple[int, ...],
        flags: Tuple[int, ...],
        fu: Tuple[int, ...],
        lat: Tuple[int, ...],
        addr: "array",
        mem_dep: "array",
        dep_pairs: Tuple[Tuple[Tuple[int, int], ...], ...],
        scan_reads: Tuple[Tuple[Tuple[int, int], ...], ...],
        dst_nz: Tuple[int, ...],
        dst_value: List,
    ):
        self.pc = pc
        self.flags = flags
        self.fu = fu
        self.lat = lat
        self.addr = addr
        self.mem_dep = mem_dep
        self.dep_pairs = dep_pairs
        self.scan_reads = scan_reads
        self.dst_nz = dst_nz
        self.dst_value = dst_value
        self.length = len(pc)

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, trace: "Trace") -> "TraceColumns":
        """Derive the columns from ``trace`` (one linear pass)."""
        insts = trace.insts
        reg_deps = trace.register_deps
        mem_deps = trace.memory_deps
        n = len(insts)
        pc: List[int] = [0] * n
        flags: List[int] = [0] * n
        fu: List[int] = [0] * n
        lat: List[int] = [0] * n
        addr = array("q", bytes(8 * n)) if n else array("q")
        dep_pairs: List[Tuple[Tuple[int, int], ...]] = [()] * n
        scan_reads: List[Tuple[Tuple[int, int], ...]] = [()] * n
        dst_nz: List[int] = [-1] * n
        dst_value: List = [None] * n
        for pos, inst in enumerate(insts):
            op = inst.op
            pc[pos] = inst.pc
            bits = 0
            if inst.taken is not None:
                bits = F_BRANCH | (F_TAKEN if inst.taken else 0)
            elif op in _UNCOND_OPS:
                bits = F_UNCOND
            if op is Opcode.LOAD:
                bits |= F_LOAD
            elif op is Opcode.STORE:
                bits |= F_STORE
            flags[pos] = bits
            fu[pos] = FU_INDEX[fu_class(op)]
            lat[pos] = latency_of(op)
            addr[pos] = inst.addr if inst.addr is not None else -1
            deps = reg_deps[pos]
            if deps:
                srcs = inst.srcs
                dep_pairs[pos] = tuple(
                    (producer, srcs[i])
                    for i, producer in enumerate(deps)
                    if producer >= 0
                )
                scan_reads[pos] = tuple(
                    (reg, deps[i])
                    for i, reg in enumerate(srcs)
                    if reg != 0
                )
            if inst.dst is not None and inst.dst != 0:
                dst_nz[pos] = inst.dst
            dst_value[pos] = inst.dst_value
        return cls(
            pc=tuple(pc),
            flags=tuple(flags),
            fu=tuple(fu),
            lat=tuple(lat),
            addr=addr,
            mem_dep=array("q", mem_deps),
            dep_pairs=tuple(dep_pairs),
            scan_reads=tuple(scan_reads),
            dst_nz=tuple(dst_nz),
            dst_value=dst_value,
        )

    # -- protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in _FIELDS
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    # arrays/lists are unhashable anyway; be explicit.
    __hash__ = None  # type: ignore[assignment]

    def __getstate__(self):
        return tuple(getattr(self, name) for name in _FIELDS)

    def __setstate__(self, state) -> None:
        for name, value in zip(_FIELDS, state):
            setattr(self, name, value)
        self.length = len(self.pc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceColumns(length={self.length})"
