"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``workloads``
    List the SpecInt95-analogue suite.
``trace <workload>``
    Execute a workload and print dynamic-trace statistics.
``disasm <workload>``
    Disassemble a workload's program.
``pairs <workload>``
    Run a spawning policy and print (optionally save) the pair table.
``simulate <workload>``
    Simulate the clustered processor and print the stats and speed-up.
``figure <name>``
    Regenerate one figure of the paper (e.g. ``figure3``).
``lint <workload>``
    Run the static workload linter (``repro.analysis.lint``).
``validate-pairs <workload>``
    Statically validate a spawning-pair table against the program.

Exit codes
----------

All commands return 0 on success and 2 on a usage error (argparse).
``lint`` additionally returns 1 when any error-severity diagnostic is
emitted (or any warning under ``--strict``), and ``validate-pairs``
returns 1 when any pair has an error-severity finding — both are safe to
gate CI on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.isa.assembler import disassemble
from repro.isa.instructions import Opcode
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    heuristic_pairs,
    load_pair_set,
    save_pair_set,
    select_profile_pairs,
)
from repro.workloads import build_workload, load_trace, workload_names


def _add_workload_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")


def _profile_config(args) -> ProfilePolicyConfig:
    return ProfilePolicyConfig(
        coverage=args.coverage,
        max_distance=args.max_distance,
        min_distance=args.min_distance,
        ordering=args.ordering,
    )


def _add_policy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", choices=("profile", "heuristics"),
                        default="profile")
    parser.add_argument("--coverage", type=float, default=0.99)
    parser.add_argument("--min-distance", type=float, default=32.0)
    parser.add_argument("--max-distance", type=float, default=4096.0)
    parser.add_argument("--ordering", default="distance",
                        choices=("distance", "independent", "predictable"))


def _build_pairs(trace, args):
    if getattr(args, "load", None):
        return load_pair_set(args.load)
    if args.policy == "heuristics":
        return heuristic_pairs(trace, HeuristicConfig())
    return select_profile_pairs(trace, _profile_config(args))


def cmd_workloads(args) -> int:
    from repro.workloads import SPECINT95

    for name, spec in SPECINT95.items():
        print(f"{name:10s} {spec.description}")
    return 0


def cmd_trace(args) -> int:
    trace = load_trace(args.workload, args.scale)
    branches = sum(1 for d in trace if d.taken is not None)
    taken = sum(1 for d in trace if d.taken)
    loads = sum(1 for d in trace if d.op is Opcode.LOAD)
    stores = sum(1 for d in trace if d.op is Opcode.STORE)
    calls = sum(1 for d in trace if d.op is Opcode.CALL)
    print(f"workload          {args.workload} (scale {args.scale})")
    print(f"dynamic length    {len(trace)}")
    print(f"static length     {len(trace.program)}")
    print(f"branches          {branches} ({taken / max(branches, 1):.0%} taken)")
    print(f"loads / stores    {loads} / {stores}")
    print(f"calls             {calls}")
    print(f"loop heads        {sorted(trace.program.loop_heads())}")
    return 0


def cmd_disasm(args) -> int:
    print(disassemble(build_workload(args.workload, args.scale)), end="")
    return 0


def cmd_pairs(args) -> int:
    trace = load_trace(args.workload, args.scale)
    pairs = _build_pairs(trace, args)
    print(
        f"{pairs.candidates_evaluated} candidates evaluated, "
        f"{len(pairs)} spawning points"
    )
    for pair in sorted(pairs.primary_pairs(), key=lambda p: p.sp_pc):
        print(
            f"  SP {pair.sp_pc:5d} -> CQIP {pair.cqip_pc:5d}  "
            f"P={pair.reach_probability:5.3f}  "
            f"dist={pair.expected_distance:7.1f}  {pair.kind.value}"
        )
    if args.save:
        save_pair_set(pairs, args.save)
        print(f"saved pair table to {args.save}")
    return 0


def cmd_simulate(args) -> int:
    trace = load_trace(args.workload, args.scale)
    pairs = _build_pairs(trace, args)
    config = ProcessorConfig(
        num_thread_units=args.tus,
        value_predictor=args.vp,
        init_overhead=args.init_overhead,
        removal_cycles=args.removal,
        min_thread_size=args.min_thread_size,
    )
    stats = simulate(trace, pairs, config)
    baseline = single_thread_cycles(trace, config)
    for key, value in stats.summary().items():
        print(f"{key:20s} {value}")
    print(f"{'baseline_cycles':20s} {baseline}")
    print(f"{'speedup':20s} {baseline / stats.cycles:.3f}")
    return 0


def cmd_timeline(args) -> int:
    from repro.cmt.gantt import render_gantt

    trace = load_trace(args.workload, args.scale)
    pairs = _build_pairs(trace, args)
    config = ProcessorConfig(
        num_thread_units=args.tus,
        value_predictor=args.vp,
        collect_timeline=True,
    )
    stats = simulate(trace, pairs, config)
    print(
        f"{args.workload}: {stats.cycles} cycles, "
        f"{stats.threads_committed} threads on {args.tus} units"
    )
    print(render_gantt(stats, args.tus, width=args.width))
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import LINT_RULES, lint_program

    if args.list_rules:
        for rule, (severity, doc) in LINT_RULES.items():
            print(f"{rule:24s} {severity.label():7s} {doc}")
        return 0
    if args.workload is None:
        print("lint: a workload is required (or --list-rules)",
              file=sys.stderr)
        return 2
    program = build_workload(args.workload, args.scale)
    try:
        report = lint_program(program, ignore=args.ignore or ())
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    print(f"{program.name}: {report.summary()}")
    for diag in report:
        print(f"  {diag.format()}")
    if report.has_errors():
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def cmd_validate_pairs(args) -> int:
    from repro.analysis import validate_pairs

    trace = load_trace(args.workload, args.scale)
    pairs = _build_pairs(trace, args)
    report = validate_pairs(trace.program, pairs)
    print(f"{args.workload}: {report.summary()}")
    for finding in report:
        print(f"  {finding.format()}")
    return 1 if report.errors() else 0


def cmd_figure(args) -> int:
    from repro.experiments.figures import ALL_FIGURES

    if args.name not in ALL_FIGURES:
        print(f"unknown figure {args.name!r}; pick from "
              f"{', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2
    print(ALL_FIGURES[args.name](args.scale).render())
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thread-spawning schemes for speculative multithreading "
        "(HPCA 2002) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the benchmark suite")

    p = sub.add_parser("trace", help="dynamic-trace statistics")
    _add_workload_arg(p)

    p = sub.add_parser("disasm", help="disassemble a workload")
    _add_workload_arg(p)

    p = sub.add_parser("pairs", help="select and print spawning pairs")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--save", help="write the pair table to a JSON file")

    p = sub.add_parser("simulate", help="run the CSMT simulator")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--load", help="load a pair table instead of selecting")
    p.add_argument("--tus", type=int, default=16, help="thread units")
    p.add_argument("--vp", default="perfect",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    p.add_argument("--init-overhead", type=int, default=0)
    p.add_argument("--removal", type=int, default=None,
                   help="alone-cycles removal threshold")
    p.add_argument("--min-thread-size", type=int, default=None)

    p = sub.add_parser("timeline", help="ASCII Gantt of thread lifetimes")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--tus", type=int, default=8)
    p.add_argument("--vp", default="perfect",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    p.add_argument("--width", type=int, default=100)

    p = sub.add_parser("lint", help="static workload linter")
    p.add_argument("workload", nargs="?", choices=workload_names())
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier (default 1.0)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on warnings as well as errors")
    p.add_argument("--ignore", action="append", metavar="RULE",
                   help="drop a lint rule (repeatable)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")

    p = sub.add_parser("validate-pairs",
                       help="statically validate a spawning-pair table")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--load", help="validate a saved pair table instead")

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name", help="figure2 .. figure12 (a/b variants)")
    p.add_argument("--scale", type=float, default=1.0)
    return parser


_COMMANDS = {
    "workloads": cmd_workloads,
    "trace": cmd_trace,
    "disasm": cmd_disasm,
    "pairs": cmd_pairs,
    "simulate": cmd_simulate,
    "timeline": cmd_timeline,
    "figure": cmd_figure,
    "lint": cmd_lint,
    "validate-pairs": cmd_validate_pairs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
