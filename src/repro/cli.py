"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``workloads``
    List the SpecInt95-analogue suite.
``trace <workload>``
    Execute a workload and print dynamic-trace statistics; with
    ``--out``/``--smoke``, run a traced simulation instead and export
    it as Chrome trace-event JSON (viewable in Perfetto).
``metrics {dump,diff}``
    Dump one run's metrics (Prometheus text, snapshot JSON, or JSONL)
    or diff two snapshot files.
``disasm <workload>``
    Disassemble a workload's program.
``pairs <workload>``
    Run a spawning policy and print (optionally save) the pair table.
``simulate <workload>``
    Simulate the clustered processor and print the stats and speed-up.
``figure <name>``
    Regenerate one figure of the paper (e.g. ``figure3``).
``lint <workload>``
    Run the static workload linter (``repro.analysis.lint``).
``validate-pairs <workload>``
    Statically validate a spawning-pair table against the program.
``analyze-deps <workload>``
    Static memory-dependence analysis of a spawning-pair table: per-pair
    squash-risk reports (``repro.analysis.dependence``).
``sanitize``
    Replay-sanitize traced simulations against the speculation
    invariants (``repro.analysis.sanitizer``) across a workload ×
    policy × predictor grid, plus a fault-injected corruption leg.
``faults``
    Run a fault-injection campaign and print the degradation report.
``exp``
    Reproduce a figure through the parallel engine (``--jobs``,
    ``--backend``, ``--workers``, ``--cache-dir``, ``--checkpoint``,
    ``--telemetry``).
``worker``
    Distributed sweep worker: connect to a coordinator
    (``--connect host:port``) and execute stolen points until the
    sweep drains (see ``docs/distributed.md``).
``cache {stats,clear,warm}``
    Inspect, empty, or pre-populate the on-disk artifact cache.
``bench``
    Benchmark the parallel engine and cache (``BENCH_parallel.json``)
    and the simulator core (``BENCH_simcore.json``); ``--dist`` adds
    the distributed-backend benchmark (``BENCH_dist.json``).
``serve``
    Run the resilient simulation service (crash-safe journaled job
    queue, admission control, HTTP/JSON API); ``--smoke`` runs the CI
    gate, ``--bench`` the load/chaos benchmark (``BENCH_serve.json``).
``dashboard``
    Serve the live web UI over timelines, event streams, metrics and
    sweep manifests (``docs/dashboard.md``); ``--attach`` polls a
    running serve daemon's ``/metrics``, ``--snapshot DIR`` writes a
    static bundle, ``--smoke`` runs the CI gate.
``profile <workload>``
    Per-phase timings (trace build, column build, pair selection,
    simulate, commit check) and cProfile hotspots of one point.

Exit codes
----------

All commands return 0 on success and 2 on a usage error (argparse).
``lint`` additionally returns 1 when any error-severity diagnostic is
emitted (or any warning under ``--strict``; with ``--docstrings`` it is
warn-only unless ``--strict``), ``validate-pairs`` returns 1 when any
pair has an error-severity finding, and ``faults`` returns 1 when a
campaign gate fails — all three are safe to gate CI on.  ``sanitize``
returns 1 when any speculation invariant is violated and
``analyze-deps --strict`` returns 1 when a pair needs synchronisation;
both are CI gates too.  ``bench``
returns 1 when the phases disagree on figure results or a sim-core
gate fails, and ``profile`` returns 1 when a commit invariant is
violated.  ``serve`` returns 1 when a smoke/bench gate fails or a
drain ends with jobs still live, ``dashboard`` returns 1 when a smoke
check or the snapshot's trace validation fails, and ``worker`` returns
1 when the coordinator connection is lost before a clean shutdown.  Structured
simulation/execution failures (timeouts, invariant violations, runaway
workloads) exit 3 with a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.errors import ExecutionError, SimulationError
from repro.isa.assembler import disassemble
from repro.isa.instructions import Opcode
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    heuristic_pairs,
    load_pair_set,
    save_pair_set,
    select_profile_pairs,
)
from repro.workloads import build_workload, load_trace, workload_names


def _add_workload_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="functional-execution step budget (a workload "
                        "that does not halt within it fails fast)")


def _trace_of(args):
    return load_trace(args.workload, args.scale,
                      max_steps=getattr(args, "max_steps", None))


def _profile_config(args) -> ProfilePolicyConfig:
    return ProfilePolicyConfig(
        coverage=args.coverage,
        max_distance=args.max_distance,
        min_distance=args.min_distance,
        ordering=args.ordering,
    )


def _add_policy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", choices=("profile", "heuristics"),
                        default="profile")
    parser.add_argument("--coverage", type=float, default=0.99)
    parser.add_argument("--min-distance", type=float, default=32.0)
    parser.add_argument("--max-distance", type=float, default=4096.0)
    parser.add_argument("--ordering", default="distance",
                        choices=("distance", "independent", "predictable"))


def _build_pairs(trace, args):
    if getattr(args, "load", None):
        return load_pair_set(args.load)
    if args.policy == "heuristics":
        return heuristic_pairs(trace, HeuristicConfig())
    return select_profile_pairs(trace, _profile_config(args))


def cmd_workloads(args) -> int:
    from repro.workloads import SPECINT95

    for name, spec in SPECINT95.items():
        print(f"{name:10s} {spec.description}")
    return 0


def cmd_trace(args) -> int:
    export = args.out or args.metrics or args.smoke or args.telemetry
    if args.workload is None and not args.smoke:
        print("trace: a workload is required (or --smoke)", file=sys.stderr)
        return 2
    workload = args.workload or "compress"
    scale = args.scale if args.scale is not None else (
        0.25 if args.smoke else 1.0
    )
    if not export:
        trace = load_trace(workload, scale, max_steps=args.max_steps)
        branches = sum(1 for d in trace if d.taken is not None)
        taken = sum(1 for d in trace if d.taken)
        loads = sum(1 for d in trace if d.op is Opcode.LOAD)
        stores = sum(1 for d in trace if d.op is Opcode.STORE)
        calls = sum(1 for d in trace if d.op is Opcode.CALL)
        print(f"workload          {workload} (scale {scale})")
        print(f"dynamic length    {len(trace)}")
        print(f"static length     {len(trace.program)}")
        print(f"branches          {branches} "
              f"({taken / max(branches, 1):.0%} taken)")
        print(f"loads / stores    {loads} / {stores}")
        print(f"calls             {calls}")
        print(f"loop heads        {sorted(trace.program.loop_heads())}")
        return 0
    # Export mode: run a fully traced simulation and emit a Chrome
    # trace-event JSON (plus, optionally, a metrics snapshot).
    import json

    from repro.obs import (
        EventTracer,
        MetricsRegistry,
        TimelineModel,
        events_metrics,
        sim_metrics,
        validate_chrome_trace,
    )

    import time

    out_path = args.out or ("trace.json" if args.smoke else None)
    metrics_path = args.metrics or ("metrics.json" if args.smoke else None)
    trace = load_trace(workload, scale, max_steps=args.max_steps)
    pairs = _build_pairs(trace, args)
    config = ProcessorConfig(
        num_thread_units=args.tus,
        value_predictor=args.vp,
        collect_timeline=True,
    )
    tracer = EventTracer()
    started = time.perf_counter()
    stats = simulate(trace, pairs, config, tracer=tracer)
    elapsed = time.perf_counter() - started
    labels = {"workload": workload, "policy": args.policy, "vp": args.vp}
    model = TimelineModel.from_stats(
        stats, args.tus, events=tracer.events,
        meta={**labels, "scale": scale, "tus": args.tus},
    )
    chrome = model.chrome_trace()
    problems = validate_chrome_trace(chrome)
    if problems:
        for problem in problems:
            print(f"trace: schema error: {problem}", file=sys.stderr)
        return 1
    print(
        f"{workload}: {stats.cycles} cycles, {stats.threads_committed} "
        f"threads, {len(tracer)} events "
        f"({len(chrome['traceEvents'])} trace entries, schema OK)"
    )
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(chrome, handle, sort_keys=True)
        print(f"wrote Chrome trace to {out_path} (open in ui.perfetto.dev)")
    if metrics_path:
        registry = MetricsRegistry()
        sim_metrics(stats, registry, **labels)
        events_metrics(tracer.events, registry, **labels)
        with open(metrics_path, "w") as handle:
            json.dump(registry.snapshot().to_dict(), handle,
                      indent=1, sort_keys=True)
        print(f"wrote metrics snapshot to {metrics_path}")
    if args.telemetry:
        # Discoverable layout: trace + events + manifest in one dir the
        # dashboard's find_telemetry-based browser picks up.
        from pathlib import Path

        from repro.obs import RunManifest

        tele = Path(args.telemetry)
        tele.mkdir(parents=True, exist_ok=True)
        (tele / "trace.json").write_text(
            json.dumps(chrome, sort_keys=True) + "\n"
        )
        (tele / "events.jsonl").write_text(tracer.to_jsonl() + "\n")
        RunManifest(
            name=f"trace/{workload}",
            config={
                "workload": workload, "scale": scale,
                "policy": args.policy, "vp": args.vp, "tus": args.tus,
            },
            seconds=elapsed,
            extra={
                "cycles": stats.cycles,
                "threads_committed": stats.threads_committed,
                "events": len(tracer),
            },
        ).write(tele)
        print(f"wrote telemetry (trace + events + manifest) to {tele}")
    return 0


def cmd_metrics(args) -> int:
    import json

    from repro.obs import (
        EventTracer,
        MetricsRegistry,
        MetricsSnapshot,
        events_metrics,
        sim_metrics,
    )

    if args.metrics_cmd == "diff":
        with open(args.before) as handle:
            before = MetricsSnapshot.from_dict(json.load(handle))
        with open(args.after) as handle:
            after = MetricsSnapshot.from_dict(json.load(handle))
        changes = before.diff(after)
        for change in changes:
            delta = change.get("delta")
            suffix = f"  ({delta:+g})" if delta is not None else ""
            print(
                f"{change['key']}: {change['before']} -> "
                f"{change['after']}{suffix}"
            )
        print(f"{len(changes)} sample(s) changed")
        return 1 if changes else 0
    # dump: run one traced simulation and emit its metrics.
    import time

    trace = _trace_of(args)
    pairs = _build_pairs(trace, args)
    config = ProcessorConfig(
        num_thread_units=args.tus, value_predictor=args.vp
    )
    tracer = EventTracer()
    started = time.perf_counter()
    stats = simulate(trace, pairs, config, tracer=tracer)
    elapsed = time.perf_counter() - started
    registry = MetricsRegistry()
    labels = {
        "workload": args.workload, "policy": args.policy, "vp": args.vp
    }
    sim_metrics(stats, registry, **labels)
    events_metrics(tracer.events, registry, **labels)
    if args.format == "prom":
        text = registry.to_prometheus()
    elif args.format == "jsonl":
        text = registry.to_jsonl() + "\n"
    else:
        text = json.dumps(
            registry.snapshot().to_dict(), indent=1, sort_keys=True
        ) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote metrics ({args.format}) to {args.out}")
    else:
        print(text, end="")
    if args.telemetry:
        from pathlib import Path

        from repro.obs import RunManifest

        tele = Path(args.telemetry)
        tele.mkdir(parents=True, exist_ok=True)
        ext = {"prom": "prom", "json": "json", "jsonl": "jsonl"}
        (tele / f"metrics.{ext[args.format]}").write_text(text)
        RunManifest(
            name=f"metrics/{args.workload}",
            config={
                "workload": args.workload, "scale": args.scale,
                "policy": args.policy, "vp": args.vp, "tus": args.tus,
            },
            seconds=elapsed,
            extra={"format": args.format, "events": len(tracer)},
        ).write(tele)
        print(f"wrote telemetry (metrics + manifest) to {tele}")
    return 0


def cmd_disasm(args) -> int:
    print(disassemble(build_workload(args.workload, args.scale)), end="")
    return 0


def cmd_pairs(args) -> int:
    trace = _trace_of(args)
    pairs = _build_pairs(trace, args)
    print(
        f"{pairs.candidates_evaluated} candidates evaluated, "
        f"{len(pairs)} spawning points"
    )
    for pair in sorted(pairs.primary_pairs(), key=lambda p: p.sp_pc):
        print(
            f"  SP {pair.sp_pc:5d} -> CQIP {pair.cqip_pc:5d}  "
            f"P={pair.reach_probability:5.3f}  "
            f"dist={pair.expected_distance:7.1f}  {pair.kind.value}"
        )
    if args.save:
        save_pair_set(pairs, args.save)
        print(f"saved pair table to {args.save}")
    return 0


def cmd_simulate(args) -> int:
    trace = _trace_of(args)
    pairs = _build_pairs(trace, args)
    config = ProcessorConfig(
        num_thread_units=args.tus,
        value_predictor=args.vp,
        init_overhead=args.init_overhead,
        removal_cycles=args.removal,
        min_thread_size=args.min_thread_size,
        cycle_budget=args.cycle_budget,
    )
    injector = None
    if args.fault_rate:
        from repro.faults import FaultInjector, FaultPlan

        injector = FaultInjector(
            FaultPlan.uniform(args.fault_rate, seed=args.fault_seed)
        )
    stats = simulate(trace, pairs, config, injector)
    baseline = single_thread_cycles(trace, config)
    for key, value in stats.summary().items():
        print(f"{key:20s} {value}")
    print(f"{'baseline_cycles':20s} {baseline}")
    print(f"{'speedup':20s} {baseline / stats.cycles:.3f}")
    return 0


def cmd_timeline(args) -> int:
    from repro.cmt.gantt import render_gantt

    trace = _trace_of(args)
    pairs = _build_pairs(trace, args)
    config = ProcessorConfig(
        num_thread_units=args.tus,
        value_predictor=args.vp,
        collect_timeline=True,
    )
    stats = simulate(trace, pairs, config)
    print(
        f"{args.workload}: {stats.cycles} cycles, "
        f"{stats.threads_committed} threads on {args.tus} units"
    )
    print(render_gantt(stats, args.tus, width=args.width))
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import LINT_RULES, lint_program

    if args.list_rules:
        for rule, (severity, doc) in LINT_RULES.items():
            print(f"{rule:24s} {severity.label():7s} {doc}")
        return 0
    if args.docstrings:
        from repro.analysis.docstrings import audit_docstrings

        issues = audit_docstrings()
        for issue in issues:
            print(f"  {issue.format()}")
        warnings = sum(1 for i in issues if i.severity == "warning")
        infos = len(issues) - warnings
        print(f"docstrings: {warnings} warning(s), {infos} info(s)")
        return 1 if args.strict and warnings else 0
    if args.workload is None:
        print("lint: a workload is required (or --list-rules, "
              "--docstrings)", file=sys.stderr)
        return 2
    program = build_workload(args.workload, args.scale)
    try:
        report = lint_program(program, ignore=args.ignore or ())
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    print(f"{program.name}: {report.summary()}")
    for diag in report:
        print(f"  {diag.format()}")
    if report.has_errors():
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def cmd_validate_pairs(args) -> int:
    from repro.analysis import validate_pairs

    trace = _trace_of(args)
    pairs = _build_pairs(trace, args)
    report = validate_pairs(trace.program, pairs)
    print(f"{args.workload}: {report.summary()}")
    for finding in report:
        print(f"  {finding.format()}")
    return 1 if report.errors() else 0


def cmd_analyze_deps(args) -> int:
    from repro.analysis.dependence import analyze_pairs

    trace = _trace_of(args)
    pairs = _build_pairs(trace, args)
    reports = analyze_pairs(trace.program, pairs)
    print(f"{args.workload}: {len(reports)} pair(s) analysed")
    for report in reports.values():
        print(f"  {report.format()}")
    if args.json:
        import json

        payload = {
            "workload": args.workload,
            "pairs": [r.to_dict() for r in reports.values()],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote JSON report to {args.json}")
    sync_pairs = [
        r for r in reports.values() if r.recommended_predictor == "sync"
    ]
    if sync_pairs:
        print(f"{len(sync_pairs)} pair(s) need synchronisation "
              "(memory-carried live-ins)")
    return 1 if args.strict and sync_pairs else 0


def cmd_sanitize(args) -> int:
    from repro.analysis.dependence import DependenceAnalysis
    from repro.analysis.sanitizer import sanitize_run
    from repro.faults import FaultInjector, FaultPlan, LiveinCorruptionFault

    workloads = list(args.workloads or workload_names())
    predictors = ("perfect", "stride", "fcm")
    scale = args.scale
    if args.smoke:
        workloads = list(args.workloads or ("compress", "ijpeg"))
        predictors = ("perfect", "stride")
        scale = min(scale, 0.1)

    corrupt_plan = FaultPlan(
        seed=args.seed,
        livein_corruption=LiveinCorruptionFault(rate=args.fault_rate),
    )
    runs = []
    violations = 0
    for name in workloads:
        trace = load_trace(name, scale)
        analysis = DependenceAnalysis(trace.program)
        for policy in ("profile", "heuristics"):
            if policy == "heuristics":
                pairs = heuristic_pairs(trace, HeuristicConfig())
            else:
                pairs = select_profile_pairs(trace, ProfilePolicyConfig())
            legs = [(vp, None) for vp in predictors]
            legs.append(("stride", FaultInjector(corrupt_plan)))
            for vp, injector in legs:
                config = ProcessorConfig(
                    num_thread_units=args.tus, value_predictor=vp
                )
                stats, report = sanitize_run(
                    trace, pairs, config, injector, analysis=analysis
                )
                violations += len(report.violations)
                label = f"{name}/{policy}/{vp}"
                if injector is not None:
                    label += "+corrupt"
                status = "ok" if report.ok else "FAIL"
                print(f"  {label:36s} {sum(report.checks.values()):6d} checks"
                      f"  {len(report.violations):2d} violation(s)"
                      f"  {report.corruptions_flagged:4d} corruption(s)"
                      f"  {status}")
                for violation in report.violations[:5]:
                    print(f"    {violation.format()}")
                runs.append({
                    "workload": name,
                    "policy": policy,
                    "value_predictor": vp,
                    "faulted": injector is not None,
                    "liveins_corrupted": stats.liveins_corrupted,
                    **report.to_dict(),
                })
    print(f"sanitize: {len(runs)} run(s), {violations} violation(s)")
    if args.report:
        import json

        payload = {
            "ok": violations == 0,
            "scale": scale,
            "seed": args.seed,
            "fault_rate": args.fault_rate,
            "runs": runs,
        }
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote JSON report to {args.report}")
    return 1 if violations else 0


def cmd_faults(args) -> int:
    from repro.experiments.framework import SweepCheckpoint
    from repro.faults.campaign import CampaignSpec, run_campaign

    if args.smoke:
        spec = CampaignSpec.smoke(seed=args.seed)
    else:
        try:
            rates = tuple(
                float(token)
                for token in args.rates.split(",")
                if token.strip() != ""
            )
        except ValueError:
            print(f"faults: bad --rates value {args.rates!r}", file=sys.stderr)
            return 2
        if 0.0 not in rates:
            rates = (0.0,) + rates  # the zero-rate gate is always run
        spec = CampaignSpec(
            workloads=tuple(args.workloads or workload_names()),
            rates=rates,
            seed=args.seed,
            scale=args.scale,
            policy=args.policy,
            thread_units=args.tus,
            timeout=args.timeout,
            retries=args.retries,
        )
    checkpoint = SweepCheckpoint(args.checkpoint) if args.checkpoint else None
    result = run_campaign(
        spec,
        checkpoint=checkpoint,
        crash_keys=tuple(args.inject_crash or ()),
        progress=(lambda line: print(line, file=sys.stderr))
        if args.verbose
        else None,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        telemetry_dir=args.telemetry,
        backend=args.backend,
        workers=args.workers,
    )
    print(result.render())
    if args.report:
        import json

        with open(args.report, "w") as handle:
            json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
        print(f"wrote JSON report to {args.report}")
    return 0 if result.ok else 1


def cmd_figure(args) -> int:
    from repro.experiments.figures import ALL_FIGURES

    if args.name not in ALL_FIGURES:
        print(f"unknown figure {args.name!r}; pick from "
              f"{', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2
    print(ALL_FIGURES[args.name](args.scale).render())
    return 0


def _normalize_figure(token: str) -> str:
    """Map ``8``/``5a``/``figure8`` to the figure-driver name."""
    token = token.strip().lower()
    return token if token.startswith("figure") or not token[:1].isdigit() \
        else f"figure{token}"


def _default_cache_dir() -> str:
    import os

    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def cmd_exp(args) -> int:
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.framework import SweepCheckpoint
    from repro.experiments.engine import ParallelEngine, run_figure

    figure = _normalize_figure(args.fig)
    if figure not in ALL_FIGURES:
        print(f"unknown figure {args.fig!r}; pick from "
              f"{', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2
    engine = ParallelEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        retries=args.retries,
        telemetry_dir=args.telemetry,
        backend=args.backend,
        workers=args.workers,
    )
    checkpoint = SweepCheckpoint(args.checkpoint) if args.checkpoint else None
    progress = None
    if args.verbose:
        def progress(key, outcome, resumed):
            state = ("resumed" if resumed
                     else "ok" if outcome.ok else "FAILED")
            print(f"  {key}: {state}", file=sys.stderr)
    result = run_figure(
        figure, args.scale, engine, checkpoint=checkpoint, progress=progress
    )
    print(result.render())
    if engine.cache is not None:
        events = engine.cache_events
        print(
            f"cache: {events['memory_hits']} memory hits, "
            f"{events['disk_hits']} disk hits, {events['misses']} misses "
            f"({engine.cache_hit_rate():.0%} hit rate)",
            file=sys.stderr,
        )
    if engine.fleet:
        fleet = engine.fleet
        print(
            f"fleet [{engine.backend_name}]: "
            f"{fleet.get('completed', 0)}/{fleet.get('tasks', 0)} tasks, "
            f"lost={fleet.get('lost', 0)}, "
            f"requeues={fleet.get('requeues', 0)}, "
            f"steals={sum(fleet.get('steals', {}).values())}",
            file=sys.stderr,
        )
    return 0


def cmd_cache(args) -> int:
    from repro.cache import ArtifactCache, SCHEMA_VERSION, generator_version

    cache = ArtifactCache(args.cache_dir)
    if args.action == "stats":
        print(f"cache directory   {cache.root}")
        print(f"schema version    {SCHEMA_VERSION}")
        print(f"generator version {generator_version()}")
        total_entries = total_bytes = 0
        for kind, info in sorted(cache.disk_summary().items()):
            print(f"  {kind:10s} {info.entries:5d} entries "
                  f"{info.bytes:12d} bytes")
            total_entries += info.entries
            total_bytes += info.bytes
        print(f"  {'total':10s} {total_entries:5d} entries "
              f"{total_bytes:12d} bytes")
        return 0
    if args.action == "clear":
        removed = cache.clear(args.kind)
        print(f"removed {removed} artifact(s) from {cache.root}")
        return 0
    # warm: derive trace + pair-set artifacts for the whole suite so a
    # following sweep starts from a hot cache.
    from repro.experiments import framework

    with framework.use_cache(cache):
        for name in framework.suite(args.scale):
            framework.trace_for(name, args.scale)
            for policy in ("profile", "heuristics"):
                framework.pair_set_for(name, policy, args.scale)
            if args.verbose:
                print(f"  warmed {name}", file=sys.stderr)
    framework.clear_memos()
    stats = cache.stats
    print(f"warmed {cache.root}: {stats.puts} artifact(s) written, "
          f"{stats.hits} already present")
    return 0


def cmd_bench(args) -> int:
    import tempfile

    from repro.experiments.bench import (
        run_bench,
        run_simcore_bench,
        write_bench_report,
        write_simcore_report,
    )

    figure = _normalize_figure(args.fig)
    scale = 0.2 if args.smoke and args.scale is None else (args.scale or 0.3)
    # The committed sim-core report runs the paper grid at full scale:
    # the speed-up gate only means anything when simulation dominates
    # the fixed per-run costs.
    simcore_scale = (
        0.12 if args.smoke and args.scale is None else (args.scale or 1.0)
    )
    progress = (lambda line: print(line, file=sys.stderr))

    def bench(cache_dir: str):
        parallel = None
        if not args.skip_parallel:
            parallel = run_bench(
                figure=figure,
                scale=scale,
                jobs=args.jobs,
                cache_dir=cache_dir,
                progress=progress,
                backend=args.backend,
            )
        simcore = None
        if not args.skip_simcore:
            simcore = run_simcore_bench(
                scale=simcore_scale,
                cache_dir=cache_dir,
                progress=progress,
                # At smoke scale the fixed per-run costs dominate, so
                # only the correctness/cache gates decide pass/fail.
                enforce_speedup=not args.smoke,
            )
        return parallel, simcore

    ok = True
    if not (args.skip_parallel and args.skip_simcore):
        if args.cache_dir:
            report, simcore = bench(args.cache_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
                report, simcore = bench(tmp)
        if report is not None:
            path = write_bench_report(report, args.out)
            print(f"wrote {path} (equal_results={report['equal_results']}, "
                  f"warm speedup jobs=1 {report['warm_speedup_jobs1']}x, "
                  f"jobs={report['parallel_jobs']} "
                  f"{report['warm_speedup_jobsN']}x)")
            ok = report["equal_results"]
        if simcore is not None:
            simcore_path = write_simcore_report(simcore, args.simcore_out)
            sweep = simcore["sweep"]
            print(
                f"wrote {simcore_path} (equal_results="
                f"{simcore['equal_results']}, cold sweep speedup event "
                f"{sweep['speedup']}x / columnar "
                f"{sweep['speedups']['columnar']}x, warm columns hit rate "
                f"{simcore['columns_cache']['warm_hit_rate']:.0%})"
            )
            ok = ok and simcore["ok"]
    if args.dist:
        from repro.dist.bench import run_dist_bench, write_dist_report

        try:
            fleet_sizes = tuple(
                int(token)
                for token in args.workers.split(",")
                if token.strip() != ""
            )
        except ValueError:
            print(f"bench: bad --workers value {args.workers!r}",
                  file=sys.stderr)
            return 2
        dist = run_dist_bench(
            figure=_normalize_figure(args.dist_fig),
            scale=0.12 if args.smoke else 0.25,
            fleet_sizes=fleet_sizes or ((2,) if args.smoke else (2, 4)),
            skip_chaos=args.skip_chaos,
            progress=progress,
        )
        dist_path = write_dist_report(dist, args.dist_out)
        chaos = dist.get("chaos") or {}
        print(
            f"wrote {dist_path} (equal_results={dist['equal_results']}"
            + (
                f", chaos lost={chaos.get('lost')} "
                f"requeues={chaos.get('requeues')}"
                if chaos else ""
            )
            + ")"
        )
        ok = ok and dist["ok"]
    return 0 if ok else 1


def cmd_serve(args) -> int:
    import tempfile
    from pathlib import Path

    if args.smoke:
        from repro.serve.bench import run_serve_smoke

        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            report = run_serve_smoke(
                Path(tmp) / "state", mode=args.mode
            )
        for check in report["checks"]:
            status = "ok" if check["ok"] else "FAIL"
            detail = (
                f"  ({check['detail']})"
                if check["detail"] and not check["ok"] else ""
            )
            print(f"  {check['name']:20s} {status}{detail}")
        passed = sum(1 for check in report["checks"] if check["ok"])
        print(f"serve smoke: {passed}/{len(report['checks'])} checks, "
              f"{report['jobs']} job(s)")
        return 0 if report["ok"] else 1

    if args.bench:
        from repro.serve.bench import run_serve_bench, write_serve_report

        progress = (lambda line: print(line, file=sys.stderr))

        def bench(workdir: str):
            return run_serve_bench(
                workdir,
                clients=args.clients,
                chaos_jobs=args.chaos_jobs,
                skip_chaos=args.skip_chaos,
                progress=progress,
            )

        if args.workdir:
            report = bench(args.workdir)
        else:
            with tempfile.TemporaryDirectory(
                prefix="repro-serve-bench-"
            ) as tmp:
                report = bench(tmp)
        path = write_serve_report(report, args.out)
        chaos = report.get("chaos", {})
        print(
            f"wrote {path} (cold p99 "
            f"{report['cold']['completion']['p99_ms']}ms, hot submit "
            f"p99 {report['hot']['submit']['p99_ms']}ms, "
            f"all_cached={report['hot']['all_cached']}"
            + (
                f", chaos exactly_once={chaos['exactly_once']}"
                if chaos else ""
            )
            + ")"
        )
        return 0 if report["ok"] else 1

    # Daemon mode: run until a drain (SIGTERM/SIGINT or POST
    # /admin/drain) completes.
    from repro.serve.server import ServeConfig, ServeDaemon

    daemon = ServeDaemon(ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queued=args.max_queued,
        shed_ratio=args.shed_ratio,
        retries=args.retries,
        timeout=args.timeout,
        backoff=args.backoff,
        jitter=args.jitter,
        state_dir=args.state_dir,
        cache_dir=args.cache_dir,
        telemetry_dir=args.telemetry,
        drain_timeout=args.drain_timeout,
        mode=args.mode,
        backend=args.backend,
        fsync=not args.no_fsync,
    ))
    daemon.install_signal_handlers()
    daemon.start()
    host, port = daemon.address
    recovery = daemon.recovery
    print(f"repro serve listening on http://{host}:{port} "
          f"(state {daemon.state_dir})", flush=True)
    if recovery.jobs:
        print(f"recovered {recovery.jobs} job(s) from the journal: "
              f"{recovery.requeued} requeued, {recovery.finished} "
              f"already terminal, {recovery.duplicate_finishes} "
              "duplicate finish(es)", flush=True)
    clean = daemon.wait_drained(None)
    audit = daemon.audit()
    print(f"drained: {audit['terminal']}/{audit['accepted']} job(s) "
          f"terminal, {audit['lost']} live", flush=True)
    return 0 if clean and audit["lost"] == 0 else 1


def cmd_dashboard(args) -> int:
    import time

    from repro.dashboard import (
        DashboardApp,
        DashboardData,
        run_smoke,
        write_snapshot,
    )
    from repro.obs import validate_chrome_trace

    if args.smoke:
        report = run_smoke()
        for check in report["checks"]:
            status = "ok" if check["ok"] else "FAIL"
            detail = (
                f"  ({check['detail']})"
                if check["detail"] and not check["ok"] else ""
            )
            print(f"  {check['name']:20s} {status}{detail}")
        passed = sum(1 for check in report["checks"] if check["ok"])
        print(
            f"dashboard smoke: {passed}/{len(report['checks'])} checks"
        )
        return 0 if report["ok"] else 1

    try:
        data = DashboardData.collect(
            workload=args.workload or "compress",
            scale=args.scale,
            policy=args.policy,
            value_predictor=args.vp,
            thread_units=args.tus,
            max_steps=args.max_steps,
            trace_path=args.trace,
            events_path=args.events,
            telemetry=args.telemetry,
            attach=args.attach,
        )
    except ValueError as exc:
        print(f"dashboard: {exc}", file=sys.stderr)
        return 2

    if args.snapshot:
        written = write_snapshot(data, args.snapshot)
        problems = validate_chrome_trace(data.trace_payload())
        for problem in problems:
            print(f"dashboard: trace schema error: {problem}",
                  file=sys.stderr)
        names = ", ".join(path.name for path in written)
        print(f"wrote snapshot bundle to {args.snapshot} ({names})")
        return 1 if problems else 0

    app = DashboardApp(data, host=args.host, port=args.port)
    app.start()
    telemetry = ", ".join(str(d) for d in data.telemetry) or "none"
    print(f"repro dashboard on {app.url} "
          f"(telemetry: {telemetry})", flush=True)
    if data.attach_url:
        print(f"metrics attached to {data.attach_url}/metrics",
              flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        app.stop()
    return 0


def cmd_worker(args) -> int:
    from repro.dist.worker import run_worker

    try:
        return run_worker(
            args.connect,
            worker_id=args.id,
            cache_dir=args.cache_dir,
            heartbeat=args.heartbeat,
        )
    except ValueError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2


def cmd_profile(args) -> int:
    from repro.experiments.profiler import profile_run

    report = profile_run(
        workload=args.workload,
        scale=args.scale,
        policy=args.policy,
        value_predictor=args.vp,
        sim_core=args.core,
        top=args.top,
        with_profile=not args.no_cprofile,
    )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thread-spawning schemes for speculative multithreading "
        "(HPCA 2002) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the benchmark suite")

    p = sub.add_parser(
        "trace",
        help="dynamic-trace statistics, or a traced simulation exported "
        "as Chrome trace-event JSON (--out/--smoke)",
    )
    p.add_argument("workload", nargs="?", choices=workload_names(),
                   help="workload (optional with --smoke)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload size multiplier (default 1.0; "
                   "0.25 with --smoke)")
    p.add_argument("--max-steps", type=int, default=None,
                   help="functional-execution step budget (a workload "
                   "that does not halt within it fails fast)")
    _add_policy_args(p)
    p.add_argument("--tus", type=int, default=8, help="thread units")
    p.add_argument("--vp", default="stride",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the traced run as Chrome trace-event JSON "
                   "(viewable in ui.perfetto.dev)")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="also write the run's metrics snapshot JSON")
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: small traced run (compress by default), "
                   "schema-validated, writing trace.json + metrics.json")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="also write trace.json + events.jsonl + a run "
                   "manifest into DIR (discoverable by the dashboard's "
                   "manifest browser)")

    p = sub.add_parser(
        "metrics",
        help="metrics registry: dump one run or diff two snapshots",
    )
    msub = p.add_subparsers(dest="metrics_cmd", required=True)
    d = msub.add_parser("dump", help="simulate one point and emit metrics")
    _add_workload_arg(d)
    _add_policy_args(d)
    d.add_argument("--tus", type=int, default=16, help="thread units")
    d.add_argument("--vp", default="stride",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    d.add_argument("--format", choices=("prom", "json", "jsonl"),
                   default="prom",
                   help="Prometheus text, snapshot JSON, or JSON Lines")
    d.add_argument("--out", default=None, metavar="FILE",
                   help="write instead of printing")
    d.add_argument("--telemetry", default=None, metavar="DIR",
                   help="also write the metrics output + a run manifest "
                   "into DIR (discoverable by the dashboard's manifest "
                   "browser)")
    f = msub.add_parser("diff", help="diff two snapshot JSON files")
    f.add_argument("before", help="snapshot JSON (e.g. from 'metrics "
                   "dump --format json')")
    f.add_argument("after", help="snapshot JSON to compare against")

    p = sub.add_parser("disasm", help="disassemble a workload")
    _add_workload_arg(p)

    p = sub.add_parser("pairs", help="select and print spawning pairs")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--save", help="write the pair table to a JSON file")

    p = sub.add_parser("simulate", help="run the CSMT simulator")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--load", help="load a pair table instead of selecting")
    p.add_argument("--tus", type=int, default=16, help="thread units")
    p.add_argument("--vp", default="perfect",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    p.add_argument("--init-overhead", type=int, default=0)
    p.add_argument("--removal", type=int, default=None,
                   help="alone-cycles removal threshold")
    p.add_argument("--min-thread-size", type=int, default=None)
    p.add_argument("--cycle-budget", type=int, default=None,
                   help="abort the simulation past this many cycles")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="uniform fault-injection rate (0 disables)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the fault plan (with --fault-rate)")

    p = sub.add_parser("timeline", help="ASCII Gantt of thread lifetimes")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--tus", type=int, default=8)
    p.add_argument("--vp", default="perfect",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    p.add_argument("--width", type=int, default=100)

    p = sub.add_parser("lint", help="static workload linter")
    p.add_argument("workload", nargs="?", choices=workload_names())
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier (default 1.0)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on warnings as well as errors")
    p.add_argument("--ignore", action="append", metavar="RULE",
                   help="drop a lint rule (repeatable)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.add_argument("--docstrings", action="store_true",
                   help="audit docstrings of the public entry points "
                   "instead of linting a workload (warn-only unless "
                   "--strict)")

    p = sub.add_parser("validate-pairs",
                       help="statically validate a spawning-pair table")
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--load", help="validate a saved pair table instead")

    p = sub.add_parser(
        "analyze-deps",
        help="static memory-dependence analysis of spawning pairs",
    )
    _add_workload_arg(p)
    _add_policy_args(p)
    p.add_argument("--load", help="analyse a saved pair table instead")
    p.add_argument("--json", metavar="FILE",
                   help="write the per-pair reports as JSON")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any pair needs synchronisation "
                   "(memory-carried live-ins)")

    p = sub.add_parser(
        "sanitize",
        help="replay-sanitize simulations against speculation invariants",
    )
    p.add_argument("--workloads", nargs="*", choices=workload_names(),
                   help="workloads to check (default: whole suite, or "
                   "compress+ijpeg with --smoke)")
    p.add_argument("--scale", type=float, default=0.2,
                   help="workload size multiplier (default 0.2)")
    p.add_argument("--tus", type=int, default=8, help="thread units")
    p.add_argument("--seed", type=int, default=2002,
                   help="seed of the corruption fault plan")
    p.add_argument("--fault-rate", type=float, default=0.25,
                   help="live-in corruption rate of the faulted leg")
    p.add_argument("--report", help="write the JSON violations report here")
    p.add_argument("--smoke", action="store_true",
                   help="small fixed grid for CI")

    p = sub.add_parser(
        "faults",
        help="fault-injection campaign with degradation report",
    )
    p.add_argument("--workloads", nargs="*", choices=workload_names(),
                   help="workloads to sweep (default: whole suite)")
    p.add_argument("--rates", default="0,0.01,0.05,0.1",
                   help="comma-separated fault rates (0 is always added)")
    p.add_argument("--seed", type=int, default=2002,
                   help="campaign seed (fully determines every fault)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--policy", choices=("profile", "heuristics"),
                   default="profile")
    p.add_argument("--tus", type=int, default=16, help="thread units")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-run wall-clock limit in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per run")
    p.add_argument("--checkpoint",
                   help="JSON checkpoint file; completed runs are resumed")
    p.add_argument("--report", help="write the JSON degradation report here")
    p.add_argument("--smoke", action="store_true",
                   help="small fixed campaign for CI (overrides sweep args)")
    p.add_argument("--verbose", action="store_true",
                   help="print per-run progress to stderr")
    p.add_argument("--inject-crash", action="append", metavar="KEY",
                   help="crash KEY's first attempt (resilience testing; "
                   "KEY is workload@rate)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes (default 1 = serial)")
    p.add_argument("--cache-dir", default=None,
                   help="artifact-cache directory shared by the workers")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write per-run provenance manifests (config "
                   "digest, fault seed, wall time) plus a campaign "
                   "rollup into DIR")
    p.add_argument("--backend",
                   choices=("serial", "process", "async-local", "remote"),
                   default=None,
                   help="executor backend (default: serial for --jobs 1, "
                   "process otherwise)")
    p.add_argument("--workers", type=int, default=None,
                   help="backend parallelism (default: --jobs)")

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name", help="figure2 .. figure12 (a/b variants)")
    p.add_argument("--scale", type=float, default=1.0)

    p = sub.add_parser(
        "exp",
        help="reproduce a figure through the parallel engine",
    )
    p.add_argument("--fig", required=True,
                   help="figure to reproduce (8 or figure8)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count; 1 = the "
                   "bit-identical serial path)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--cache-dir", default=None,
                   help="on-disk artifact cache shared across runs")
    p.add_argument("--checkpoint",
                   help="JSON checkpoint file; completed points resume")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point wall-clock limit in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per point")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write per-point provenance manifests (config "
                   "digest, seed, cache delta, wall time) plus a sweep "
                   "rollup into DIR")
    p.add_argument("--verbose", action="store_true",
                   help="print per-point progress to stderr")
    p.add_argument("--backend",
                   choices=("serial", "process", "async-local", "remote"),
                   default=None,
                   help="executor backend (default: serial for --jobs 1, "
                   "process otherwise)")
    p.add_argument("--workers", type=int, default=None,
                   help="backend parallelism (default: --jobs; fleet "
                   "size for --backend remote)")

    p = sub.add_parser(
        "worker",
        help="distributed sweep worker: connect to a coordinator and "
        "execute stolen points",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="coordinator endpoint to dial")
    p.add_argument("--id", default=None,
                   help="stable worker id for telemetry (default w-<pid>)")
    p.add_argument("--cache-dir", default=None,
                   help="local artifact-cache directory (default: a "
                   "throwaway temp dir; the shared cache fills it)")
    p.add_argument("--heartbeat", type=float, default=2.0,
                   help="seconds between liveness beacons (default 2)")

    p = sub.add_parser("cache", help="artifact-cache maintenance")
    p.add_argument("action", choices=("stats", "clear", "warm"))
    p.add_argument("--cache-dir", default=_default_cache_dir(),
                   help="cache directory (default: $REPRO_CACHE_DIR or "
                   ".repro-cache)")
    p.add_argument("--kind", default=None,
                   help="restrict 'clear' to one artifact kind")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale to warm (with 'warm')")
    p.add_argument("--verbose", action="store_true",
                   help="print per-workload warm progress to stderr")

    p = sub.add_parser(
        "bench",
        help="benchmark the parallel engine and artifact cache",
    )
    p.add_argument("--fig", default="figure8",
                   help="figure sweep to benchmark (default figure8)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default 0.3; 0.2 with --smoke)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker count of the jobs=N phases "
                   "(default: CPU count)")
    p.add_argument("--smoke", action="store_true",
                   help="small fast benchmark for CI")
    p.add_argument("--out", default="BENCH_parallel.json",
                   help="report path (default BENCH_parallel.json)")
    p.add_argument("--simcore-out", default="BENCH_simcore.json",
                   help="sim-core report path (default BENCH_simcore.json)")
    p.add_argument("--skip-simcore", action="store_true",
                   help="skip the simulator-core benchmark phase")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: a fresh temp dir)")
    p.add_argument("--dist", action="store_true",
                   help="also run the distributed-backend benchmark "
                   "(serial vs process vs remote fleets, cold vs warm "
                   "shared cache, kill -9 chaos leg)")
    p.add_argument("--skip-parallel", action="store_true",
                   help="skip the parallel-engine phase (combine with "
                   "--skip-simcore and --dist for the distributed "
                   "benchmark only)")
    p.add_argument("--dist-fig", default="figure3",
                   help="figure sweep of the --dist benchmark "
                   "(default figure3)")
    p.add_argument("--dist-out", default="BENCH_dist.json",
                   help="--dist report path (default BENCH_dist.json)")
    p.add_argument("--workers", default="",
                   help="comma-separated remote fleet sizes for --dist "
                   "(default 2,4; 2 with --smoke)")
    p.add_argument("--skip-chaos", action="store_true",
                   help="skip the --dist kill -9 chaos leg")
    p.add_argument("--backend",
                   choices=("process", "async-local", "remote"),
                   default=None,
                   help="executor backend of the jobs=N phases "
                   "(default process)")

    p = sub.add_parser(
        "serve",
        help="resilient simulation service (crash-safe job queue, "
        "admission control, HTTP/JSON API)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8642,
                   help="bind port (0 = ephemeral; the bound port is "
                   "advertised in <state-dir>/endpoint.json)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size (default 2)")
    p.add_argument("--state-dir", default=".repro-serve",
                   help="journal + endpoint directory "
                   "(default .repro-serve)")
    p.add_argument("--cache-dir", default=None,
                   help="artifact cache shared with sweeps; identical "
                   "submissions are served from it without re-running")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write per-job provenance manifests into DIR")
    p.add_argument("--max-queued", type=int, default=64,
                   help="admission bound on queued jobs (default 64)")
    p.add_argument("--shed-ratio", type=float, default=0.8,
                   help="queue-pressure fraction shedding low priority")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-attempt wall-clock limit in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="transient-retry budget per job (default 2)")
    p.add_argument("--backoff", type=float, default=0.05,
                   help="retry backoff base in seconds")
    p.add_argument("--jitter", type=float, default=0.5,
                   help="deterministic jitter fraction of the backoff")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds a graceful drain waits for live jobs")
    p.add_argument("--mode", choices=("process", "thread"), default=None,
                   help="worker execution mode (default: process where "
                   "fork exists)")
    p.add_argument("--backend", choices=("process", "thread"), default=None,
                   help="worker-pool backend knob (supersedes --mode "
                   "when both are given)")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip per-record journal fsync (faster, "
                   "weakens crash durability)")
    p.add_argument("--smoke", action="store_true",
                   help="CI gate: exercise one daemon end to end "
                   "(execute/dedup/retry/quarantine/cancel/drain + "
                   "journal recovery) and exit")
    p.add_argument("--bench", action="store_true",
                   help="load + chaos benchmark writing BENCH_serve.json")
    p.add_argument("--out", default="BENCH_serve.json",
                   help="bench report path (default BENCH_serve.json)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent bench clients (default 4)")
    p.add_argument("--chaos-jobs", type=int, default=12,
                   help="jobs in flight when the chaos leg kills the "
                   "daemon (default 12)")
    p.add_argument("--skip-chaos", action="store_true",
                   help="skip the kill -9 / restart bench leg")
    p.add_argument("--workdir", default=None,
                   help="bench scratch directory (default: temp dir)")

    p = sub.add_parser(
        "dashboard",
        help="live web UI over timelines, event streams, metrics and "
        "sweep manifests (docs/dashboard.md)",
    )
    p.add_argument("workload", nargs="?", choices=workload_names(),
                   help="workload backing the startup simulation "
                   "(default compress; ignored with --trace)")
    p.add_argument("--scale", type=float, default=0.25,
                   help="workload size multiplier (default 0.25)")
    p.add_argument("--max-steps", type=int, default=None,
                   help="functional-execution step budget (a workload "
                   "that does not halt within it fails fast)")
    p.add_argument("--policy", choices=("profile", "heuristics"),
                   default="profile")
    p.add_argument("--tus", type=int, default=8, help="thread units")
    p.add_argument("--vp", default="stride",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="serve this Chrome-trace JSON (e.g. from "
                   "'repro trace --out') instead of simulating")
    p.add_argument("--events", default=None, metavar="FILE",
                   help="JSONL event stream backing the inspector "
                   "(with --trace)")
    p.add_argument("--telemetry", action="append", default=None,
                   metavar="DIR",
                   help="telemetry directory for the manifest browser "
                   "(repeatable; default: auto-discover under the "
                   "working directory)")
    p.add_argument("--attach", default=None, metavar="TARGET",
                   help="poll a running serve daemon's /metrics: a "
                   "serve state dir, an endpoint.json, host:port, or "
                   "a URL")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8650,
                   help="bind port (default 8650; 0 = ephemeral)")
    p.add_argument("--snapshot", default=None, metavar="DIR",
                   help="write a static bundle (index.html + per-view "
                   "JSON) instead of serving")
    p.add_argument("--smoke", action="store_true",
                   help="CI gate: ephemeral server, every endpoint hit, "
                   "trace schema-validated, --attach exercised against "
                   "a real serve daemon, snapshot re-validated")

    p = sub.add_parser(
        "profile",
        help="per-phase timings and cProfile hotspots of one point",
    )
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--scale", type=float, default=0.3,
                   help="workload size multiplier (default 0.3)")
    p.add_argument("--policy", choices=("profile", "heuristics"),
                   default="profile")
    p.add_argument("--vp", default="stride",
                   choices=("perfect", "stride", "fcm", "last", "none"))
    p.add_argument("--core", choices=("columnar", "legacy", "event"),
                   default="columnar", help="simulator core to profile")
    p.add_argument("--top", type=int, default=15,
                   help="hotspot functions to report (default 15)")
    p.add_argument("--no-cprofile", action="store_true",
                   help="phase timings only (no function-level profile)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    return parser


_COMMANDS = {
    "workloads": cmd_workloads,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "disasm": cmd_disasm,
    "pairs": cmd_pairs,
    "simulate": cmd_simulate,
    "timeline": cmd_timeline,
    "figure": cmd_figure,
    "lint": cmd_lint,
    "validate-pairs": cmd_validate_pairs,
    "analyze-deps": cmd_analyze_deps,
    "sanitize": cmd_sanitize,
    "faults": cmd_faults,
    "exp": cmd_exp,
    "worker": cmd_worker,
    "cache": cmd_cache,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "dashboard": cmd_dashboard,
    "profile": cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (SimulationError, ExecutionError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
