"""Mean helpers.

The paper reports speed-ups as harmonic means (Hmean bars) and occupancy /
size metrics as arithmetic means (Amean bars); we follow suit.
"""

from __future__ import annotations

import math
from typing import Iterable, List


def _as_list(values: Iterable[float]) -> List[float]:
    result = list(values)
    if not result:
        raise ValueError("mean of an empty sequence")
    return result


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; every value must be positive."""
    data = _as_list(values)
    if any(v <= 0 for v in data):
        raise ValueError("harmonic mean requires positive values")
    return len(data) / sum(1.0 / v for v in data)


def weighted_harmonic_mean(
    values: Iterable[float], weights: Iterable[float]
) -> float:
    """Weighted harmonic mean: ``sum(w) / sum(w / v)``.

    The natural aggregate for speed-ups when benchmarks differ in size:
    weighting each benchmark's speed-up by its baseline cycle count
    yields the speed-up of the combined workload (total baseline time
    over total improved time).  Every value must be positive; weights
    must be non-negative with a positive sum.  With equal weights this
    degenerates to :func:`harmonic_mean` (property-tested in
    ``tests/test_metrics_means.py``).
    """
    data = _as_list(values)
    w = list(weights)
    if len(w) != len(data):
        raise ValueError(
            f"got {len(data)} values but {len(w)} weights"
        )
    if any(v <= 0 for v in data):
        raise ValueError("weighted harmonic mean requires positive values")
    if any(weight < 0 for weight in w):
        raise ValueError("weights must be non-negative")
    total = sum(w)
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return total / sum(weight / v for weight, v in zip(w, data))


def arithmetic_mean(values: Iterable[float]) -> float:
    data = _as_list(values)
    return sum(data) / len(data)


def geometric_mean(values: Iterable[float]) -> float:
    data = _as_list(values)
    if any(v <= 0 for v in data):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))
