"""Mean helpers.

The paper reports speed-ups as harmonic means (Hmean bars) and occupancy /
size metrics as arithmetic means (Amean bars); we follow suit.
"""

from __future__ import annotations

import math
from typing import Iterable, List


def _as_list(values: Iterable[float]) -> List[float]:
    result = list(values)
    if not result:
        raise ValueError("mean of an empty sequence")
    return result


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; every value must be positive."""
    data = _as_list(values)
    if any(v <= 0 for v in data):
        raise ValueError("harmonic mean requires positive values")
    return len(data) / sum(1.0 / v for v in data)


def arithmetic_mean(values: Iterable[float]) -> float:
    data = _as_list(values)
    return sum(data) / len(data)


def geometric_mean(values: Iterable[float]) -> float:
    data = _as_list(values)
    if any(v <= 0 for v in data):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))
