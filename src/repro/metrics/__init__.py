"""Aggregation helpers for experiment results."""

from repro.metrics.means import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    weighted_harmonic_mean,
)

__all__ = [
    "harmonic_mean",
    "arithmetic_mean",
    "geometric_mean",
    "weighted_harmonic_mean",
]
