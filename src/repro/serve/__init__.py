"""Resilient simulation service: the ``repro serve`` daemon.

A long-running HTTP/JSON service that accepts simulation jobs, executes
them on a supervised worker pool, and survives crashes: every queue
transition is write-ahead journaled, so a ``kill -9`` mid-sweep loses
nothing — on restart the daemon replays the journal and re-runs the
interrupted jobs exactly once.  Results are content-addressed in the
shared artifact cache, identical submissions dedup, and admission
control sheds load gracefully under pressure (bounded queue, priority
lanes, 429/503 rejection, SIGTERM drain).

Layers (one module each):

- :mod:`repro.serve.journal` — the crash-safe WAL + snapshot pair;
- :mod:`repro.serve.jobs` — the content-addressed job model, failure
  classification and runner registry;
- :mod:`repro.serve.queue` — the journaled priority queue with
  admission control, dedup and cache probing;
- :mod:`repro.serve.pool` — the supervised worker pool (timeouts,
  retries with deterministic jitter, hard cancellation, quarantine);
- :mod:`repro.serve.metrics` — the live ``/metrics`` registry;
- :mod:`repro.serve.server` — the daemon + stdlib HTTP layer;
- :mod:`repro.serve.bench` — the smoke gate, load generator and chaos
  benchmark (``BENCH_serve.json``).
"""

from repro.serve.jobs import (
    JOB_RUNNERS,
    PRIORITIES,
    Job,
    JobCancelled,
    JobState,
    classify_failure,
    job_digest,
)
from repro.serve.journal import JobJournal, JournalRecovery
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import WorkerPool
from repro.serve.queue import AdmissionError, JobQueue, RecoveryReport
from repro.serve.server import ServeConfig, ServeDaemon

__all__ = [
    "AdmissionError",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JobQueue",
    "JobState",
    "JournalRecovery",
    "JOB_RUNNERS",
    "PRIORITIES",
    "RecoveryReport",
    "ServeConfig",
    "ServeDaemon",
    "ServeMetrics",
    "WorkerPool",
    "classify_failure",
    "job_digest",
]
