"""Crash-safe write-ahead journal for the serve daemon's job queue.

The journal is an append-only JSONL file (one JSON object per line)
paired with an atomically-replaced snapshot file.  Every queue state
transition is appended — and fsynced — *before* the in-memory state
changes take effect externally, so a ``kill -9`` at any instant loses
at most the record being written.  Recovery loads the snapshot, replays
the WAL on top of it, and tolerates exactly the failure modes a hard
kill can produce:

- a **truncated tail** (the process died mid-append): the partial final
  record is dropped and counted, nothing else is lost;
- a **corrupt record mid-file** (disk corruption, an editor, a bug):
  the original file is quarantined to ``<path>.corrupt`` for forensics
  and replay keeps the valid prefix;
- a **corrupt snapshot**: quarantined the same way, recovery restarts
  from the WAL alone (mirroring the hardened
  :class:`~repro.experiments.framework.SweepCheckpoint`).

``rotate`` compacts the pair: it atomically writes a new snapshot of
the folded state and truncates the WAL, bounding recovery time and
making "one finish record per job per journal stream" a crisp
exactly-once invariant.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = ["JobJournal", "JournalRecovery"]


@dataclass
class JournalRecovery:
    """What :meth:`JobJournal.replay` found on disk.

    Attributes:
        snapshot: The last rotated snapshot (empty dict when none).
        records: WAL records appended since that snapshot, in order.
        dropped_tail: 1 when a partial final record was discarded (the
            signature of a ``kill -9`` mid-append), else 0.
        quarantined: Paths of corrupt files moved aside (snapshot and/or
            WAL), empty in the happy path.
    """

    snapshot: Dict[str, Any] = field(default_factory=dict)
    records: List[Dict[str, Any]] = field(default_factory=list)
    dropped_tail: int = 0
    quarantined: List[Path] = field(default_factory=list)


class JobJournal:
    """Append-only JSONL WAL plus an atomically-rotated snapshot.

    Args:
        path: The WAL file (``journal.jsonl``); the snapshot lives next
            to it as ``<path>.snapshot.json``.  Parent directories are
            created on demand.
        fsync: Whether appends fsync before returning (the durability
            the daemon's exactly-once guarantee rests on; tests may
            disable it for speed).
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.snapshot_path = self.path.with_suffix(
            self.path.suffix + ".snapshot.json"
        )
        self.fsync = fsync
        self._handle: Optional[TextIO] = None

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record durably (write + flush + fsync).

        Args:
            record: A JSON-serialisable mapping; one line is written.
        """
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def replay(self) -> JournalRecovery:
        """Load the snapshot and replay the WAL, hardened against damage.

        Returns:
            A :class:`JournalRecovery` with the snapshot, the ordered
            WAL records, and what (if anything) had to be dropped or
            quarantined.
        """
        recovery = JournalRecovery()
        recovery.snapshot = self._load_snapshot(recovery)
        if not self.path.exists():
            return recovery
        raw = self.path.read_bytes()
        text = raw.decode("utf-8", errors="replace")
        lines = text.split("\n")
        trailing_complete = text.endswith("\n")
        if trailing_complete:
            lines = lines[:-1]
        for index, line in enumerate(lines):
            if line == "":
                continue
            last = index == len(lines) - 1
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (json.JSONDecodeError, ValueError):
                if last and not trailing_complete:
                    # kill -9 mid-append: drop the partial tail record.
                    recovery.dropped_tail = 1
                else:
                    # Mid-file corruption: keep the valid prefix, park
                    # the original for forensics.
                    recovery.quarantined.append(
                        self._quarantine(self.path, copy=True)
                    )
                break
            recovery.records.append(record)
        return recovery

    def _load_snapshot(self, recovery: JournalRecovery) -> Dict[str, Any]:
        if not self.snapshot_path.exists():
            return {}
        try:
            data = json.loads(self.snapshot_path.read_text())
            if not isinstance(data, dict):
                raise ValueError("snapshot root is not an object")
            return data
        except (json.JSONDecodeError, ValueError, UnicodeDecodeError):
            recovery.quarantined.append(
                self._quarantine(self.snapshot_path, copy=False)
            )
            return {}

    def _quarantine(self, path: Path, copy: bool) -> Path:
        target = path.with_suffix(path.suffix + ".corrupt")
        if copy:
            shutil.copy2(path, target)
        else:
            os.replace(path, target)
        return target

    # ------------------------------------------------------------------
    # Rotation.
    # ------------------------------------------------------------------

    def rotate(self, snapshot: Dict[str, Any]) -> None:
        """Atomically persist ``snapshot`` and truncate the WAL.

        The snapshot is written with temp-file + ``os.replace`` (the
        repository's atomic-write idiom) *before* the WAL is truncated,
        so a crash between the two steps merely replays records that
        the snapshot already folded in — replay is idempotent on the
        job table.

        Args:
            snapshot: The folded state to persist (JSON-serialisable).
        """
        self.close()
        self.snapshot_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.snapshot_path.with_suffix(
            self.snapshot_path.suffix + f".tmp{os.getpid()}"
        )
        tmp.write_text(
            json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        )
        with open(tmp, "r+", encoding="utf-8") as handle:
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        wal_tmp = self.path.with_suffix(
            self.path.suffix + f".tmp{os.getpid()}"
        )
        wal_tmp.write_text("")
        os.replace(wal_tmp, self.path)
