"""Live service metrics of the serve daemon (``/metrics`` endpoint).

One :class:`~repro.obs.registry.MetricsRegistry` instance is shared by
the queue, the worker pool and the HTTP server; ``GET /metrics`` serves
its Prometheus text exposition straight from process memory, so the
numbers are live — no files, no scrape-side aggregation.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["ServeMetrics"]


class ServeMetrics:
    """Typed handles on every serve metric, bound to one registry.

    Args:
        registry: Registry to register into (a fresh one when None).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        reg = self.registry
        self.submitted: Counter = reg.counter(
            "repro_serve_jobs_submitted_total",
            "Jobs admitted to the queue, by priority lane",
        )
        self.completed: Counter = reg.counter(
            "repro_serve_jobs_completed_total",
            "Jobs reaching a terminal state, by status",
        )
        self.rejected: Counter = reg.counter(
            "repro_serve_jobs_rejected_total",
            "Submissions refused by admission control, by reason",
        )
        self.deduped: Counter = reg.counter(
            "repro_serve_jobs_deduped_total",
            "Submissions coalesced onto an existing identical job",
        )
        self.cache_served: Counter = reg.counter(
            "repro_serve_cache_served_total",
            "Jobs answered from the artifact cache without executing",
        )
        self.retries: Counter = reg.counter(
            "repro_serve_job_retry_attempts_total",
            "Extra execution attempts beyond each job's first",
        )
        self.requeued: Counter = reg.counter(
            "repro_serve_jobs_requeued_total",
            "Jobs re-queued by crash recovery (WAL replay)",
        )
        self.queue_depth: Gauge = reg.gauge(
            "repro_serve_queue_depth",
            "Jobs currently queued, by priority lane",
        )
        self.running: Gauge = reg.gauge(
            "repro_serve_jobs_running",
            "Jobs currently executing on a worker",
        )
        self.draining: Gauge = reg.gauge(
            "repro_serve_draining",
            "1 while the daemon is draining (rejecting submissions)",
        )
        self.job_seconds: Histogram = reg.histogram(
            "repro_serve_job_seconds",
            "Per-job wall time in seconds, by runner",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10,
                     30, 60, 120, 300),
        )

    def to_prometheus(self) -> str:
        """Return the live Prometheus text exposition."""
        return self.registry.to_prometheus()
