"""Journaled priority job queue with admission control and dedup.

The queue is the daemon's committed state.  Every transition is
appended to the :class:`~repro.serve.journal.JobJournal` *before* it
becomes visible, so the in-memory table is always reconstructible; on
startup :meth:`JobQueue.recover` replays the journal, re-queues every
job that was queued or running when the process died (re-running a
half-finished job is recovery — its artifact is content-addressed, so
the committed result stream stays exactly-once), and compacts the
journal so "one finish per job per stream" is an invariant the tests
and the chaos benchmark can assert directly.

Admission control implements graceful degradation:

- the queue is **bounded** (``max_queued``): a full queue rejects with
  :class:`AdmissionError` (the HTTP layer's 429);
- under **pressure** (depth beyond ``shed_ratio`` of the bound), new
  low-priority work is shed at the door;
- a **high-priority** submission hitting a full queue sheds the
  youngest queued low-priority job instead of being rejected;
- a **draining** queue (SIGTERM) rejects everything (the 503) while
  running jobs finish.

Identical submissions coalesce: the job id is the content digest of
``(runner, params)``, so a duplicate submit returns the existing job —
already-done jobs answer instantly, and an artifact-cache probe lets a
brand-new daemon answer a previously-computed config without running
anything.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.serve.jobs import PRIORITIES, Job, JobState, job_digest
from repro.serve.journal import JobJournal
from repro.serve.metrics import ServeMetrics

__all__ = ["AdmissionError", "JobQueue", "RecoveryReport"]

#: Sentinel returned by cache probes on a miss.
_MISS = object()


class AdmissionError(RuntimeError):
    """A submission was refused by admission control.

    Attributes:
        reason: ``"full"``, ``"shedding"`` or ``"draining"``.
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass
class RecoveryReport:
    """What :meth:`JobQueue.recover` rebuilt from the journal.

    Attributes:
        jobs: Total jobs in the recovered table.
        requeued: Jobs that were queued/running at the crash and were
            put back on the queue.
        finished: Jobs already terminal in the journal.
        duplicate_finishes: Job ids with more than one finish record in
            a single journal stream — always 0 unless exactly-once was
            violated (the chaos gate asserts this).
        dropped_tail: 1 when a partial trailing WAL record was dropped.
        quarantined: Corrupt files moved to ``*.corrupt`` during replay.
    """

    jobs: int = 0
    requeued: int = 0
    finished: int = 0
    duplicate_finishes: int = 0
    dropped_tail: int = 0
    quarantined: List[Path] = field(default_factory=list)


class JobQueue:
    """Bounded, journaled, priority job queue (thread-safe).

    Args:
        journal: The write-ahead journal backing the queue.
        max_queued: Admission bound on jobs waiting in the lanes.
        shed_ratio: Fraction of ``max_queued`` beyond which new
            low-priority submissions are shed.
        cache_probe: Optional ``probe(job) -> payload-or-miss-sentinel``
            consulted at submit time; a hit completes the job instantly
            (content-addressed artifact reuse).  Use
            :data:`~repro.serve.queue._MISS` via :meth:`miss_sentinel`
            to signal a miss.
        metrics: Shared :class:`~repro.serve.metrics.ServeMetrics`
            (a private one is created when None).
        rotate_every: Journal records between automatic compactions.
    """

    def __init__(
        self,
        journal: JobJournal,
        max_queued: int = 64,
        shed_ratio: float = 0.8,
        cache_probe: Optional[Callable[[Job], Any]] = None,
        metrics: Optional[ServeMetrics] = None,
        rotate_every: int = 4096,
    ) -> None:
        self.journal = journal
        self.max_queued = max(1, int(max_queued))
        self.shed_ratio = min(max(float(shed_ratio), 0.0), 1.0)
        self.cache_probe = cache_probe
        self.metrics = metrics or ServeMetrics()
        self.rotate_every = max(16, int(rotate_every))
        self.jobs: Dict[str, Job] = {}
        self._lanes: Dict[str, Deque[str]] = {
            lane: deque() for lane in PRIORITIES
        }
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._draining = False
        self._appended = 0

    @staticmethod
    def miss_sentinel() -> Any:
        """Return the sentinel a cache probe yields on a miss."""
        return _MISS

    # ------------------------------------------------------------------
    # Journal plumbing.
    # ------------------------------------------------------------------

    def _log(self, record: Dict[str, Any]) -> None:
        """Append one WAL record (caller holds the lock)."""
        record["ts"] = round(time.time(), 6)
        self.journal.append(record)
        self._appended += 1
        if self._appended >= self.rotate_every:
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        self.journal.rotate(self._snapshot_locked())
        self._appended = 0

    def _snapshot_locked(self) -> Dict[str, Any]:
        return {
            "jobs": {job_id: job.to_dict()
                     for job_id, job in self.jobs.items()}
        }

    def rotate(self) -> None:
        """Compact the journal now (snapshot + WAL truncate)."""
        with self._lock:
            self._rotate_locked()

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild the job table from the journal and re-queue survivors.

        Returns:
            A :class:`RecoveryReport`; after it, the journal is
            compacted and every previously queued/running job is queued
            again (oldest first, per lane).
        """
        report = RecoveryReport()
        recovery = self.journal.replay()
        report.dropped_tail = recovery.dropped_tail
        report.quarantined = list(recovery.quarantined)
        finishes: Dict[str, int] = {}
        with self._lock:
            for data in recovery.snapshot.get("jobs", {}).values():
                job = Job.from_dict(data)
                self.jobs[job.id] = job
            for record in recovery.records:
                self._apply_locked(record, finishes)
            report.duplicate_finishes = sum(
                count - 1 for count in finishes.values() if count > 1
            )
            for job in sorted(
                self.jobs.values(), key=lambda j: j.submitted_at
            ):
                if job.state in (JobState.QUEUED, JobState.RUNNING):
                    if job.cancel_requested:
                        # The cancel beat the crash; honour it.
                        job.state = JobState.CANCELLED
                        job.finished_at = time.time()
                        report.finished += 1
                        continue
                    job.state = JobState.QUEUED
                    job.attempts = 0
                    self._lanes[self._lane_of(job)].append(job.id)
                    report.requeued += 1
                elif job.state.terminal:
                    report.finished += 1
            report.jobs = len(self.jobs)
            # Compact: the recovered table becomes the snapshot and the
            # (possibly damaged) WAL is truncated, so each journal
            # stream contains at most one finish per job.
            self._rotate_locked()
            self._refresh_gauges_locked()
            if report.requeued:
                self.metrics.requeued.inc(report.requeued)
            self._available.notify_all()
        return report

    def _apply_locked(
        self, record: Dict[str, Any], finishes: Dict[str, int]
    ) -> None:
        """Fold one WAL record into the job table (replay only)."""
        event = record.get("event")
        if event == "submit":
            job = Job.from_dict(record.get("job", {}))
            existing = self.jobs.get(job.id)
            if existing is None or existing.state.terminal:
                self.jobs[job.id] = job
            return
        job_id = str(record.get("id", ""))
        job = self.jobs.get(job_id)
        if job is None:
            return
        if event == "start":
            job.state = JobState.RUNNING
            job.attempts = int(record.get("attempt", job.attempts + 1))
            job.started_at = record.get("ts", job.started_at)
        elif event == "finish":
            job.state = JobState.DONE
            job.result = record.get("result")
            job.cached = bool(record.get("cached", False))
            job.seconds = float(record.get("seconds", 0.0))
            job.attempts = int(record.get("attempts", job.attempts))
            job.finished_at = record.get("ts")
            finishes[job_id] = finishes.get(job_id, 0) + 1
        elif event == "fail":
            quarantine = bool(record.get("quarantine", False))
            job.state = (
                JobState.QUARANTINED if quarantine else JobState.FAILED
            )
            job.error = record.get("error")
            job.error_type = record.get("error_type")
            job.seconds = float(record.get("seconds", 0.0))
            job.attempts = int(record.get("attempts", job.attempts))
            job.finished_at = record.get("ts")
        elif event == "cancel":
            if job.state in (JobState.QUEUED,):
                job.state = JobState.CANCELLED
                job.finished_at = record.get("ts")
            else:
                job.cancel_requested = True
        elif event == "cancelled":
            job.state = JobState.CANCELLED
            job.finished_at = record.get("ts")
        elif event == "shed":
            job.state = JobState.SHED
            job.finished_at = record.get("ts")

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------

    def _lane_of(self, job: Job) -> str:
        return job.priority if job.priority in self._lanes else "normal"

    def _depth_locked(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def _refresh_gauges_locked(self) -> None:
        for name, lane in self._lanes.items():
            self.metrics.queue_depth.set(len(lane), lane=name)
        running = sum(
            1 for job in self.jobs.values()
            if job.state is JobState.RUNNING
        )
        self.metrics.running.set(running)

    def submit(
        self,
        runner: str,
        params: Dict[str, Any],
        priority: str = "normal",
    ) -> "tuple[Job, str]":
        """Admit (or coalesce) one job.

        Args:
            runner: Registered runner name.
            params: Runner keyword arguments (JSON-able primitives).
            priority: Lane name (``high``/``normal``/``low``).

        Returns:
            ``(job, outcome)`` where outcome is ``"accepted"`` (queued),
            ``"dedup"`` (an identical job already exists in any
            non-shed state), or ``"cached"`` (completed instantly from
            the artifact cache).

        Raises:
            AdmissionError: When draining, full, or shedding low
                priority under pressure.
            KeyError: Unknown runner name.
            ValueError: Unknown priority lane.
        """
        from repro.serve.jobs import JOB_RUNNERS

        if runner not in JOB_RUNNERS:
            raise KeyError(
                f"unknown runner {runner!r}; choose from "
                f"{sorted(JOB_RUNNERS)}"
            )
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; choose from {PRIORITIES}"
            )
        job_id = job_digest(runner, params)
        with self._lock:
            existing = self.jobs.get(job_id)
            if existing is not None and existing.state is not JobState.SHED:
                # Dedup: failed/cancelled jobs re-queue on resubmit,
                # quarantined (poison) jobs never re-run.
                if existing.state in (
                    JobState.FAILED, JobState.CANCELLED
                ):
                    return self._requeue_locked(existing, priority)
                self.metrics.deduped.inc()
                return existing, "dedup"
            if self._draining:
                self.metrics.rejected.inc(reason="draining")
                raise AdmissionError(
                    "daemon is draining", reason="draining"
                )
            job = Job(
                id=job_id,
                runner=runner,
                params=dict(params),
                priority=priority,
                submitted_at=time.time(),
            )
            if self._probe_locked(job):
                return job, "cached"
            depth = self._depth_locked()
            if (
                priority == "low"
                and depth >= self.max_queued * self.shed_ratio
            ):
                self.metrics.rejected.inc(reason="shedding")
                raise AdmissionError(
                    "queue under pressure; low-priority work shed",
                    reason="shedding",
                )
            if depth >= self.max_queued:
                if priority == "high" and self._shed_one_locked():
                    pass  # made room by shedding a low-priority job
                else:
                    self.metrics.rejected.inc(reason="full")
                    raise AdmissionError("queue full", reason="full")
            self.jobs[job_id] = job
            self._log({"event": "submit", "job": job.to_dict()})
            self._lanes[self._lane_of(job)].append(job_id)
            self.metrics.submitted.inc(priority=priority)
            self._refresh_gauges_locked()
            self._available.notify()
            return job, "accepted"

    def _requeue_locked(
        self, job: Job, priority: str
    ) -> "tuple[Job, str]":
        """Give a failed/cancelled job another life (resubmission)."""
        if self._draining:
            self.metrics.rejected.inc(reason="draining")
            raise AdmissionError("daemon is draining", reason="draining")
        if self._depth_locked() >= self.max_queued:
            self.metrics.rejected.inc(reason="full")
            raise AdmissionError("queue full", reason="full")
        job.state = JobState.QUEUED
        job.priority = priority
        job.attempts = 0
        job.error = job.error_type = None
        job.cancel_requested = False
        job.submitted_at = time.time()
        job.started_at = job.finished_at = None
        self._log({"event": "submit", "job": job.to_dict()})
        self._lanes[self._lane_of(job)].append(job.id)
        self.metrics.submitted.inc(priority=priority)
        self._refresh_gauges_locked()
        self._available.notify()
        return job, "accepted"

    def _probe_locked(self, job: Job) -> bool:
        """Serve the job from the artifact cache if it is already there."""
        if self.cache_probe is None:
            return False
        try:
            payload = self.cache_probe(job)
        except Exception:
            return False
        if payload is _MISS:
            return False
        now = time.time()
        job.state = JobState.DONE
        job.result = payload
        job.cached = True
        job.finished_at = now
        self.jobs[job.id] = job
        self._log({"event": "submit", "job": job.to_dict()})
        self._log({
            "event": "finish", "id": job.id, "result": payload,
            "cached": True, "seconds": 0.0, "attempts": 0,
        })
        self.metrics.submitted.inc(priority=job.priority)
        self.metrics.cache_served.inc()
        self.metrics.completed.inc(status="ok")
        return True

    def _shed_one_locked(self) -> bool:
        """Drop the youngest queued low-priority job; True on success."""
        lane = self._lanes["low"]
        if not lane:
            return False
        job_id = lane.pop()
        job = self.jobs[job_id]
        job.state = JobState.SHED
        job.finished_at = time.time()
        self._log({"event": "shed", "id": job_id})
        self.metrics.completed.inc(status="shed")
        self._refresh_gauges_locked()
        return True

    # ------------------------------------------------------------------
    # Worker side.
    # ------------------------------------------------------------------

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next job (highest lane first, FIFO within a lane).

        Blocks up to ``timeout`` seconds for work; returns None on
        timeout or when draining with nothing queued.  The claimed job
        transitions to ``running`` (journaled).
        """
        with self._lock:
            if self._depth_locked() == 0 and not self._draining:
                self._available.wait(timeout)
            for lane in PRIORITIES:
                queue = self._lanes[lane]
                while queue:
                    job_id = queue.popleft()
                    job = self.jobs[job_id]
                    if job.state is not JobState.QUEUED:
                        continue  # cancelled while queued
                    job.state = JobState.RUNNING
                    job.attempts += 1
                    job.started_at = time.time()
                    self._log({
                        "event": "start", "id": job_id,
                        "attempt": job.attempts,
                    })
                    self._refresh_gauges_locked()
                    return job
            return None

    def note_attempt(self, job: Job) -> None:
        """Journal one extra execution attempt of a running job."""
        with self._lock:
            job.attempts += 1
            self._log({
                "event": "start", "id": job.id, "attempt": job.attempts,
            })
            self.metrics.retries.inc()

    def finish(
        self,
        job: Job,
        result: Any,
        seconds: float = 0.0,
        cached: bool = False,
    ) -> None:
        """Commit a completed job (journaled before visible)."""
        with self._lock:
            self._log({
                "event": "finish", "id": job.id, "result": result,
                "cached": cached, "seconds": round(seconds, 6),
                "attempts": job.attempts,
            })
            job.state = JobState.DONE
            job.result = result
            job.cached = cached
            job.seconds = seconds
            job.finished_at = time.time()
            self.metrics.completed.inc(status="ok")
            self.metrics.job_seconds.observe(seconds, runner=job.runner)
            self._refresh_gauges_locked()

    def fail(
        self,
        job: Job,
        error: str,
        error_type: str,
        quarantine: bool = False,
        seconds: float = 0.0,
    ) -> None:
        """Commit a failed job; ``quarantine`` poisons it permanently."""
        with self._lock:
            self._log({
                "event": "fail", "id": job.id, "error": error,
                "error_type": error_type, "quarantine": quarantine,
                "seconds": round(seconds, 6), "attempts": job.attempts,
            })
            job.state = (
                JobState.QUARANTINED if quarantine else JobState.FAILED
            )
            job.error = error
            job.error_type = error_type
            job.seconds = seconds
            job.finished_at = time.time()
            status = "quarantined" if quarantine else "failed"
            self.metrics.completed.inc(status=status)
            self.metrics.job_seconds.observe(seconds, runner=job.runner)
            self._refresh_gauges_locked()

    def mark_cancelled(self, job: Job, seconds: float = 0.0) -> None:
        """Commit a running job's cancellation (worker-side)."""
        with self._lock:
            self._log({"event": "cancelled", "id": job.id})
            job.state = JobState.CANCELLED
            job.seconds = seconds
            job.finished_at = time.time()
            self.metrics.completed.inc(status="cancelled")
            self._refresh_gauges_locked()

    # ------------------------------------------------------------------
    # Client side.
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """Return the job with ``job_id`` (None when unknown)."""
        with self._lock:
            return self.jobs.get(job_id)

    def list_jobs(self, state: Optional[str] = None) -> List[Job]:
        """Return jobs (optionally filtered by state), oldest first."""
        with self._lock:
            jobs = sorted(
                self.jobs.values(), key=lambda j: j.submitted_at
            )
        if state is not None:
            jobs = [job for job in jobs if job.state.value == state]
        return jobs

    def cancel(self, job_id: str) -> str:
        """Request cancellation of a job.

        Returns:
            ``"cancelled"`` (was queued, now terminal),
            ``"cancelling"`` (running; the pool will stop it),
            ``"terminal"`` (already finished) or ``"unknown"``.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return "unknown"
            if job.state is JobState.QUEUED:
                self._log({"event": "cancel", "id": job_id})
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                try:
                    self._lanes[self._lane_of(job)].remove(job_id)
                except ValueError:
                    pass
                self.metrics.completed.inc(status="cancelled")
                self._refresh_gauges_locked()
                return "cancelled"
            if job.state is JobState.RUNNING:
                self._log({"event": "cancel", "id": job_id})
                job.cancel_requested = True
                return "cancelling"
            return "terminal"

    # ------------------------------------------------------------------
    # Drain / introspection.
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting work; queued jobs still run, then workers idle."""
        with self._lock:
            self._draining = True
            self.metrics.draining.set(1)
            self._available.notify_all()

    @property
    def draining(self) -> bool:
        """Whether the queue is refusing new submissions."""
        return self._draining

    def pending(self) -> int:
        """Return queued + running job count (drain-completion check)."""
        with self._lock:
            return sum(
                1 for job in self.jobs.values()
                if not job.state.terminal
            )

    def depth(self) -> int:
        """Return the number of currently queued jobs."""
        with self._lock:
            return self._depth_locked()

    def counts(self) -> Dict[str, int]:
        """Return ``{state: count}`` over the whole job table."""
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self.jobs.values():
                counts[job.state.value] = (
                    counts.get(job.state.value, 0) + 1
                )
            return counts
