"""Serve-daemon load generator, smoke gate and chaos benchmark.

Three entry points, all CI-sized:

- :class:`ServeClient` — a tiny stdlib HTTP/JSON client for the serve
  API (used by the benchmark, the smoke gate and the tests);
- :func:`run_serve_smoke` — the ``repro serve --smoke`` gate: one
  in-process daemon exercised end to end (execute, dedup, retry-until-
  healed, poison quarantine, cancel, drain) plus a restart proving the
  journal recovers the full job table with zero duplicate finishes;
- :func:`run_serve_bench` — the ``BENCH_serve.json`` source: p50/p99
  job latency under concurrent clients against a cold artifact cache,
  the same submissions against a *fresh daemon on a warm cache* (every
  answer must come from the cache without re-simulation), and a chaos
  leg that ``kill -9``-s a real daemon subprocess mid-queue, restarts
  it, and asserts every accepted job completed **exactly once** (zero
  lost, zero duplicate finishes).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.serve.server import ServeConfig, ServeDaemon

__all__ = [
    "ServeClient",
    "run_serve_smoke",
    "run_serve_bench",
    "write_serve_report",
]


class ServeClient:
    """Minimal HTTP/JSON client for the serve API (stdlib only).

    Args:
        host: Daemon host.
        port: Daemon port.
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        """Issue one HTTP request against the daemon.

        Args:
            method: HTTP method (``GET``/``POST``/``DELETE``).
            path: Request path (e.g. ``/jobs``).
            body: Optional JSON body.

        Returns:
            ``(status, payload)`` — the payload JSON-decoded when
            possible, raw text otherwise.  Non-2xx responses are
            returned, not raised.
        """
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read().decode("utf-8")
                status = resp.status
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8")
            status = exc.code
        content = raw
        try:
            content = json.loads(raw)
        except ValueError:
            pass
        return status, content

    def submit(
        self,
        runner: str,
        params: Dict[str, Any],
        priority: str = "normal",
    ) -> Tuple[int, Dict[str, Any]]:
        """POST /jobs: submit a job.

        Args:
            runner: Registered runner name.
            params: Runner keyword arguments.
            priority: Lane name (``high``/``normal``/``low``).

        Returns:
            ``(status, payload)`` from the submission endpoint.
        """
        return self.request(
            "POST", "/jobs",
            {"runner": runner, "params": params, "priority": priority},
        )

    def status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """GET /jobs/<id>; returns ``(status, job status view)``."""
        return self.request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """GET /jobs/<id>/result; returns ``(status, result payload)``."""
        return self.request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """POST /jobs/<id>/cancel; returns ``(status, verdict)``."""
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def health(self) -> Dict[str, Any]:
        """GET /healthz; returns the decoded health payload."""
        return self.request("GET", "/healthz")[1]

    def metrics(self) -> str:
        """GET /metrics; returns the Prometheus exposition text."""
        return str(self.request("GET", "/metrics")[1])

    def drain(self) -> Tuple[int, Dict[str, Any]]:
        """POST /admin/drain; returns ``(status, acknowledgement)``."""
        return self.request("POST", "/admin/drain")

    def wait(
        self, job_id: str, timeout: float = 30.0, poll: float = 0.02
    ) -> Dict[str, Any]:
        """Poll a job until it reaches a terminal state.

        Returns:
            The final status dict.

        Raises:
            TimeoutError: The job stayed live past ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, payload = self.status(job_id)
            if status == 200 and payload.get("state") not in (
                "queued", "running"
            ):
                return payload
            time.sleep(poll)
        raise TimeoutError(f"job {job_id} did not finish in {timeout}s")


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 on empty input)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def _latency_stats(samples: List[float]) -> Dict[str, Any]:
    return {
        "count": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1000, 3),
        "max_ms": round(max(samples) * 1000, 3) if samples else 0.0,
    }


# ----------------------------------------------------------------------
# Smoke gate.
# ----------------------------------------------------------------------


def _check(
    checks: List[Dict[str, Any]], name: str, ok: bool, detail: str = ""
) -> bool:
    checks.append({"name": name, "ok": bool(ok), "detail": detail})
    return bool(ok)


def run_serve_smoke(
    state_dir: Union[str, Path],
    cache_dir: Optional[Union[str, Path]] = None,
    mode: Optional[str] = None,
) -> Dict[str, Any]:
    """Exercise one daemon end to end; the ``serve --smoke`` CI gate.

    Args:
        state_dir: Fresh directory for the journal/endpoint.
        cache_dir: Artifact-cache directory (defaults next to state).
        mode: Worker execution mode override (None = auto).

    Returns:
        ``{"ok", "checks": [{name, ok, detail}, ...], ...}``.
    """
    state_dir = Path(state_dir)
    cache_dir = Path(cache_dir or state_dir / "cache")
    checks: List[Dict[str, Any]] = []
    daemon = ServeDaemon(ServeConfig(
        workers=2,
        state_dir=state_dir,
        cache_dir=str(cache_dir),
        telemetry_dir=str(state_dir / "telemetry"),
        timeout=20.0,
        retries=2,
        backoff=0.01,
        mode=mode,
        fsync=False,
    ))
    daemon.start()
    client = ServeClient(*daemon.address)
    try:
        # 1. Plain execution.
        status, body = client.submit("sleep", {"duration": 0.01, "tag": "a"})
        _check(checks, "submit_accepted", status == 202, f"status={status}")
        done = client.wait(body["id"])
        _check(checks, "job_done", done["state"] == "done",
               f"state={done['state']}")
        status, result = client.result(body["id"])
        _check(checks, "result_served",
               status == 200 and result["result"]["slept"] == 0.01,
               f"status={status}")

        # 2. Identical resubmission coalesces.
        status, dup = client.submit("sleep", {"duration": 0.01, "tag": "a"})
        _check(checks, "dedup",
               status == 200 and dup["outcome"] == "dedup"
               and dup["id"] == body["id"],
               f"status={status} outcome={dup.get('outcome')}")

        # 3. Transient failures retry until healed.
        heal = state_dir / "heal.count"
        heal.write_text("1")
        status, body = client.submit(
            "sleep",
            {"duration": 0.01, "fail_file": str(heal), "tag": "heal"},
        )
        done = client.wait(body["id"])
        _check(checks, "transient_retried",
               done["state"] == "done" and done["attempts"] >= 2,
               f"state={done['state']} attempts={done['attempts']}")

        # 4. Poison quarantines and never re-runs.
        status, body = client.submit(
            "sleep", {"duration": 0.0, "fail": "poison"}
        )
        done = client.wait(body["id"])
        _check(checks, "poison_quarantined",
               done["state"] == "quarantined"
               and done["error_type"] == "InvariantViolation"
               and done["attempts"] == 1,
               f"state={done['state']} attempts={done['attempts']}")
        status, again = client.submit(
            "sleep", {"duration": 0.0, "fail": "poison"}
        )
        _check(checks, "poison_not_rerun",
               status == 200 and again["outcome"] == "dedup",
               f"status={status} outcome={again.get('outcome')}")

        # 5. Cancel a running job.
        status, body = client.submit(
            "sleep", {"duration": 10.0, "tag": "cancel-me"}, "high"
        )
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if client.status(body["id"])[1].get("state") == "running":
                break
            time.sleep(0.02)
        status, _ = client.cancel(body["id"])
        done = client.wait(body["id"], timeout=10.0)
        _check(checks, "cancel_running",
               done["state"] == "cancelled", f"state={done['state']}")

        # 6. Health and metrics.
        health = client.health()
        _check(checks, "healthz", health["ok"] is True, "")
        text = client.metrics()
        _check(checks, "metrics",
               "repro_serve_jobs_submitted_total" in text
               and "repro_serve_job_seconds" in text, "")
    finally:
        clean = daemon.drain(timeout=15.0)
    _check(checks, "drain_clean", clean, "")
    audit = daemon.audit()
    _check(checks, "exactly_once",
           audit["lost"] == 0 and audit["duplicate_finishes"] == 0,
           f"lost={audit['lost']} dup={audit['duplicate_finishes']}")

    # 7. A restarted daemon recovers the full table from the journal.
    reborn = ServeDaemon(ServeConfig(
        state_dir=state_dir, cache_dir=str(cache_dir), fsync=False
    ))
    recovered = reborn.audit()
    _check(checks, "recovery",
           recovered["accepted"] == audit["accepted"]
           and recovered["lost"] == 0
           and recovered["duplicate_finishes"] == 0,
           f"accepted={recovered['accepted']}/{audit['accepted']}")
    reborn.journal.close()

    return {
        "ok": all(check["ok"] for check in checks),
        "checks": checks,
        "jobs": audit["accepted"],
    }


# ----------------------------------------------------------------------
# Benchmark (BENCH_serve.json).
# ----------------------------------------------------------------------

#: Simulation grid of the cold/hot legs: small enough for CI, real
#: enough to exercise the artifact-cache path end to end.
BENCH_GRID = tuple(
    {"name": workload, "policy": "profile", "scale": 0.05,
     "overrides": {"num_thread_units": tus}}
    for workload in ("compress", "ijpeg")
    for tus in (2, 4)
)


def _client_burst(
    client: ServeClient,
    submissions: List[Tuple[str, Dict[str, Any]]],
    clients: int,
) -> Tuple[List[Dict[str, Any]], List[float]]:
    """Submit ``submissions`` from ``clients`` threads; wait for all.

    Returns:
        ``(final statuses, per-request submit latencies in seconds)``.
    """
    import threading

    lock = threading.Lock()
    accepted: List[str] = []
    submit_latency: List[float] = []
    chunks: List[List[Tuple[str, Dict[str, Any]]]] = [
        submissions[i::clients] for i in range(clients)
    ]

    def body(chunk: List[Tuple[str, Dict[str, Any]]]) -> None:
        for runner, params in chunk:
            start = time.perf_counter()
            status, payload = client.submit(runner, params)
            elapsed = time.perf_counter() - start
            with lock:
                submit_latency.append(elapsed)
                if status in (200, 202):
                    accepted.append(payload["id"])

    threads = [
        threading.Thread(target=body, args=(chunk,), daemon=True)
        for chunk in chunks if chunk
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    finals = [client.wait(job_id, timeout=120.0) for job_id in accepted]
    return finals, submit_latency


def _completion_latencies(finals: List[Dict[str, Any]]) -> List[float]:
    return [
        max(0.0, float(f["finished_at"]) - float(f["submitted_at"]))
        for f in finals
        if f.get("finished_at") and f.get("submitted_at")
    ]


def _bench_cold_hot(
    workdir: Path, clients: int, progress: Any
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run the cold-cache and warm-cache legs; returns both records."""
    cache_dir = workdir / "cache"
    submissions = [("simulate", dict(params)) for params in BENCH_GRID]

    if progress:
        progress(f"serve-bench: cold leg ({len(submissions)} jobs, "
                 f"{clients} clients)")
    daemon = ServeDaemon(ServeConfig(
        workers=2, state_dir=workdir / "cold",
        cache_dir=str(cache_dir), fsync=False, timeout=120.0,
    ))
    daemon.start()
    start = time.perf_counter()
    finals, submit_lat = _client_burst(
        ServeClient(*daemon.address), submissions, clients
    )
    cold_seconds = time.perf_counter() - start
    daemon.drain(timeout=30.0)
    cold_audit = daemon.audit()
    cold = {
        "seconds": round(cold_seconds, 3),
        "jobs": len(finals),
        "done": sum(1 for f in finals if f["state"] == "done"),
        "cached": sum(1 for f in finals if f["cached"]),
        "submit": _latency_stats(submit_lat),
        "completion": _latency_stats(_completion_latencies(finals)),
        "audit": cold_audit,
    }

    if progress:
        progress("serve-bench: cache-hot leg (fresh daemon, warm cache)")
    daemon = ServeDaemon(ServeConfig(
        workers=2, state_dir=workdir / "hot",
        cache_dir=str(cache_dir), fsync=False, timeout=120.0,
    ))
    daemon.start()
    start = time.perf_counter()
    finals, submit_lat = _client_burst(
        ServeClient(*daemon.address), submissions, clients
    )
    hot_seconds = time.perf_counter() - start
    daemon.drain(timeout=30.0)
    hot = {
        "seconds": round(hot_seconds, 3),
        "jobs": len(finals),
        "done": sum(1 for f in finals if f["state"] == "done"),
        "cached": sum(1 for f in finals if f["cached"]),
        "submit": _latency_stats(submit_lat),
        "completion": _latency_stats(_completion_latencies(finals)),
        "all_cached": bool(finals)
        and all(f["cached"] for f in finals),
    }
    return cold, hot


def _wait_endpoint(
    state_dir: Path, proc: "subprocess.Popen[bytes]", timeout: float = 20.0
) -> Dict[str, Any]:
    """Wait for a daemon subprocess to advertise ``endpoint.json``."""
    endpoint = state_dir / "endpoint.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"serve subprocess exited early (rc={proc.returncode})"
            )
        if endpoint.exists():
            try:
                data = json.loads(endpoint.read_text())
                if int(data.get("pid", -1)) == proc.pid:
                    return data
            except (ValueError, OSError):
                pass
        time.sleep(0.05)
    raise TimeoutError("serve subprocess never advertised its endpoint")


def _spawn_daemon(state_dir: Path, workers: int = 2,
                  ) -> "subprocess.Popen[bytes]":
    """Start ``python -m repro serve`` on an ephemeral port."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--port", "0", "--workers", str(workers),
            "--backoff", "0.01",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )


def _bench_chaos(
    workdir: Path, chaos_jobs: int, progress: Any
) -> Dict[str, Any]:
    """kill -9 a live daemon mid-queue, restart, assert exactly-once."""
    state_dir = workdir / "chaos"
    if progress:
        progress(f"serve-bench: chaos leg ({chaos_jobs} jobs, kill -9)")
    proc = _spawn_daemon(state_dir)
    endpoint = _wait_endpoint(state_dir, proc)
    client = ServeClient(endpoint["host"], int(endpoint["port"]))
    priorities = ("high", "normal", "normal", "low")
    ids: List[str] = []
    for index in range(chaos_jobs):
        status, payload = client.submit(
            "sleep",
            {"duration": 0.25, "tag": f"chaos-{index}"},
            priorities[index % len(priorities)],
        )
        if status in (200, 202):
            ids.append(payload["id"])
    # Let some jobs finish and some be mid-flight, then pull the plug.
    time.sleep(0.6)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=10.0)

    proc = _spawn_daemon(state_dir)
    endpoint = _wait_endpoint(state_dir, proc)
    client = ServeClient(endpoint["host"], int(endpoint["port"]))
    finals = [client.wait(job_id, timeout=60.0) for job_id in ids]
    health = client.health()
    client.drain()
    proc.wait(timeout=30.0)

    states: Dict[str, int] = {}
    for final in finals:
        states[final["state"]] = states.get(final["state"], 0) + 1
    lost = sum(
        1 for final in finals
        if final["state"] in ("queued", "running")
    )
    return {
        "jobs_submitted": len(ids),
        "states": states,
        "lost": lost,
        "requeued_after_kill": health["recovery"]["requeued"],
        "duplicate_finishes": health["recovery"]["duplicate_finishes"],
        "exactly_once": (
            lost == 0
            and health["recovery"]["duplicate_finishes"] == 0
            and states.get("done", 0) == len(ids)
        ),
    }


def run_serve_bench(
    workdir: Union[str, Path],
    clients: int = 4,
    chaos_jobs: int = 12,
    skip_chaos: bool = False,
    progress: Any = None,
) -> Dict[str, Any]:
    """Benchmark the serve daemon; the ``BENCH_serve.json`` source.

    Args:
        workdir: Scratch directory for state dirs and the shared cache.
        clients: Concurrent submitting clients of the cold/hot legs.
        chaos_jobs: Jobs in flight when the chaos leg kills the daemon.
        skip_chaos: Skip the subprocess kill/restart leg.
        progress: Optional ``callable(str)`` for per-leg progress.

    Returns:
        The report dict; ``report["ok"]`` gates CI (hot leg fully
        cache-served and the chaos leg exactly-once).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    cold, hot = _bench_cold_hot(workdir, clients, progress)
    report: Dict[str, Any] = {
        "schema": "repro-serve-bench/1",
        "clients": clients,
        "grid_points": len(BENCH_GRID),
        "cold": cold,
        "hot": hot,
        "hot_speedup": round(
            cold["seconds"] / max(hot["seconds"], 1e-9), 2
        ),
    }
    ok = (
        cold["audit"]["lost"] == 0
        and cold["done"] == cold["jobs"]
        and hot["all_cached"]
    )
    if not skip_chaos:
        chaos = _bench_chaos(workdir, chaos_jobs, progress)
        report["chaos"] = chaos
        ok = ok and chaos["exactly_once"]
    report["ok"] = ok
    return report


def write_serve_report(
    report: Dict[str, Any], path: Union[str, Path] = "BENCH_serve.json"
) -> Path:
    """Write a serve-bench report as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path
