"""Supervised worker pool: retries, timeouts, cancellation, quarantine.

Workers claim jobs from the :class:`~repro.serve.queue.JobQueue` and
execute them like the simulator executes speculative threads — assume
success, recover from anything:

- each attempt runs (by default) in a **child process**, so a per-job
  wall-clock timeout and a mid-attempt cancellation are hard kills
  (``terminate``), never hangs;
- failures classify through :func:`repro.serve.jobs.classify_failure`:
  transient errors retry with the framework's deterministic jittered
  exponential backoff (:func:`repro.experiments.framework.backoff_delay`
  keyed by job id, so herds desynchronise),
  :class:`~repro.errors.InvariantViolation` poison-quarantines the job
  immediately — a simulator bug re-executes identically, so re-running
  it would only burn the pool;
- a worker whose child dies mid-attempt (OOM-kill, crash) sees EOF on
  the result pipe and treats it as transient — the supervisor outlives
  its workers.

``mode="thread"`` executes attempts in-process (no hard kill; the
``sleep`` runner and anything polling
:func:`repro.serve.jobs.current_cancel_event` still cancel
cooperatively) — useful on platforms without ``fork`` and in tests.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from typing import Any, List, Optional

from repro.errors import SimulationTimeout
from repro.experiments.framework import backoff_delay
from repro.obs.manifest import RunManifest
from repro.serve.jobs import (
    Job,
    JobCancelled,
    classify_failure,
    execute_job_payload,
    rebuild_failure,
    set_cancel_event,
)
from repro.serve.queue import JobQueue

__all__ = ["WorkerPool"]


def _child_main(
    conn: "multiprocessing.connection.Connection",
    runner: str,
    params: Any,
    cache_dir: Optional[str],
) -> None:
    """Child-process attempt body: run the job, ship the result back."""
    try:
        cache = None
        if cache_dir:
            from repro.cache import ArtifactCache

            cache = ArtifactCache(cache_dir)
        payload = execute_job_payload(runner, dict(params), cache)
        conn.send(("ok", payload, None))
    except BaseException as exc:  # ship *everything* to the supervisor
        conn.send(("error", str(exc), type(exc).__name__))
    finally:
        conn.close()


class WorkerPool:
    """Fixed pool of supervisor threads executing queue jobs.

    Args:
        queue: The job queue to claim from.
        workers: Worker thread count.
        cache_dir: Artifact-cache directory shared with child processes
            (None disables payload memoization).
        timeout: Per-attempt wall-clock limit in seconds (None =
            unbounded; enforced by hard kill in process mode).
        retries: Extra attempts after the first, per job, for
            transient failures.
        backoff: Base of the exponential retry backoff in seconds.
        jitter: Jitter fraction of the backoff (deterministically
            seeded by job id; see
            :func:`~repro.experiments.framework.backoff_delay`).
        mode: ``"process"`` (default where ``fork`` exists) or
            ``"thread"``.
        telemetry_dir: When set, a provenance
            :class:`~repro.obs.manifest.RunManifest` is written per
            finished job.
    """

    def __init__(
        self,
        queue: JobQueue,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        jitter: float = 0.5,
        mode: Optional[str] = None,
        telemetry_dir: Optional[str] = None,
    ) -> None:
        self.queue = queue
        self.workers = max(1, int(workers))
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.jitter = jitter
        if mode is None:
            mode = "process" if hasattr(os, "fork") else "thread"
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown pool mode {mode!r}")
        self.mode = mode
        self.telemetry_dir = telemetry_dir
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._cache: Optional[Any] = None
        if cache_dir and mode == "thread":
            from repro.cache import ArtifactCache

            self._cache = ArtifactCache(cache_dir)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True, timeout: float = 10.0) -> bool:
        """Stop claiming new jobs; optionally join the workers.

        Returns:
            True when every worker exited within ``timeout``.
        """
        self._stop.set()
        ok = True
        if wait:
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                remaining = max(0.0, deadline - time.monotonic())
                thread.join(remaining)
                ok = ok and not thread.is_alive()
        return ok

    def join_idle(self, timeout: float = 30.0) -> bool:
        """Wait until no job is queued or running (graceful drain).

        Returns:
            True when the queue emptied within ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.queue.pending() == 0:
                return True
            time.sleep(0.02)
        return self.queue.pending() == 0

    # ------------------------------------------------------------------
    # Worker body.
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(timeout=0.1)
            if job is None:
                if self.queue.draining and self.queue.depth() == 0:
                    time.sleep(0.02)
                continue
            try:
                self._run_job(job)
            except Exception as exc:  # supervisor never dies
                self.queue.fail(
                    job,
                    error=f"supervisor error: {exc}",
                    error_type=type(exc).__name__,
                )

    def _run_job(self, job: Job) -> None:
        """Execute one claimed job to a terminal state."""
        started = time.perf_counter()
        cancel = threading.Event()
        last: Optional[BaseException] = None
        while True:
            if job.cancel_requested:
                self.queue.mark_cancelled(
                    job, seconds=time.perf_counter() - started
                )
                self._write_manifest(job)
                return
            try:
                payload = self._attempt(job, cancel)
                self.queue.finish(
                    job, payload,
                    seconds=time.perf_counter() - started,
                )
                self._write_manifest(job)
                return
            except JobCancelled:
                self.queue.mark_cancelled(
                    job, seconds=time.perf_counter() - started
                )
                self._write_manifest(job)
                return
            except Exception as exc:
                last = exc
                category = classify_failure(exc)
                seconds = time.perf_counter() - started
                if category == "poison":
                    self.queue.fail(
                        job, error=str(exc),
                        error_type=type(exc).__name__,
                        quarantine=True, seconds=seconds,
                    )
                    self._write_manifest(job)
                    return
                if (
                    category == "fatal"
                    or job.attempts > self.retries
                ):
                    self.queue.fail(
                        job, error=str(last),
                        error_type=type(last).__name__,
                        seconds=seconds,
                    )
                    self._write_manifest(job)
                    return
                delay = backoff_delay(
                    self.backoff, job.attempts - 1,
                    self.jitter, jitter_key=job.id,
                )
                if delay > 0:
                    time.sleep(delay)
                self.queue.note_attempt(job)

    # ------------------------------------------------------------------
    # One attempt.
    # ------------------------------------------------------------------

    def _attempt(self, job: Job, cancel: threading.Event) -> Any:
        if self.mode == "thread":
            return self._attempt_thread(job, cancel)
        return self._attempt_process(job, cancel)

    def _attempt_thread(
        self, job: Job, cancel: threading.Event
    ) -> Any:
        """In-process attempt; cancellation is cooperative only."""
        if job.cancel_requested:
            raise JobCancelled("cancelled before the attempt started")
        set_cancel_event(cancel)
        watcher = threading.Thread(
            target=self._watch_cancel, args=(job, cancel), daemon=True
        )
        watcher.start()
        try:
            return execute_job_payload(job.runner, job.params, self._cache)
        finally:
            cancel.set()  # stop the watcher
            set_cancel_event(None)
            watcher.join(timeout=1.0)
            cancel.clear()

    def _watch_cancel(self, job: Job, cancel: threading.Event) -> None:
        """Mirror ``job.cancel_requested`` into the attempt's event."""
        while not cancel.is_set():
            if job.cancel_requested:
                cancel.set()
                return
            time.sleep(0.02)

    def _attempt_process(
        self, job: Job, cancel: threading.Event
    ) -> Any:
        """Child-process attempt: hard timeout and hard cancellation."""
        ctx = multiprocessing.get_context(
            "fork" if hasattr(os, "fork") else "spawn"
        )
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(child_conn, job.runner, job.params, self.cache_dir),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None and self.timeout > 0
            else None
        )
        try:
            while True:
                if job.cancel_requested:
                    self._kill(proc)
                    raise JobCancelled("cancelled mid-attempt")
                if deadline is not None and time.monotonic() > deadline:
                    self._kill(proc)
                    raise SimulationTimeout(
                        "job attempt exceeded its wall-clock limit",
                        seconds=self.timeout,
                    )
                if parent_conn.poll(0.05):
                    break
                if not proc.is_alive() and not parent_conn.poll(0.2):
                    raise RuntimeError(
                        "worker child died without a result "
                        f"(exitcode {proc.exitcode})"
                    )
            try:
                status, payload, error_type = parent_conn.recv()
            except (EOFError, OSError):
                raise RuntimeError(
                    "worker child died without a result "
                    f"(exitcode {proc.exitcode})"
                ) from None
            if status == "ok":
                return payload
            raise rebuild_failure(str(error_type), str(payload))
        finally:
            parent_conn.close()
            if proc.is_alive():
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stubborn child
                self._kill(proc)
            proc.join(timeout=1.0)

    @staticmethod
    def _kill(proc: "multiprocessing.process.BaseProcess") -> None:
        proc.terminate()
        proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - needs SIGKILL
            kill = getattr(proc, "kill", None)
            if kill is not None:
                kill()
            proc.join(timeout=1.0)

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------

    def _write_manifest(self, job: Job) -> None:
        """Write the job's provenance manifest (best effort)."""
        if self.telemetry_dir is None:
            return
        try:
            RunManifest(
                name=f"job-{job.id}",
                config={"runner": job.runner, "params": job.params},
                seconds=job.seconds,
                attempts=max(job.attempts, 1),
                ok=job.state.value == "done",
                extra={
                    "state": job.state.value,
                    "priority": job.priority,
                    "cached": job.cached,
                    "error_type": job.error_type,
                },
            ).write(self.telemetry_dir)
        except OSError:  # pragma: no cover - disk full etc.
            pass
