"""Job model of the serve daemon: content-addressed, speculative units.

Every job the daemon accepts is treated the way the simulated processor
treats a speculative thread: cheap to re-execute, safe to squash, and
committed exactly once.  A job's identity is the blake2b digest of its
canonical ``(runner, params)`` encoding — the same canonical-JSON
keying the artifact cache uses — so an identical resubmission *is* the
same job (dedup), and a completed job's payload is content-addressed in
the shared :class:`~repro.cache.ArtifactCache` (an identical config
digest is served from the cache without re-simulation).

Failures classify through the :mod:`repro.errors` taxonomy:

- transient (``SimulationTimeout``, generic ``Exception``) → retried
  with jittered exponential backoff;
- fatal (``WorkloadError``/``ExecutionError``) → failed immediately,
  never retried;
- poison (``InvariantViolation``) → quarantined: recorded, surfaced,
  and **never** re-run (a simulator bug re-executes identically).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Optional, Type

from repro.errors import (
    ExecutionError,
    InvariantViolation,
    SimulationTimeout,
    WorkloadError,
)
from repro.obs.manifest import config_digest

__all__ = [
    "Job",
    "JobState",
    "JobCancelled",
    "JOB_RUNNERS",
    "PRIORITIES",
    "job_digest",
    "classify_failure",
    "execute_job_payload",
    "current_cancel_event",
]

#: Priority lanes, highest first; admission control and the queue's
#: claim order both follow this order.
PRIORITIES = ("high", "normal", "low")


class JobState(str, Enum):
    """Lifecycle states of a job (str-valued for JSON round-trips)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"
    SHED = "shed"

    @property
    def terminal(self) -> bool:
        """Whether the state is final (no further transitions)."""
        return self not in (JobState.QUEUED, JobState.RUNNING)


class JobCancelled(RuntimeError):
    """Raised inside an attempt when the job's cancellation fired."""


def job_digest(runner: str, params: Dict[str, Any]) -> str:
    """Content-addressed job id: blake2b over canonical (runner, params).

    Args:
        runner: Registered runner name (a :data:`JOB_RUNNERS` key).
        params: The runner's keyword arguments (JSON-able primitives).

    Returns:
        A 32-hex-character digest; equal digests mean the same job.
    """
    return config_digest({"runner": runner, "params": params})


@dataclass
class Job:
    """One accepted unit of work and its full lifecycle record.

    Attributes:
        id: Content digest of ``(runner, params)`` (see
            :func:`job_digest`).
        runner: Registered runner name.
        params: Runner keyword arguments.
        priority: Lane name (one of :data:`PRIORITIES`).
        state: Current :class:`JobState`.
        attempts: Execution attempts consumed in this life (resets when
            a crash-recovered job is requeued — re-running a
            half-finished job is recovery, not failure).
        result: The runner's JSON payload once ``done``.
        error: Last failure message (``failed``/``quarantined``).
        error_type: Last failure's exception class name.
        cached: Whether the result was served from the artifact cache
            (or a dedup hit) without executing.
        cancel_requested: Cooperative-cancellation flag read by the
            worker pool.
        submitted_at: Unix timestamp of admission.
        started_at: Unix timestamp of the first execution attempt.
        finished_at: Unix timestamp of reaching a terminal state.
        seconds: Wall-clock seconds of the finishing execution.
    """

    id: str
    runner: str
    params: Dict[str, Any] = field(default_factory=dict)
    priority: str = "normal"
    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: Optional[Any] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    cached: bool = False
    cancel_requested: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON view of the job (see :meth:`from_dict`)."""
        return {
            "id": self.id,
            "runner": self.runner,
            "params": self.params,
            "priority": self.priority,
            "state": self.state.value,
            "attempts": self.attempts,
            "result": self.result,
            "error": self.error,
            "error_type": self.error_type,
            "cached": self.cached,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        """Rebuild and return a job from its :meth:`to_dict` encoding."""
        return cls(
            id=str(data["id"]),
            runner=str(data["runner"]),
            params=dict(data.get("params", {})),
            priority=str(data.get("priority", "normal")),
            state=JobState(data.get("state", "queued")),
            attempts=int(data.get("attempts", 0)),
            result=data.get("result"),
            error=data.get("error"),
            error_type=data.get("error_type"),
            cached=bool(data.get("cached", False)),
            cancel_requested=bool(data.get("cancel_requested", False)),
            submitted_at=float(data.get("submitted_at", 0.0)),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            seconds=float(data.get("seconds", 0.0)),
        )

    def status_dict(self) -> Dict[str, Any]:
        """Return the public status view (the ``/jobs/<id>`` response)."""
        view = self.to_dict()
        view.pop("result", None)
        return view


# ----------------------------------------------------------------------
# Failure classification (repro.errors taxonomy -> retry policy).
# ----------------------------------------------------------------------

#: Exception class name -> class, for rebuilding child-process failures
#: in the parent with the taxonomy intact.
TAXONOMY: Dict[str, Type[BaseException]] = {
    "SimulationTimeout": SimulationTimeout,
    "InvariantViolation": InvariantViolation,
    "WorkloadError": WorkloadError,
    "ExecutionError": ExecutionError,
    "JobCancelled": JobCancelled,
}


def classify_failure(exc: BaseException) -> str:
    """Map a failure onto the daemon's retry policy.

    Args:
        exc: The exception an attempt raised.

    Returns:
        ``"poison"`` (quarantine, never re-run) for
        :class:`~repro.errors.InvariantViolation`; ``"cancelled"`` for
        :class:`JobCancelled`; ``"fatal"`` (fail, no retry) for
        :class:`~repro.errors.WorkloadError` and
        :class:`~repro.errors.ExecutionError`; ``"transient"`` (retry
        with backoff) for everything else, including
        :class:`~repro.errors.SimulationTimeout`.
    """
    if isinstance(exc, InvariantViolation):
        return "poison"
    if isinstance(exc, JobCancelled):
        return "cancelled"
    if isinstance(exc, (WorkloadError, ExecutionError)):
        return "fatal"
    return "transient"


def rebuild_failure(error_type: str, message: str) -> BaseException:
    """Reconstruct a child-process failure as a taxonomy exception.

    Args:
        error_type: The exception class name the child reported.
        message: The failure message.

    Returns:
        An instance of the matching taxonomy class (plain
        ``RuntimeError`` for unknown names, which classifies as
        transient).
    """
    cls = TAXONOMY.get(error_type, RuntimeError)
    try:
        return cls(message)
    except Exception:  # pragma: no cover - exotic constructors
        return RuntimeError(f"{error_type}: {message}")


# ----------------------------------------------------------------------
# Runners.
# ----------------------------------------------------------------------

#: Thread-local carrying the executing job's cancel event so runners
#: that poll (e.g. ``sleep``) can cooperate with cancellation even in
#: thread execution mode.
_EXECUTION_LOCAL = threading.local()


def current_cancel_event() -> Optional[threading.Event]:
    """Return the executing job's cancel event (None outside a job)."""
    return getattr(_EXECUTION_LOCAL, "cancel_event", None)


def set_cancel_event(event: Optional[threading.Event]) -> None:
    """Install ``event`` as the executing job's cancel signal."""
    _EXECUTION_LOCAL.cancel_event = event


def _runner_sleep(
    duration: float = 0.1,
    fail: Optional[str] = None,
    fail_file: Optional[str] = None,
    tag: Optional[str] = None,
) -> Dict[str, Any]:
    """Deterministic test/bench workload: sleep, optionally misbehave.

    Args:
        duration: Seconds to sleep (in small cancellable increments).
        fail: ``"transient"`` raises ``RuntimeError`` every attempt,
            ``"poison"`` raises ``InvariantViolation``, ``"timeout"``
            raises ``SimulationTimeout`` (all *after* sleeping).
        fail_file: Path holding a decimal count; while positive it is
            decremented and the attempt raises ``RuntimeError`` —
            retry-until-healed testing across attempts and processes.
        tag: Free-form marker echoed in the payload (also
            differentiates job digests for load generation).

    Returns:
        ``{"slept": duration, "tag": tag}`` on success.
    """
    cancel = current_cancel_event()
    deadline = time.monotonic() + max(float(duration), 0.0)
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        if cancel is not None and cancel.is_set():
            raise JobCancelled("job cancelled while sleeping")
        time.sleep(min(remaining, 0.02))
    if fail_file is not None:
        import os

        try:
            budget = int(open(fail_file).read().strip() or "0")
        except (OSError, ValueError):
            budget = 0
        if budget > 0:
            tmp = f"{fail_file}.tmp{os.getpid()}"
            with open(tmp, "w") as handle:
                handle.write(str(budget - 1))
            os.replace(tmp, fail_file)
            raise RuntimeError(f"injected transient failure ({budget} left)")
    if fail == "transient":
        raise RuntimeError("injected transient failure")
    if fail == "poison":
        raise InvariantViolation("injected invariant violation")
    if fail == "timeout":
        raise SimulationTimeout("injected timeout", seconds=duration)
    return {"slept": float(duration), "tag": tag}


def _job_runners() -> Dict[str, Callable[..., Dict[str, Any]]]:
    """Build the runner registry (engine runners + serve extras)."""
    from repro.experiments.engine import POINT_RUNNERS

    runners: Dict[str, Callable[..., Dict[str, Any]]] = dict(POINT_RUNNERS)
    runners["sleep"] = _runner_sleep
    return runners


#: Runner name -> callable.  ``simulate`` and ``campaign`` are the
#: parallel engine's point runners (so serve jobs and ``repro exp``
#: sweeps share cache artifacts); ``sleep`` is the deterministic
#: load/chaos workload.
JOB_RUNNERS: Dict[str, Callable[..., Dict[str, Any]]] = _job_runners()

#: Runner names whose payloads are memoized in the artifact cache under
#: the ``point`` kind — exactly the engine's keying, so a sweep warmed
#: by ``repro exp`` serves the daemon (and vice versa).
CACHED_RUNNERS = ("simulate", "campaign")


def cache_key_fields(job: Job) -> Dict[str, Any]:
    """Return the artifact-cache key fields of a cacheable job."""
    return {"runner": job.runner, **job.params}


def execute_job_payload(
    runner: str, params: Dict[str, Any], cache: Optional[Any] = None
) -> Any:
    """Execute one job body, memoizing cacheable payloads.

    Args:
        runner: Registered runner name.
        params: Runner keyword arguments.
        cache: Active :class:`~repro.cache.ArtifactCache` (None
            disables memoization).

    Returns:
        The runner's JSON-serialisable payload.
    """
    from repro.experiments import framework

    fn = JOB_RUNNERS[runner]
    previous = framework.set_cache(cache)
    try:
        if cache is None or runner not in CACHED_RUNNERS:
            return fn(**params)
        return cache.get_or_create(
            "point", lambda: fn(**params), runner=runner, **params
        )
    finally:
        framework.set_cache(previous)
