"""The ``repro serve`` daemon: HTTP/JSON API over the resilient queue.

Pure stdlib (``http.server``): a :class:`ServeDaemon` wires the
write-ahead :class:`~repro.serve.journal.JobJournal`, the admission-
controlled :class:`~repro.serve.queue.JobQueue`, the supervised
:class:`~repro.serve.pool.WorkerPool`, the shared artifact cache and
the live metrics registry into one long-running process.

Endpoints
---------

- ``POST /jobs`` — submit ``{"runner", "params", "priority"}``; 202 on
  accept, 200 on dedup/cache-hit, 400 on a bad request, 429 when
  admission control refuses, 503 while draining.
- ``GET /jobs`` — list job status (``?state=`` filters).
- ``GET /jobs/<id>`` — one job's status.
- ``GET /jobs/<id>/result`` — the result payload (409 until done).
- ``POST /jobs/<id>/cancel`` (or ``DELETE /jobs/<id>``) — cancel.
- ``GET /healthz`` — liveness + queue counters.
- ``GET /metrics`` — live Prometheus exposition from
  :mod:`repro.obs.registry`.
- ``POST /admin/drain`` — begin a graceful drain (also wired to
  ``SIGTERM``/``SIGINT``): stop admitting, finish what is running,
  compact the journal, exit.

On startup the daemon replays the journal: jobs that were queued or
running when the previous process was killed are re-queued and run
exactly once more; finished jobs keep their results.  The bound port
is advertised in ``<state-dir>/endpoint.json`` so clients (and the
chaos benchmark) can find a daemon started with ``--port 0``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.serve.jobs import Job, cache_key_fields
from repro.serve.metrics import ServeMetrics
from repro.serve.journal import JobJournal
from repro.serve.pool import WorkerPool
from repro.serve.queue import AdmissionError, JobQueue, RecoveryReport

__all__ = ["ServeConfig", "ServeDaemon"]


@dataclass
class ServeConfig:
    """Configuration of one serve daemon instance.

    Attributes:
        host: Bind address.
        port: Bind port (0 = ephemeral; see ``endpoint.json``).
        workers: Worker pool size.
        max_queued: Admission bound on queued jobs.
        shed_ratio: Queue-pressure threshold shedding low priority.
        retries: Per-job transient-retry budget.
        timeout: Per-attempt wall-clock limit in seconds.
        backoff: Retry backoff base in seconds.
        jitter: Deterministic jitter fraction of the backoff.
        state_dir: Journal + endpoint directory (created on demand).
        cache_dir: Artifact-cache directory (None disables caching).
        telemetry_dir: Per-job provenance manifest directory.
        drain_timeout: Seconds a graceful drain waits for running jobs.
        mode: Worker execution mode (``process``/``thread``/None=auto).
        backend: Worker-pool backend knob; same values as ``mode`` and
            supersedes it when both are set (the name matches the
            engine's ``--backend`` vocabulary).
        fsync: Whether journal appends fsync (the durability behind
            exactly-once; tests may disable for speed).
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_queued: int = 64
    shed_ratio: float = 0.8
    retries: int = 2
    timeout: Optional[float] = 120.0
    backoff: float = 0.05
    jitter: float = 0.5
    state_dir: Union[str, Path] = ".repro-serve"
    cache_dir: Optional[str] = None
    telemetry_dir: Optional[str] = None
    drain_timeout: float = 30.0
    mode: Optional[str] = None
    backend: Optional[str] = None
    fsync: bool = True


@dataclass
class _DrainState:
    """Internal drain bookkeeping."""

    requested: bool = False
    done: bool = False
    clean: bool = True
    event: threading.Event = field(default_factory=threading.Event)


class ServeDaemon:
    """Long-running simulation service (queue + pool + HTTP API)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = ServeMetrics()
        self.journal = JobJournal(
            self.state_dir / "journal.jsonl", fsync=config.fsync
        )
        self._cache: Optional[Any] = None
        if config.cache_dir:
            from repro.cache import ArtifactCache

            self._cache = ArtifactCache(config.cache_dir)
        self.queue = JobQueue(
            self.journal,
            max_queued=config.max_queued,
            shed_ratio=config.shed_ratio,
            cache_probe=self._cache_probe if self._cache else None,
            metrics=self.metrics,
        )
        self.recovery: RecoveryReport = self.queue.recover()
        self.pool = WorkerPool(
            self.queue,
            workers=config.workers,
            cache_dir=config.cache_dir,
            timeout=config.timeout,
            retries=config.retries,
            backoff=config.backoff,
            jitter=config.jitter,
            mode=config.backend or config.mode,
            telemetry_dir=config.telemetry_dir,
        )
        self.started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._drain = _DrainState()

    # ------------------------------------------------------------------
    # Cache probe (instant answers for known config digests).
    # ------------------------------------------------------------------

    def _cache_probe(self, job: Job) -> Any:
        from repro.serve.jobs import CACHED_RUNNERS

        cache = self._cache
        if cache is None or job.runner not in CACHED_RUNNERS:
            return JobQueue.miss_sentinel()
        from repro.cache.store import _MISSING

        key = cache.key("point", **cache_key_fields(job))
        value = cache.lookup("point", key)

        if value is _MISSING:
            return JobQueue.miss_sentinel()
        return value

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """Return the bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("daemon not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint_path(self) -> Path:
        """Path of the advertised ``endpoint.json`` in the state dir."""
        return self.state_dir / "endpoint.json"

    def start(self) -> None:
        """Bind the server, start the pool, advertise the endpoint."""
        self.pool.start()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()
        host, port = self.address
        tmp = self.endpoint_path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(
            {"host": host, "port": port, "pid": os.getpid()}
        ))
        os.replace(tmp, self.endpoint_path)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _handle(signum: int, frame: Any) -> None:
            self.request_drain()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def request_drain(self) -> None:
        """Begin a graceful drain asynchronously (idempotent)."""
        if self._drain.requested:
            return
        self._drain.requested = True
        thread = threading.Thread(
            target=self._drain_body, name="serve-drain", daemon=True
        )
        thread.start()

    def _drain_body(self) -> None:
        self._drain.clean = self.drain(self.config.drain_timeout)
        self._drain.done = True
        self._drain.event.set()

    def drain(self, timeout: float = 30.0) -> bool:
        """Drain synchronously: stop admitting, finish, compact, stop.

        Args:
            timeout: Seconds to wait for queued/running jobs.

        Returns:
            True when every accepted job reached a terminal state
            before shutdown.
        """
        self._drain.requested = True
        self.queue.drain()
        clean = self.pool.join_idle(timeout=timeout)
        self.pool.stop(wait=True, timeout=5.0)
        self.queue.rotate()
        self.journal.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        return clean

    def stop(self) -> None:
        """Hard stop (tests): no drain, just tear the server down."""
        self.pool.stop(wait=False)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self.journal.close()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until a requested drain completes.

        Returns:
            True when the drain finished cleanly within ``timeout``.
        """
        self._drain.event.wait(timeout)
        return self._drain.done and self._drain.clean

    @property
    def draining(self) -> bool:
        """Whether a drain has been requested."""
        return self._drain.requested

    # ------------------------------------------------------------------
    # Request bodies (shared by the HTTP handler and in-process users).
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Return the ``/healthz`` payload."""
        return {
            "ok": True,
            "draining": self.draining,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": self.pool.workers,
            "queue_depth": self.queue.depth(),
            "jobs": self.queue.counts(),
            "recovery": {
                "requeued": self.recovery.requeued,
                "duplicate_finishes": self.recovery.duplicate_finishes,
                "dropped_tail": self.recovery.dropped_tail,
                "quarantined": [
                    str(p) for p in self.recovery.quarantined
                ],
            },
        }

    def submit(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Handle a ``POST /jobs`` body; returns (HTTP status, payload)."""
        runner = body.get("runner")
        params = body.get("params", {})
        priority = body.get("priority", "normal")
        if not isinstance(runner, str) or not isinstance(params, dict):
            return 400, {
                "error": "body must carry a 'runner' string and "
                "optional 'params' object"
            }
        try:
            job, outcome = self.queue.submit(
                runner, params, str(priority)
            )
        except AdmissionError as exc:
            status = 503 if exc.reason == "draining" else 429
            return status, {"error": str(exc), "reason": exc.reason}
        except (KeyError, ValueError) as exc:
            return 400, {"error": str(exc)}
        status = 202 if outcome == "accepted" else 200
        return status, {
            "id": job.id,
            "state": job.state.value,
            "outcome": outcome,
            "cached": job.cached,
        }

    # ------------------------------------------------------------------
    # Exactly-once audit (smoke gate + chaos benchmark).
    # ------------------------------------------------------------------

    def audit(self) -> Dict[str, Any]:
        """Audit the job table for lost or duplicated work.

        Returns:
            ``{"accepted", "terminal", "lost", "duplicate_finishes"}``
            where lost = accepted jobs not in a terminal state (after a
            drain this must be 0) and duplicate_finishes comes from the
            recovery replay (one finish per job per journal stream).
        """
        jobs = self.queue.list_jobs()
        accepted = len(jobs)
        terminal = sum(1 for job in jobs if job.state.terminal)
        return {
            "accepted": accepted,
            "terminal": terminal,
            "lost": accepted - terminal,
            "duplicate_finishes": self.recovery.duplicate_finishes,
        }


# ----------------------------------------------------------------------
# HTTP plumbing.
# ----------------------------------------------------------------------


def _make_handler(daemon: ServeDaemon) -> type:
    """Build the request-handler class bound to ``daemon``."""

    class Handler(BaseHTTPRequestHandler):
        """Routes the serve API onto the daemon (one instance/request)."""

        server_version = "repro-serve/1.0"
        protocol_version = "HTTP/1.1"

        # Silence the default stderr access log.
        def log_message(self, format: str, *args: Any) -> None:
            del format, args

        def _send_json(
            self, status: int, payload: Dict[str, Any]
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str,
                       content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> Optional[Dict[str, Any]]:
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b"{}"
                data = json.loads(raw.decode("utf-8") or "{}")
            except (ValueError, UnicodeDecodeError):
                return None
            return data if isinstance(data, dict) else None

        def _parts(self) -> List[str]:
            path = self.path.split("?", 1)[0]
            return [part for part in path.split("/") if part]

        def _query(self) -> Dict[str, str]:
            if "?" not in self.path:
                return {}
            query: Dict[str, str] = {}
            for item in self.path.split("?", 1)[1].split("&"):
                if "=" in item:
                    key, value = item.split("=", 1)
                    query[key] = value
            return query

        # -------------------------------------------------- GET
        def do_GET(self) -> None:
            parts = self._parts()
            if parts == ["healthz"]:
                self._send_json(200, daemon.health())
            elif parts == ["metrics"]:
                self._send_text(
                    200, daemon.metrics.to_prometheus(),
                    "text/plain; version=0.0.4",
                )
            elif parts == ["jobs"]:
                state = self._query().get("state")
                jobs = daemon.queue.list_jobs(state)
                self._send_json(
                    200,
                    {"jobs": [job.status_dict() for job in jobs]},
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                job = daemon.queue.get(parts[1])
                if job is None:
                    self._send_json(404, {"error": "unknown job"})
                else:
                    self._send_json(200, job.status_dict())
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "result"
            ):
                job = daemon.queue.get(parts[1])
                if job is None:
                    self._send_json(404, {"error": "unknown job"})
                elif job.state.value != "done":
                    self._send_json(
                        409,
                        {"error": "job is not done",
                         "state": job.state.value},
                    )
                else:
                    self._send_json(
                        200,
                        {"id": job.id, "result": job.result,
                         "cached": job.cached,
                         "seconds": job.seconds},
                    )
            else:
                self._send_json(404, {"error": "unknown route"})

        # -------------------------------------------------- POST
        def do_POST(self) -> None:
            parts = self._parts()
            if parts == ["jobs"]:
                body = self._read_body()
                if body is None:
                    self._send_json(
                        400, {"error": "request body must be a JSON "
                              "object"}
                    )
                    return
                status, payload = daemon.submit(body)
                self._send_json(status, payload)
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "cancel"
            ):
                self._cancel(parts[1])
            elif parts == ["admin", "drain"]:
                daemon.request_drain()
                self._send_json(202, {"draining": True})
            else:
                self._send_json(404, {"error": "unknown route"})

        # -------------------------------------------------- DELETE
        def do_DELETE(self) -> None:
            parts = self._parts()
            if len(parts) == 2 and parts[0] == "jobs":
                self._cancel(parts[1])
            else:
                self._send_json(404, {"error": "unknown route"})

        def _cancel(self, job_id: str) -> None:
            verdict = daemon.queue.cancel(job_id)
            if verdict == "unknown":
                self._send_json(404, {"error": "unknown job"})
            elif verdict == "terminal":
                job = daemon.queue.get(job_id)
                state = job.state.value if job else "unknown"
                self._send_json(
                    409,
                    {"error": "job already finished", "state": state},
                )
            else:
                self._send_json(202, {"id": job_id, "cancel": verdict})

    return Handler
