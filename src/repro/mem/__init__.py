"""Memory hierarchy components: L1 data cache and speculative versioning.

The L1 model supplies load latencies to the thread-unit timing model
(32KB, 2-way, 32-byte blocks, 3-cycle hit / 8-cycle miss — paper Section
4.1).  The :class:`SpeculativeVersioningMemory` is the architectural model
of the Speculative Versioning Cache [7] the paper relies on for inter-
thread memory dataflow: per-address version chains ordered by thread
speculation order, with forwarding, violation detection, commit and squash.
"""

from repro.mem.l1 import L1Cache
from repro.mem.svc import SpeculativeVersioningMemory, VersioningError

__all__ = ["L1Cache", "SpeculativeVersioningMemory", "VersioningError"]
