"""Set-associative L1 data-cache timing model."""

from __future__ import annotations


class L1Cache:
    """LRU set-associative cache returning access latencies.

    Addresses are word addresses (one word = 4 bytes); a 32-byte block
    holds 8 words.  The model tracks tags only — data values come from the
    trace — and is deliberately small: the timing simulator just needs hit
    or miss latency per access.
    """

    def __init__(
        self,
        size_kb: int = 32,
        assoc: int = 2,
        block_words: int = 8,
        hit_latency: int = 3,
        miss_latency: int = 8,
    ):
        if size_kb <= 0 or assoc <= 0 or block_words <= 0:
            raise ValueError("cache geometry parameters must be positive")
        block_bytes = block_words * 4
        n_blocks = size_kb * 1024 // block_bytes
        if n_blocks % assoc:
            raise ValueError("cache size must divide evenly into ways")
        self.n_sets = n_blocks // assoc
        self.assoc = assoc
        self.block_words = block_words
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        # Per set: list of tags in LRU order (front = most recent).
        # Allocated lazily (set index -> ways): simulations construct many
        # caches and most sets are never touched at trace scale, so eager
        # per-set lists would dominate construction time.
        self._sets: dict = {}
        self.accesses = 0
        self.misses = 0

    def _locate(self, addr: int):
        block = addr // self.block_words
        return block % self.n_sets, block // self.n_sets

    def access(self, addr: int, is_store: bool = False) -> int:
        """Access one word; returns the latency and updates LRU/fill state.

        Stores allocate (write-allocate, write-back) but their latency is
        hidden by the store buffer, so callers typically ignore it.
        """
        self.accesses += 1
        block = addr // self.block_words
        set_index = block % self.n_sets
        tag = block // self.n_sets
        ways = self._sets.get(set_index)
        if ways is None:
            ways = self._sets[set_index] = []
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            return self.hit_latency
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()
        return self.miss_latency

    def contains(self, addr: int) -> bool:
        set_index, tag = self._locate(addr)
        return tag in self._sets.get(set_index, ())

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
