"""Speculative Versioning Memory — architectural model of the SVC [7].

Threads are identified by monotonically increasing sequence numbers
(program order = speculation order).  Each address keeps a version chain;
a load returns the version written by the nearest thread at or before the
reader in speculation order, and records the read so that a later store by
an *older* thread to the same address is flagged as a dependence violation
(the reader consumed stale data and must squash).

The timing simulator accounts for forwarding/violation latencies directly
from trace dataflow, but this model is the reference semantics: tests
assert the simulator's assumptions (loads see the newest older version;
out-of-order cross-thread store/load pairs violate) against it, and the
examples use it to demonstrate multi-version behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


class VersioningError(RuntimeError):
    """Raised on protocol misuse (unknown thread, committing out of order)."""


@dataclass
class _Version:
    thread: int
    value: object


class SpeculativeVersioningMemory:
    """Multi-version memory with violation detection.

    Typical sequence::

        svc = SpeculativeVersioningMemory()
        svc.begin_thread(0)             # non-speculative
        svc.begin_thread(1)             # speculative successor
        svc.store(0, addr, 10)
        svc.load(1, addr)               # -> 10 (forwarded from thread 0)
        violations = svc.store(0, addr2, ...)  # set of violated threads
        svc.commit(0)                   # in order
        svc.squash(1)                   # discards thread 1's versions
    """

    def __init__(self, backing: Optional[Dict[int, object]] = None):
        self._backing: Dict[int, object] = dict(backing or {})
        self._versions: Dict[int, List[_Version]] = {}
        #: addr -> list of (reader thread, version-thread-it-read-from)
        self._reads: Dict[int, List[Tuple[int, int]]] = {}
        self._active: Set[int] = set()
        self._committed_upto = -1

    # ------------------------------------------------------------------
    # Thread lifecycle.
    # ------------------------------------------------------------------

    def begin_thread(self, thread: int) -> None:
        if thread in self._active:
            raise VersioningError(f"thread {thread} already active")
        if thread <= self._committed_upto:
            raise VersioningError(
                f"thread {thread} precedes the committed prefix"
            )
        self._active.add(thread)

    def commit(self, thread: int) -> None:
        """Commit the oldest active thread, merging its versions."""
        if thread not in self._active:
            raise VersioningError(f"thread {thread} is not active")
        if any(t < thread for t in self._active):
            raise VersioningError(
                f"thread {thread} cannot commit before older active threads"
            )
        for addr, chain in self._versions.items():
            for version in chain:
                if version.thread == thread:
                    self._backing[addr] = version.value
        for addr in list(self._versions):
            self._versions[addr] = [
                v for v in self._versions[addr] if v.thread != thread
            ]
            if not self._versions[addr]:
                del self._versions[addr]
        for addr in list(self._reads):
            self._reads[addr] = [
                (r, src) for (r, src) in self._reads[addr] if r != thread
            ]
            if not self._reads[addr]:
                del self._reads[addr]
        self._active.remove(thread)
        self._committed_upto = thread

    def squash(self, thread: int) -> None:
        """Discard a speculative thread's versions and read records."""
        if thread not in self._active:
            raise VersioningError(f"thread {thread} is not active")
        for addr in list(self._versions):
            self._versions[addr] = [
                v for v in self._versions[addr] if v.thread != thread
            ]
            if not self._versions[addr]:
                del self._versions[addr]
        for addr in list(self._reads):
            self._reads[addr] = [
                (r, src) for (r, src) in self._reads[addr] if r != thread
            ]
            if not self._reads[addr]:
                del self._reads[addr]
        self._active.remove(thread)

    # ------------------------------------------------------------------
    # Data access.
    # ------------------------------------------------------------------

    def load(self, thread: int, addr: int):
        """Read the newest version at or before ``thread``; records the read."""
        if thread not in self._active:
            raise VersioningError(f"thread {thread} is not active")
        chain = self._versions.get(addr, [])
        best: Optional[_Version] = None
        for version in chain:
            if version.thread <= thread and (
                best is None or version.thread > best.thread
            ):
                best = version
        source = best.thread if best is not None else -1
        self._reads.setdefault(addr, []).append((thread, source))
        if best is not None:
            return best.value
        return self._backing.get(addr, 0)

    def store(self, thread: int, addr: int, value) -> Set[int]:
        """Write a version; returns the set of violated (stale) readers.

        A reader is violated when it is *more speculative* than the writer
        and the version it consumed predates the writer (it should have
        seen this store).
        """
        if thread not in self._active:
            raise VersioningError(f"thread {thread} is not active")
        violated: Set[int] = set()
        for reader, source in self._reads.get(addr, []):
            if reader > thread and source < thread:
                violated.add(reader)
        chain = self._versions.setdefault(addr, [])
        for version in chain:
            if version.thread == thread:
                version.value = value
                break
        else:
            chain.append(_Version(thread=thread, value=value))
        return violated

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def architectural_value(self, addr: int):
        """Committed (non-speculative) value at ``addr``."""
        return self._backing.get(addr, 0)

    def active_threads(self) -> Set[int]:
        return set(self._active)

    def version_count(self, addr: int) -> int:
        return len(self._versions.get(addr, []))
