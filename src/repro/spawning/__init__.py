"""Spawning-pair policies.

A *spawning pair* is (spawning point pc, control quasi-independent point
pc): reaching the SP fires creation of a speculative thread starting at the
CQIP.  This package provides:

- :func:`select_profile_pairs` — the paper's profile-based scheme
  (Section 3.1): reaching-probability and distance thresholds over the
  pruned dynamic CFG, per-SP CQIP ordering by expected thread size /
  independence / predictability, plus subroutine return-point pairs.
- :func:`heuristic_pairs` — the traditional baselines: loop-iteration,
  loop-continuation and subroutine-continuation spawning, and their
  combination (the comparison baseline of Figure 8).
"""

from repro.spawning.pairs import PairKind, SpawnPair, SpawnPairSet
from repro.spawning.heuristics import (
    HeuristicConfig,
    heuristic_pairs,
    loop_continuation_pairs,
    loop_iteration_pairs,
    subroutine_continuation_pairs,
)
from repro.spawning.selection import ProfilePolicyConfig, select_profile_pairs
from repro.spawning.serialization import (
    load_pair_set,
    pair_set_from_dict,
    pair_set_to_dict,
    save_pair_set,
)

__all__ = [
    "save_pair_set",
    "load_pair_set",
    "pair_set_to_dict",
    "pair_set_from_dict",
    "SpawnPair",
    "SpawnPairSet",
    "PairKind",
    "ProfilePolicyConfig",
    "select_profile_pairs",
    "HeuristicConfig",
    "heuristic_pairs",
    "loop_iteration_pairs",
    "loop_continuation_pairs",
    "subroutine_continuation_pairs",
]
