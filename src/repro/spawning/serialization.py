"""Spawning-pair table serialization.

A profile-based scheme computes its pair table offline and ships it to the
processor (in the paper's setting, as marks in the binary or a hardware
table image).  These helpers persist a :class:`SpawnPairSet` as JSON so a
profile pass and a simulation can run in different processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.spawning.pairs import PairKind, SpawnPair, SpawnPairSet

_FORMAT_VERSION = 1


def pair_set_to_dict(pairs: SpawnPairSet) -> dict:
    """Return the JSON-serialisable representation of a pair set."""
    return {
        "version": _FORMAT_VERSION,
        "candidates_evaluated": pairs.candidates_evaluated,
        "pairs": [
            {
                "sp_pc": p.sp_pc,
                "cqip_pc": p.cqip_pc,
                "kind": p.kind.value,
                "reach_probability": p.reach_probability,
                "expected_distance": p.expected_distance,
                "score": p.score,
            }
            for p in pairs.all_pairs()
        ],
    }


def pair_set_from_dict(data: dict) -> SpawnPairSet:
    """Return the pair set encoded by :func:`pair_set_to_dict`."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported pair-table version: {version!r}")
    pairs = [
        SpawnPair(
            sp_pc=entry["sp_pc"],
            cqip_pc=entry["cqip_pc"],
            kind=PairKind(entry["kind"]),
            reach_probability=entry["reach_probability"],
            expected_distance=entry["expected_distance"],
            score=entry["score"],
        )
        for entry in data["pairs"]
    ]
    return SpawnPairSet(
        pairs, candidates_evaluated=data.get("candidates_evaluated", 0)
    )


def save_pair_set(pairs: SpawnPairSet, path: Union[str, Path]) -> None:
    """Write a pair table to ``path`` as JSON."""
    Path(path).write_text(json.dumps(pair_set_to_dict(pairs), indent=2))


def load_pair_set(path: Union[str, Path]) -> SpawnPairSet:
    """Read back a pair table written by :func:`save_pair_set`.

    Returns:
        The deserialised :class:`SpawnPairSet`.
    """
    return pair_set_from_dict(json.loads(Path(path).read_text()))
