"""Traditional thread-spawning heuristics (the paper's Section 3 baseline).

All three schemes key on easily-detectable program constructs:

- *loop iteration*: SP = CQIP = loop head (target of a backward branch);
- *loop continuation*: SP = loop head, CQIP = instruction following the
  backward branch that closes the loop;
- *subroutine continuation*: SP = call site, CQIP = its return point.

The combined scheme (union of the three) is the comparison baseline used in
Figure 8, following the earlier study the paper cites ([15]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exec.trace import Trace
from repro.spawning.pairs import PairKind, SpawnPair, SpawnPairSet


@dataclass
class HeuristicConfig:
    """Knobs for the heuristic policies.

    ``min_distance`` optionally filters out constructs whose observed
    dynamic SP->CQIP distance is tiny (the traditional schemes in the paper
    do not enforce the profile policy's size threshold; 1 keeps them all).
    ``max_lookahead`` bounds the trace scan when measuring the observed
    distance/probability of each construct.
    """

    min_distance: float = 1.0
    max_lookahead: int = 4096
    include_loop_iterations: bool = True
    include_loop_continuations: bool = True
    include_subroutine_continuations: bool = True
    #: Drop statically-impossible pairs (see ``repro.analysis.validator``).
    #: The heuristics only propose constructs observed in the trace, so
    #: this is normally a no-op safety net.
    static_validate: bool = True
    #: Re-rank the surviving pairs by static squash risk
    #: (``repro.analysis.dependence``); off by default and bit-identical
    #: to previous releases when off.
    dep_rank: bool = False


#: Preference among schemes when one spawning point matches several
#: constructs.  The paper's earlier study [15] found loop iterations the
#: most effective individual scheme on this architecture, so the combined
#: baseline prioritises iteration > subroutine continuation > loop
#: continuation; distance breaks ties within a kind.
_KIND_PRIORITY = {
    PairKind.LOOP_ITERATION: 2,
    PairKind.SUBROUTINE_CONTINUATION: 1,
    PairKind.LOOP_CONTINUATION: 0,
}

_PRIORITY_STEP = 1 << 20  # larger than any realistic distance


def _kind_score(kind: PairKind, distance: float) -> float:
    return _KIND_PRIORITY[kind] * _PRIORITY_STEP + min(
        distance, _PRIORITY_STEP - 1
    )


def _measure_pair(
    trace: Trace, sp_pc: int, cqip_pc: int, max_lookahead: int
) -> Optional[tuple]:
    """Observed (reach probability, mean distance) of an (SP, CQIP) pair.

    A CQIP "reached" means it occurs after the SP occurrence, before the SP
    recurs and within the lookahead window — the same event the profile
    policy scores, so heuristic and profile pairs are comparable.
    """
    sp_positions = trace.positions_of(sp_pc)
    if not sp_positions:
        return None
    n = len(trace)
    reached = 0
    dist_sum = 0.0
    for sp_pos in sp_positions:
        limit = min(n, sp_pos + max_lookahead)
        cqip_pos = trace.next_occurrence(cqip_pc, sp_pos, limit)
        if sp_pc != cqip_pc:
            sp_again = trace.next_occurrence(sp_pc, sp_pos, limit)
            if cqip_pos is not None and sp_again is not None and sp_again < cqip_pos:
                cqip_pos = None
        if cqip_pos is not None:
            reached += 1
            dist_sum += cqip_pos - sp_pos
    if reached == 0:
        return 0.0, float("nan")
    return reached / len(sp_positions), dist_sum / reached


def loop_iteration_pairs(trace: Trace, config: HeuristicConfig) -> List[SpawnPair]:
    """Loop-iteration scheme: SP = CQIP = loop head, for every loop.

    Args:
        trace: Profile trace to measure candidate pairs on.
        config: Distance/lookahead thresholds.

    Returns:
        The scheme's measured :class:`SpawnPair` list.
    """
    pairs = []
    for head in sorted(trace.program.loop_heads()):
        measured = _measure_pair(trace, head, head, config.max_lookahead)
        if measured is None:
            continue
        prob, dist = measured
        if prob > 0 and dist >= config.min_distance:
            pairs.append(
                SpawnPair(
                    sp_pc=head,
                    cqip_pc=head,
                    kind=PairKind.LOOP_ITERATION,
                    reach_probability=prob,
                    expected_distance=dist,
                    score=_kind_score(PairKind.LOOP_ITERATION, dist),
                )
            )
    return pairs


def loop_continuation_pairs(trace: Trace, config: HeuristicConfig) -> List[SpawnPair]:
    """Loop-continuation scheme: spawn the code after the loop exit.

    Args:
        trace: Profile trace to measure candidate pairs on.
        config: Distance/lookahead thresholds.

    Returns:
        The scheme's measured :class:`SpawnPair` list.
    """
    program = trace.program
    pairs = []
    for branch_pc in program.backward_branch_pcs():
        head = program[branch_pc].target
        cqip = branch_pc + 1
        if cqip >= len(program):
            continue
        measured = _measure_pair(trace, head, cqip, config.max_lookahead)
        if measured is None:
            continue
        prob, dist = measured
        if prob > 0 and dist >= config.min_distance:
            pairs.append(
                SpawnPair(
                    sp_pc=head,
                    cqip_pc=cqip,
                    kind=PairKind.LOOP_CONTINUATION,
                    reach_probability=prob,
                    expected_distance=dist,
                    score=_kind_score(PairKind.LOOP_CONTINUATION, dist),
                )
            )
    return pairs


def subroutine_continuation_pairs(
    trace: Trace, config: HeuristicConfig
) -> List[SpawnPair]:
    """Subroutine-continuation scheme: spawn a call's return point.

    Args:
        trace: Profile trace to measure candidate pairs on.
        config: Distance/lookahead thresholds.

    Returns:
        The scheme's measured :class:`SpawnPair` list.
    """
    pairs = []
    for call_pc in trace.program.call_sites():
        cqip = call_pc + 1
        measured = _measure_pair(trace, call_pc, cqip, config.max_lookahead)
        if measured is None:
            continue
        prob, dist = measured
        if prob > 0 and dist >= config.min_distance:
            pairs.append(
                SpawnPair(
                    sp_pc=call_pc,
                    cqip_pc=cqip,
                    kind=PairKind.SUBROUTINE_CONTINUATION,
                    reach_probability=prob,
                    expected_distance=dist,
                    score=_kind_score(PairKind.SUBROUTINE_CONTINUATION, dist),
                )
            )
    return pairs


def heuristic_pairs(
    trace: Trace, config: Optional[HeuristicConfig] = None
) -> SpawnPairSet:
    """The combined traditional baseline (union of the three schemes).

    When one spawning point matches several constructs, kind priority
    decides which fires (see ``_KIND_PRIORITY``); distance breaks ties.

    Args:
        trace: Profile trace to measure candidate pairs on.
        config: Which schemes to include plus their thresholds
            (None = all three with defaults).

    Returns:
        The combined :class:`SpawnPairSet` (the Figure 8 baseline).
    """
    config = config or HeuristicConfig()
    pairs: List[SpawnPair] = []
    if config.include_loop_iterations:
        pairs.extend(loop_iteration_pairs(trace, config))
    if config.include_loop_continuations:
        pairs.extend(loop_continuation_pairs(trace, config))
    if config.include_subroutine_continuations:
        pairs.extend(subroutine_continuation_pairs(trace, config))
    # Deduplicate identical (SP, CQIP) pairs across schemes.
    unique = {}
    for pair in pairs:
        unique.setdefault(pair.key(), pair)
    result = SpawnPairSet(list(unique.values()), candidates_evaluated=len(pairs))
    if config.static_validate:
        # Imported lazily: repro.analysis depends on repro.spawning.pairs.
        from repro.analysis.validator import filter_statically_valid

        result = filter_statically_valid(trace.program, result)
    if config.dep_rank:
        from repro.analysis.dependence import rank_pairs

        result = rank_pairs(trace.program, result)
    return result
