"""Spawning-pair data model shared by all policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class PairKind(enum.Enum):
    """Provenance of a spawning pair."""

    PROFILE = "profile"
    RETURN_POINT = "return_point"
    LOOP_ITERATION = "loop_iteration"
    LOOP_CONTINUATION = "loop_continuation"
    SUBROUTINE_CONTINUATION = "subroutine_continuation"


@dataclass(frozen=True)
class SpawnPair:
    """One (spawning point, control quasi-independent point) pair.

    ``expected_distance`` is the profile's average instruction count between
    SP and CQIP (the expected speculative-thread size); ``score`` is the
    value of the active CQIP-ordering criterion (higher is better).
    """

    sp_pc: int
    cqip_pc: int
    kind: PairKind
    reach_probability: float
    expected_distance: float
    score: float = 0.0

    def key(self) -> tuple:
        """Return the pair's identity: the ``(sp_pc, cqip_pc)`` tuple."""
        return (self.sp_pc, self.cqip_pc)


class SpawnPairSet:
    """All pairs a policy produced, grouped and ordered per spawning point.

    ``alternatives(sp_pc)`` returns the CQIP candidates for an SP in
    decreasing preference order; the processor normally uses only the first
    (the paper's default), while the *reassign* policy walks down the list.
    """

    def __init__(self, pairs: List[SpawnPair], candidates_evaluated: int = 0):
        self._by_sp: Dict[int, List[SpawnPair]] = {}
        for pair in pairs:
            self._by_sp.setdefault(pair.sp_pc, []).append(pair)
        for sp_pc in self._by_sp:
            self._by_sp[sp_pc].sort(key=lambda p: p.score, reverse=True)
        #: Number of (SP, CQIP) combinations that passed the thresholds
        #: before the one-per-SP selection (the "Total Pairs" of Figure 2).
        self.candidates_evaluated = candidates_evaluated

    def __len__(self) -> int:
        return len(self._by_sp)

    def __iter__(self) -> Iterator[SpawnPair]:
        return iter(self.primary_pairs())

    def spawning_points(self) -> List[int]:
        """Return every distinct spawning-point pc in the set."""
        return list(self._by_sp.keys())

    def alternatives(self, sp_pc: int) -> List[SpawnPair]:
        """Return the SP's CQIP candidates in decreasing preference."""
        return self._by_sp.get(sp_pc, [])

    def primary(self, sp_pc: int) -> Optional[SpawnPair]:
        """Return the SP's best pair (None when the SP is unknown)."""
        alts = self._by_sp.get(sp_pc)
        return alts[0] if alts else None

    def primary_pairs(self) -> List[SpawnPair]:
        """Return the best pair of every spawning point."""
        return [alts[0] for alts in self._by_sp.values() if alts]

    def all_pairs(self) -> List[SpawnPair]:
        """Return every pair, including non-primary alternatives."""
        return [p for alts in self._by_sp.values() for p in alts]

    def merged_with(self, other: "SpawnPairSet") -> "SpawnPairSet":
        """Return the union of two pair sets (self wins on duplicates)."""
        seen = {p.key() for p in self.all_pairs()}
        merged = self.all_pairs() + [
            p for p in other.all_pairs() if p.key() not in seen
        ]
        return SpawnPairSet(
            merged,
            candidates_evaluated=self.candidates_evaluated
            + other.candidates_evaluated,
        )
