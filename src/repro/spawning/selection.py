"""The paper's profile-based spawning-pair selection (Section 3.1).

Pipeline: trace -> dynamic CFG -> 90% pruning -> reaching probability and
expected distance for every ordered block pair -> threshold filter
(probability >= 0.95, distance >= 32 by default) -> per-SP ordering of the
surviving CQIPs by the chosen criterion -> union with subroutine
return-point pairs that satisfy the size constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exec.trace import Trace
from repro.profiling.cfg import ControlFlowGraph
from repro.profiling.dependence import profile_pair_dependences
from repro.profiling.pruning import prune_cfg
from repro.profiling.reaching import build_reaching_profile
from repro.spawning.pairs import PairKind, SpawnPair, SpawnPairSet


@dataclass
class ProfilePolicyConfig:
    """Selection thresholds and ordering criterion.

    Defaults follow the paper: minimum reaching probability 0.95, minimum
    average distance 32 instructions, 90% CFG coverage.  ``ordering`` is
    one of ``"distance"`` (the paper's default criterion (a)),
    ``"independent"`` (criterion (b)) or ``"predictable"`` (criterion (c)).
    ``method`` picks the reaching estimator (``"empirical"``/``"markov"``).
    """

    min_probability: float = 0.95
    min_distance: float = 32.0
    max_distance: float = 1024.0
    coverage: float = 0.9
    ordering: str = "distance"
    method: str = "empirical"
    include_return_points: bool = True
    max_alternatives: int = 4
    max_lookahead: int = 4096
    dependence_samples: int = 6
    #: Collapse spawning points that mutually reach each other with high
    #: probability (blocks of one recurrent loop region): each would spawn
    #: essentially the same future thread, so only the best-scored SP of a
    #: cluster is kept.  Redundant SPs burn thread units on misordered
    #: spawn attempts at runtime.
    dedupe_mutual_sps: bool = True
    #: Protect observed loop-head blocks from the coverage cut.  The
    #: overhead block of a hot outer loop can rank below 90/99% coverage
    #: even though the whole region's best spawning pair hangs off it.
    #: Off by default: on this suite it trades go/stride gains for li
    #: losses (see benchmarks/test_ablations.py).
    keep_loop_heads: bool = False
    #: Cross-check the selected pairs against the static CFG
    #: (``repro.analysis.validator``) and drop any pair that is statically
    #: impossible (out-of-range pcs, unreachable CQIP).  Profile-derived
    #: pairs come from observed executions so this is normally a no-op; it
    #: guards against corrupted pair tables and profiling bugs.
    static_validate: bool = True
    #: Re-rank the selected pairs by static squash risk
    #: (``repro.analysis.dependence``): each pair's score is divided by
    #: ``1 + risk_score`` so memory-dependent pairs sink.  Off by default —
    #: with it off the selection is bit-identical to previous releases.
    dep_rank: bool = False


def select_profile_pairs(
    trace: Trace, config: Optional[ProfilePolicyConfig] = None
) -> SpawnPairSet:
    """Run the full profile-based selection on ``trace``.

    Returns:
        The selected :class:`SpawnPairSet` (one primary pair per SP,
        with lower-scored alternatives kept for the reassign policy).
    """
    config = config or ProfilePolicyConfig()
    if config.ordering not in ("distance", "independent", "predictable"):
        raise ValueError(f"unknown ordering criterion {config.ordering!r}")

    cfg = ControlFlowGraph.from_trace(trace)
    always_keep = None
    if config.keep_loop_heads:
        always_keep = {
            cfg.by_pc[pc]
            for pc in trace.program.loop_heads()
            if pc in cfg.by_pc
        }
    pruned = prune_cfg(cfg, coverage=config.coverage, always_keep=always_keep)
    profile = build_reaching_profile(
        cfg,
        method=config.method,
        pruned=pruned,
        max_lookahead=config.max_lookahead,
    )

    kept = sorted(pruned.kept)
    candidates: List[SpawnPair] = []
    for s in kept:
        sp_pc = cfg.blocks[s].start_pc
        for d in kept:
            prob = profile.prob[s, d]
            dist = profile.dist[s, d]
            if prob < config.min_probability:
                continue
            if not (config.min_distance <= dist <= config.max_distance):
                continue
            candidates.append(
                SpawnPair(
                    sp_pc=sp_pc,
                    cqip_pc=cfg.blocks[d].start_pc,
                    kind=PairKind.PROFILE,
                    reach_probability=float(prob),
                    expected_distance=float(dist),
                    score=float(dist),
                )
            )

    if config.ordering != "distance":
        candidates = [_rescore(trace, pair, config) for pair in candidates]

    # Keep the best ``max_alternatives`` CQIPs per spawning point.
    by_sp = {}
    for pair in candidates:
        by_sp.setdefault(pair.sp_pc, []).append(pair)
    pruned_pairs: List[SpawnPair] = []
    for sp_pc, alts in by_sp.items():
        alts.sort(key=lambda p: p.score, reverse=True)
        pruned_pairs.extend(alts[: config.max_alternatives])

    if config.dedupe_mutual_sps:
        pruned_pairs = _dedupe_mutual_sps(cfg, profile, pruned_pairs, config)

    if config.include_return_points:
        pruned_pairs = _add_return_points(trace, pruned_pairs, config)

    result = SpawnPairSet(pruned_pairs, candidates_evaluated=len(candidates))
    if config.static_validate:
        # Imported lazily: repro.analysis depends on repro.spawning.pairs.
        from repro.analysis.validator import filter_statically_valid

        result = filter_statically_valid(trace.program, result)
    if config.dep_rank:
        from repro.analysis.dependence import rank_pairs

        result = rank_pairs(trace.program, result)
    return result


def _dedupe_mutual_sps(cfg, profile, pairs, config):
    """Keep one spawning point per mutually-reaching cluster.

    Two SPs whose blocks reach each other with probability above the
    selection threshold belong to the same recurrent region (typically the
    same loop); their primary pairs would spawn the same future over and
    over, so only the best-scored one survives.
    """
    sp_pcs = sorted({p.sp_pc for p in pairs})
    index = {pc: i for i, pc in enumerate(sp_pcs)}
    parent = list(range(len(sp_pcs)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    threshold = config.min_probability
    blocks = [cfg.by_pc.get(pc) for pc in sp_pcs]
    for i, bi in enumerate(blocks):
        if bi is None:
            continue
        for j in range(i + 1, len(sp_pcs)):
            bj = blocks[j]
            if bj is None:
                continue
            if (
                profile.prob[bi, bj] >= threshold
                and profile.prob[bj, bi] >= threshold
            ):
                parent[find(i)] = find(j)

    best_of_cluster = {}
    best_score = {}
    for pair in pairs:
        root = find(index[pair.sp_pc])
        if root not in best_score or pair.score > best_score[root]:
            best_score[root] = pair.score
            best_of_cluster[root] = pair.sp_pc
    keep = set(best_of_cluster.values())
    return [p for p in pairs if p.sp_pc in keep]


def _rescore(
    trace: Trace, pair: SpawnPair, config: ProfilePolicyConfig
) -> SpawnPair:
    """Re-score a candidate under the independence/predictability criteria."""
    dep = profile_pair_dependences(
        trace,
        pair.sp_pc,
        pair.cqip_pc,
        thread_length=max(1, int(pair.expected_distance)),
        max_samples=config.dependence_samples,
    )
    if config.ordering == "independent":
        score = dep.avg_independent
    else:
        score = dep.avg_predictable_or_independent
    return SpawnPair(
        sp_pc=pair.sp_pc,
        cqip_pc=pair.cqip_pc,
        kind=pair.kind,
        reach_probability=pair.reach_probability,
        expected_distance=pair.expected_distance,
        score=score,
    )


def _add_return_points(
    trace: Trace, pairs: List[SpawnPair], config: ProfilePolicyConfig
) -> List[SpawnPair]:
    """Append subroutine return-point pairs meeting the size constraint.

    The paper adds every (call site, return point) pair satisfying the
    minimum size even when its reaching probability is low (a subroutine
    called from many places dilutes each call's reaching probability, yet
    the return is certain once the call executes).
    """
    existing = {(p.sp_pc, p.cqip_pc) for p in pairs}
    n = len(trace)
    result = list(pairs)
    for call_pc in trace.program.call_sites():
        cqip_pc = call_pc + 1
        if (call_pc, cqip_pc) in existing:
            continue
        positions = trace.positions_of(call_pc)
        if not positions:
            continue
        reached = 0
        dist_sum = 0.0
        for pos in positions:
            ret_pos = trace.next_occurrence(
                cqip_pc, pos, min(n, pos + config.max_lookahead)
            )
            if ret_pos is not None:
                reached += 1
                dist_sum += ret_pos - pos
        if not reached:
            continue
        distance = dist_sum / reached
        if not (config.min_distance <= distance <= config.max_distance):
            continue
        result.append(
            SpawnPair(
                sp_pc=call_pc,
                cqip_pc=cqip_pc,
                kind=PairKind.RETURN_POINT,
                reach_probability=reached / len(positions),
                expected_distance=distance,
                score=distance,
            )
        )
    return result
