"""The dashboard's single static page (HTML + CSS + JS, stdlib-served).

:func:`render_page` returns one self-contained document with four
views — per-TU occupancy timeline, event-stream inspector, manifest
browser, metrics panel — rendered client-side from the JSON API
(live mode) or from a bootstrap object embedded into the page
(``--snapshot`` mode, where the bundle works without any server).

The palette is a validated colorblind-safe set (categorical slots in
fixed order, status red reserved for squash/drop markers) with a
selected dark mode; both modes render on their own surfaces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = ["render_page"]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro dashboard</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --plane: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;  /* execute slices */
  --series-2: #eb6834;  /* commit-wait slices */
  --critical: #d03b3b;  /* squash/drop instant markers */
  --good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --plane: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --critical: #d03b3b;
    --good: #0ca30c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0;
  background: var(--plane);
  color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header {
  display: flex;
  align-items: baseline;
  gap: 12px;
  flex-wrap: wrap;
  padding: 14px 20px 10px;
}
header h1 { font-size: 17px; margin: 0; }
.chip {
  font-size: 12px;
  color: var(--ink-2);
  border: 1px solid var(--border);
  border-radius: 999px;
  padding: 1px 9px;
  background: var(--surface-1);
}
nav { display: flex; gap: 4px; padding: 0 20px; }
nav button {
  font: inherit;
  border: 1px solid var(--border);
  border-bottom: none;
  border-radius: 6px 6px 0 0;
  background: transparent;
  color: var(--ink-2);
  padding: 6px 14px;
  cursor: pointer;
}
nav button[aria-selected="true"] {
  background: var(--surface-1);
  color: var(--ink-1);
  font-weight: 600;
}
main {
  background: var(--surface-1);
  border-top: 1px solid var(--border);
  min-height: 70vh;
  padding: 16px 20px 40px;
}
section[hidden] { display: none; }
h2 { font-size: 14px; margin: 8px 0; }
.note { color: var(--muted); font-size: 12px; }
.legend {
  display: flex;
  gap: 16px;
  font-size: 12px;
  color: var(--ink-2);
  margin: 6px 0 10px;
}
.legend i {
  display: inline-block;
  width: 10px;
  height: 10px;
  border-radius: 2px;
  margin-right: 5px;
  vertical-align: -1px;
}
table {
  border-collapse: collapse;
  width: 100%;
  font-size: 13px;
}
th, td {
  text-align: left;
  padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--grid);
}
th { color: var(--muted); font-weight: 600; }
td.num, th.num {
  text-align: right;
  font-variant-numeric: tabular-nums;
}
.tiles {
  display: flex;
  flex-wrap: wrap;
  gap: 12px;
  margin: 10px 0 16px;
}
.tile {
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 10px 14px;
  min-width: 150px;
}
.tile .v {
  font-size: 22px;
  font-weight: 600;
  color: var(--ink-1);
}
.tile .k { font-size: 12px; color: var(--ink-2); }
.controls {
  display: flex;
  gap: 10px;
  align-items: center;
  margin: 6px 0 12px;
  flex-wrap: wrap;
}
.controls select, .controls input {
  font: inherit;
  background: var(--surface-1);
  color: var(--ink-1);
  border: 1px solid var(--border);
  border-radius: 6px;
  padding: 3px 8px;
}
#tip {
  position: fixed;
  display: none;
  pointer-events: none;
  background: var(--surface-1);
  color: var(--ink-1);
  border: 1px solid var(--border);
  border-radius: 6px;
  box-shadow: 0 2px 10px rgba(0, 0, 0, 0.18);
  padding: 6px 9px;
  font-size: 12px;
  max-width: 340px;
  z-index: 10;
}
svg text { fill: var(--muted); font-size: 11px; }
.err { color: var(--critical); }
code { font-size: 12px; }
</style>
</head>
<body>
<header>
  <h1>repro dashboard</h1>
  <span id="meta"></span>
  <span class="chip" id="mode"></span>
</header>
<nav role="tablist">
  <button role="tab" data-view="timeline" aria-selected="true">
    Timeline</button>
  <button role="tab" data-view="events">Events</button>
  <button role="tab" data-view="manifests">Manifests</button>
  <button role="tab" data-view="metrics">Metrics</button>
</nav>
<main>
  <section id="view-timeline">
    <h2>Per-TU occupancy</h2>
    <div class="legend">
      <span><i style="background:var(--series-1)"></i>execute</span>
      <span><i style="background:var(--series-2)"></i>commit wait</span>
      <span><i style="background:var(--critical)"></i>instant event
        (squash / drop / blackout)</span>
    </div>
    <div id="timeline"></div>
    <p class="note" id="timeline-note"></p>
  </section>
  <section id="view-events" hidden>
    <h2>Event stream</h2>
    <div class="controls">
      <label>kind <select id="ev-kind"><option value="">all</option>
      </select></label>
      <label>thread <input id="ev-thread" type="number" min="0"
        style="width:80px" placeholder="any"></label>
      <span class="note" id="ev-count"></span>
    </div>
    <div id="ev-replay"></div>
    <div id="ev-table"></div>
  </section>
  <section id="view-manifests" hidden>
    <h2>Sweep manifests</h2>
    <div id="manifests"></div>
  </section>
  <section id="view-metrics" hidden>
    <h2>Metrics</h2>
    <p class="note" id="metrics-note"></p>
    <div class="tiles" id="metric-tiles"></div>
    <div id="metric-table"></div>
  </section>
</main>
<div id="tip"></div>
<script>
"use strict";
const BOOTSTRAP = __BOOTSTRAP__;
const LIVE = BOOTSTRAP === null;
const $ = (id) => document.getElementById(id);

async function getJSON(path, key) {
  if (!LIVE) return BOOTSTRAP[key];
  const resp = await fetch(path);
  if (!resp.ok) throw new Error(path + " -> HTTP " + resp.status);
  return resp.json();
}

function el(tag, attrs, ...children) {
  const node = document.createElement(tag);
  for (const [k, v] of Object.entries(attrs || {})) {
    if (k === "text") node.textContent = v;
    else node.setAttribute(k, v);
  }
  for (const child of children) node.append(child);
  return node;
}

function fmt(value) {
  if (value === null || value === undefined) return "-";
  if (typeof value === "number" && !Number.isInteger(value)) {
    return value.toLocaleString(undefined,
      { maximumFractionDigits: 3 });
  }
  if (typeof value === "number") return value.toLocaleString();
  return String(value);
}

const tip = $("tip");
function showTip(evt, html) {
  tip.innerHTML = html;
  tip.style.display = "block";
  const x = Math.min(evt.clientX + 14, window.innerWidth - 280);
  tip.style.left = x + "px";
  tip.style.top = (evt.clientY + 14) + "px";
}
function hideTip() { tip.style.display = "none"; }

/* ---- tabs -------------------------------------------------------- */
for (const btn of document.querySelectorAll("nav button")) {
  btn.addEventListener("click", () => {
    for (const other of document.querySelectorAll("nav button")) {
      other.setAttribute("aria-selected",
        other === btn ? "true" : "false");
    }
    for (const section of document.querySelectorAll("main section")) {
      section.hidden = section.id !== "view-" + btn.dataset.view;
    }
  });
}

/* ---- timeline ---------------------------------------------------- */
const SVGNS = "http://www.w3.org/2000/svg";
function svgEl(tag, attrs) {
  const node = document.createElementNS(SVGNS, tag);
  for (const [k, v] of Object.entries(attrs)) {
    node.setAttribute(k, v);
  }
  return node;
}

function renderTimeline(trace) {
  const events = trace.traceEvents || [];
  const names = {};
  for (const ev of events) {
    if (ev.ph === "M" && ev.name === "thread_name") {
      names[ev.tid] = ev.args.name;
    }
  }
  const tids = Object.keys(names).map(Number).sort((a, b) => a - b);
  let maxTs = 1;
  for (const ev of events) {
    if (ev.ph === "X") maxTs = Math.max(maxTs, ev.ts + ev.dur);
    if (ev.ph === "i") maxTs = Math.max(maxTs, ev.ts);
  }
  const laneH = 26, left = 64, right = 16, axisH = 26;
  const width = Math.max(700,
    Math.min(1400, document.body.clientWidth - 60));
  const plotW = width - left - right;
  const height = tids.length * laneH + axisH + 8;
  const svg = svgEl("svg",
    { viewBox: `0 0 ${width} ${height}`, width: "100%" });
  const x = (ts) => left + (ts / maxTs) * plotW;
  const laneY = {};
  tids.forEach((tid, i) => { laneY[tid] = 6 + i * laneH; });
  for (const tid of tids) {
    const y = laneY[tid];
    svg.append(svgEl("line", {
      x1: left, x2: width - right, y1: y + laneH - 4,
      y2: y + laneH - 4, stroke: "var(--grid)",
    }));
    const label = svgEl("text",
      { x: 8, y: y + laneH - 10 });
    label.textContent = names[tid];
    svg.append(label);
  }
  const ticks = 6;
  for (let i = 0; i <= ticks; i += 1) {
    const ts = (maxTs / ticks) * i;
    const tx = x(ts);
    svg.append(svgEl("line", {
      x1: tx, x2: tx, y1: 6, y2: height - axisH,
      stroke: "var(--grid)", "stroke-dasharray": "2,4",
    }));
    const label = svgEl("text", {
      x: tx, y: height - 8, "text-anchor": "middle",
    });
    label.textContent = Math.round(ts).toLocaleString();
    svg.append(label);
  }
  for (const ev of events) {
    if (ev.ph === "X" && ev.tid in laneY) {
      const fill = ev.cat === "commit_wait"
        ? "var(--series-2)" : "var(--series-1)";
      const rect = svgEl("rect", {
        x: x(ev.ts), y: laneY[ev.tid] + 3,
        width: Math.max((ev.dur / maxTs) * plotW, 1.5),
        height: laneH - 11, rx: 2, fill,
        stroke: "var(--surface-1)", "stroke-width": 1,
      });
      rect.addEventListener("mousemove", (m) => showTip(m,
        `<b>${ev.name}</b><br>${ev.cat}` +
        `<br>cycles ${fmt(ev.ts)} → ${fmt(ev.ts + ev.dur)}` +
        ` (${fmt(ev.dur)})` +
        (ev.args && ev.args.size_insts !== undefined
          ? `<br>${fmt(ev.args.size_insts)} insts` : "")));
      rect.addEventListener("mouseleave", hideTip);
      svg.append(rect);
    } else if (ev.ph === "i" && ev.tid in laneY) {
      const cx = x(ev.ts), cy = laneY[ev.tid] + laneH - 6;
      const mark = svgEl("path", {
        d: `M ${cx} ${cy - 4} L ${cx + 4} ${cy + 2}` +
           ` L ${cx - 4} ${cy + 2} Z`,
        fill: "var(--critical)",
        stroke: "var(--surface-1)", "stroke-width": 1,
      });
      mark.addEventListener("mousemove", (m) => showTip(m,
        `<b>${ev.name}</b><br>cycle ${fmt(ev.ts)}` +
        `<br><code>${JSON.stringify(ev.args)}</code>`));
      mark.addEventListener("mouseleave", hideTip);
      svg.append(mark);
    }
  }
  $("timeline").replaceChildren(svg);
  const slices = events.filter((e) => e.ph === "X").length;
  const instants = events.filter((e) => e.ph === "i").length;
  $("timeline-note").textContent =
    `${tids.length} thread units, ${slices} slices, ` +
    `${instants} instant markers over ${fmt(maxTs)} cycles ` +
    `(cycles map 1:1 to µs in Perfetto).`;
}

/* ---- events ------------------------------------------------------ */
let allEvents = [];
function renderEventTable() {
  const kind = $("ev-kind").value;
  const thread = $("ev-thread").value;
  let rows = allEvents;
  if (kind) {
    rows = rows.filter((e) =>
      e.kind === kind || e.kind.startsWith(kind + "."));
  }
  if (thread !== "") {
    rows = rows.filter((e) => e.thread === Number(thread));
  }
  const shown = rows.slice(0, 500);
  const table = el("table", {},
    el("tr", {},
      el("th", { class: "num", text: "cycle" }),
      el("th", { text: "kind" }),
      el("th", { class: "num", text: "tu" }),
      el("th", { class: "num", text: "thread" }),
      el("th", { text: "attrs" })));
  for (const ev of shown) {
    table.append(el("tr", {},
      el("td", { class: "num", text: fmt(ev.cycle) }),
      el("td", { text: ev.kind }),
      el("td", { class: "num", text: fmt(ev.tu) }),
      el("td", { class: "num", text: fmt(ev.thread) }),
      el("td", {}, el("code",
        { text: JSON.stringify(ev.attrs) }))));
  }
  $("ev-table").replaceChildren(table);
  $("ev-count").textContent = `${rows.length} matching event(s)` +
    (rows.length > shown.length
      ? ` (first ${shown.length} shown)` : "");
}

function renderEvents(payload) {
  allEvents = payload.events;
  const kinds = Object.keys(payload.counts).sort();
  const select = $("ev-kind");
  for (const kind of kinds) {
    select.append(el("option",
      { value: kind, text: `${kind} (${payload.counts[kind]})` }));
  }
  const replay = payload.replay;
  const tiles = el("div", { class: "tiles" });
  for (const key of Object.keys(replay)) {
    tiles.append(el("div", { class: "tile" },
      el("div", { class: "v", text: fmt(replay[key]) }),
      el("div", { class: "k", text: key })));
  }
  $("ev-replay").replaceChildren(
    el("p", { class: "note",
      text: "replay_counters over the stream (the tested " +
        "stream-vs-aggregate cross-check):" }),
    tiles);
  select.addEventListener("change", renderEventTable);
  $("ev-thread").addEventListener("input", renderEventTable);
  renderEventTable();
}

/* ---- manifests --------------------------------------------------- */
function renderManifests(payload) {
  const host = $("manifests");
  host.replaceChildren();
  if (!payload.dirs.length) {
    host.append(el("p", { class: "note",
      text: "No telemetry directories found. Run e.g. " +
        "`repro exp --fig 8 --telemetry tele/` and reload." }));
    return;
  }
  for (const entry of payload.dirs) {
    host.append(el("h2", { text: entry.dir }));
    const table = el("table", {},
      el("tr", {},
        el("th", { text: "manifest" }),
        el("th", { text: "digest" }),
        el("th", { text: "ok" }),
        el("th", { class: "num", text: "seconds" }),
        el("th", { class: "num", text: "attempts" }),
        el("th", { text: "cache (mem/disk/miss)" })));
    const names = Object.keys(entry.manifests).sort();
    for (const name of names) {
      const m = entry.manifests[name];
      const cache = m.cache || {};
      const okTxt = m.ok === false ? "FAIL" : "ok";
      const okCell = el("td", { text: okTxt });
      if (m.ok === false) okCell.className = "err";
      table.append(el("tr", {},
        el("td", { text: name }),
        el("td", {}, el("code",
          { text: (m.digest || "").slice(0, 12) })),
        okCell,
        el("td", { class: "num", text: fmt(m.seconds) }),
        el("td", { class: "num",
          text: fmt(m.attempts !== undefined
            ? m.attempts : m.points) }),
        el("td", { class: "num",
          text: `${fmt(cache.memory_hits || 0)}/` +
            `${fmt(cache.disk_hits || 0)}/` +
            `${fmt(cache.misses || 0)}` })));
    }
    host.append(table);
    if (entry.files.length) {
      const names = entry.files
        .map((f) => `${f.name} (${fmt(f.bytes)} B)`).join(", ");
      host.append(el("p", { class: "note",
        text: "artifacts: " + names }));
    }
  }
}

/* ---- metrics ----------------------------------------------------- */
function labelText(labels) {
  const body = Object.entries(labels)
    .map(([k, v]) => `${k}=${v}`).join(", ");
  return body ? `{${body}}` : "";
}

function renderMetrics(payload) {
  const note = $("metrics-note");
  const tiles = $("metric-tiles");
  const tableHost = $("metric-table");
  tiles.replaceChildren();
  if (payload.source === "attached") {
    note.textContent = `polling ${payload.endpoint}/metrics ` +
      `(repro serve daemon)` + (LIVE ? ", refreshed every 2 s" : "");
    if (payload.error) {
      tableHost.replaceChildren(el("p", { class: "err",
        text: "daemon unreachable: " + payload.error }));
      return;
    }
    const table = el("table", {},
      el("tr", {},
        el("th", { text: "sample" }),
        el("th", { class: "num", text: "value" })));
    for (const sample of payload.samples) {
      table.append(el("tr", {},
        el("td", {}, el("code",
          { text: sample.name + labelText(sample.labels) })),
        el("td", { class: "num", text: fmt(sample.value) })));
    }
    tableHost.replaceChildren(table);
    return;
  }
  note.textContent =
    "local registry snapshot (histogram quantiles via " +
    "Histogram.quantile, no exposition re-parsing)";
  for (const q of payload.quantiles) {
    const tile = el("div", { class: "tile" },
      el("div", { class: "v",
        text: `${fmt(q.p50)} / ${fmt(q.p99)}` }),
      el("div", { class: "k",
        text: `${q.name} p50/p99 ` + labelText(q.labels) }),
      el("div", { class: "k",
        text: `n=${fmt(q.count)} sum=${fmt(q.sum)}` }));
    tiles.append(tile);
  }
  const table = el("table", {},
    el("tr", {},
      el("th", { text: "metric" }),
      el("th", { text: "labels" }),
      el("th", { class: "num", text: "value" })));
  const metrics = payload.snapshot.metrics;
  for (const name of Object.keys(metrics).sort()) {
    for (const sample of metrics[name].samples) {
      table.append(el("tr", {},
        el("td", { text: name }),
        el("td", {}, el("code",
          { text: labelText(sample.labels) })),
        el("td", { class: "num", text: fmt(sample.value) })));
    }
  }
  tableHost.replaceChildren(table);
}

/* ---- boot -------------------------------------------------------- */
async function boot() {
  try {
    const [trace, events, manifests, metrics] = await Promise.all([
      getJSON("/api/trace", "trace"),
      getJSON("/api/events", "events"),
      getJSON("/api/manifests", "manifests"),
      getJSON("/api/metrics", "metrics"),
    ]);
    const meta = LIVE ? (trace.otherData || {}) : BOOTSTRAP.meta;
    $("meta").replaceChildren(...Object.entries(meta).map(
      ([k, v]) => el("span", { class: "chip",
        text: `${k}: ${v}` })));
    $("mode").textContent = LIVE ? "live" : "snapshot";
    renderTimeline(trace);
    renderEvents(events);
    renderManifests(manifests);
    renderMetrics(metrics);
    if (LIVE) {
      setInterval(async () => {
        try {
          renderMetrics(await getJSON("/api/metrics", "metrics"));
        } catch (err) { /* daemon gone; keep last panel */ }
      }, 2000);
    }
  } catch (err) {
    document.querySelector("main").prepend(
      el("p", { class: "err", text: "dashboard error: " + err }));
  }
}
boot();
</script>
</body>
</html>
"""


def render_page(bootstrap: Optional[Dict[str, Any]] = None) -> str:
    """Render the dashboard page.

    Args:
        bootstrap: When given (``--snapshot`` mode), every view's
            payload is embedded into the page so it works from a plain
            file with no server; None (live mode) makes the page fetch
            the JSON API instead.

    Returns:
        The complete HTML document.
    """
    if bootstrap is None:
        payload = "null"
    else:
        # "</" must not appear inside an inline <script> block.
        payload = json.dumps(bootstrap, sort_keys=True).replace(
            "</", "<\\/"
        )
    return _PAGE.replace("__BOOTSTRAP__", payload, 1)
